"""CLI entry point: ``python -m repro_lint [--json] PATH [PATH ...]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro_lint.framework import RULE_REGISTRY, lint_paths
from repro_lint.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the simulation stack "
            "(seeded RNG, simulated-clock discipline, time-unit hygiene, "
            "validated configs, float-equality in tests)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src tests benchmarks)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a machine-readable JSON report"
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id, cls in RULE_REGISTRY.items():
            print(f"{rule_id} [{cls.name}]: {cls.rationale}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2
    try:
        result = lint_paths(args.paths, root=Path(args.root))
    except FileNotFoundError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    print(render_json(result) if args.json else render_text(result))
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
