"""repro-lint: AST-based invariant checks for the simulation stack.

``python -m repro_lint src tests benchmarks`` (run from the repo root with
``PYTHONPATH=src``, like the test-suite) statically checks the conventions
that make the repo's golden pins and equivalence suites trustworthy.  The
runtime tests prove that two code paths agree *given* determinism; these
rules machine-check the determinism assumptions themselves.

Rule catalog
------------
``R1 bare-random-state``
    No ``np.random.*`` module-level state or stdlib ``random`` outside
    ``repro/utils/rng.py``.  Explicit constructors (``default_rng``,
    ``Generator``, ``SeedSequence``, ``random.Random``) are allowed.
``R2 wall-clock``
    No ``time.time``/``perf_counter``/``monotonic``/``sleep``/
    ``datetime.now`` in any ``repro.*`` module: simulation, serving, cluster
    and caching code runs on the simulated microsecond clock.  The
    ``repro.partitioning`` package is explicitly allowlisted
    (:data:`~repro_lint.rules.WALL_CLOCK_ALLOWED_MODULES`): its timers
    measure genuine algorithm wall time (paper Figure 7).
``R3 time-unit-mix``
    A ``_us``-suffixed variable/attribute/parameter must not be assigned
    from a ``_s``/``_ms``/``_ns``-suffixed one (or any cross-unit pair)
    without a visible conversion (``* 1e6``-style scaling or a call).
``R4 unvalidated-config-field``
    Every dataclass field of ``BandanaConfig``/``ServingConfig``/
    ``ClusterConfig`` must be referenced by ``__post_init__``/``validate``
    so every knob is checked at construction time.
``R5 float-equality``
    Tests must not ``==``/``!=`` against float literals; use
    ``pytest.approx``/``np.isclose``, or suppress R5 where the bit-exact
    comparison is the point (golden pins).
``R0`` (framework, not suppressible)
    Unparseable files, suppressions naming unknown rules, and **unused**
    suppressions — a ``disable`` comment that stops matching a violation must
    be deleted, so the suppression inventory never rots.

Suppressions
------------
Append ``# repro-lint: disable=R3`` (comma-separate for several rules) to
the offending line; for a multi-line statement any physical line of the
statement works.  Every suppression must still be *needed* — unused ones are
themselves violations.

Adding a rule
-------------
Subclass :class:`~repro_lint.framework.Rule` in ``repro_lint/rules.py``, give
it a fresh ``id``/``name``/``rationale``, decorate with ``@register``, and
yield :class:`~repro_lint.framework.Violation` objects from ``check(ctx)``.
The :class:`~repro_lint.framework.FileContext` provides the parsed tree,
resolved import aliases (``ctx.dotted_name``) and location metadata
(``ctx.module``, ``ctx.is_test``).  Add one catching and one passing fixture
to ``tests/test_repro_lint.py`` — the rule suite requires both per rule —
and document the rule here.

Exit codes: 0 clean, 1 violations found, 2 bad invocation.
"""

from repro_lint.framework import (
    META_RULE_ID,
    FileContext,
    LintResult,
    Rule,
    Suppression,
    Violation,
    all_rules,
    known_rule_ids,
    lint_paths,
    lint_source,
    register,
)
from repro_lint.reporters import JSON_SCHEMA_VERSION, render_json, render_text, to_json_dict

# Importing the rules module populates the registry.
from repro_lint import rules as rules  # noqa: F401

__all__ = [
    "META_RULE_ID",
    "FileContext",
    "LintResult",
    "Rule",
    "Suppression",
    "Violation",
    "all_rules",
    "known_rule_ids",
    "lint_paths",
    "lint_source",
    "register",
    "JSON_SCHEMA_VERSION",
    "render_json",
    "render_text",
    "to_json_dict",
    "rules",
]
