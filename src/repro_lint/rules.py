"""The initial ``repro_lint`` rule set: the repo's reproducibility invariants.

Each rule encodes a convention the runtime equivalence suites and golden pins
*assume* but cannot themselves enforce:

``R1`` ``bare-random-state``
    No hidden global randomness: the legacy ``np.random.*`` module-level
    functions and the stdlib ``random`` module are banned everywhere except
    ``repro/utils/rng.py`` (the sanctioned conversion point).  Explicit
    constructors (``np.random.default_rng``, ``np.random.Generator``,
    ``np.random.SeedSequence``, ``random.Random``) are allowed — they are how
    seeded streams are *built*, not shared mutable state.

``R2`` ``wall-clock``
    Simulated-clock discipline: code under ``repro.*`` must not read the wall
    clock (``time.time``/``perf_counter``/``monotonic``/..., ``datetime.now``)
    or sleep.  Simulation results must be a pure function of (trace, config,
    seed); a wall-clock read is non-determinism smuggled in through the back
    door.  :data:`WALL_CLOCK_ALLOWED_MODULES` whitelists the partitioning
    package, whose ``time.perf_counter`` timers genuinely measure algorithm
    wall time (the paper's Figure 7 runtimes) rather than simulated time.

``R3`` ``time-unit-mix``
    Time-unit hygiene: a name suffixed ``_us`` must not be assigned from a
    name suffixed ``_s``/``_ms``/``_ns`` (or any other cross-unit pair)
    unless the expression visibly converts (a ``*``/``/`` scaling or a
    function call).  ``x_us = y_s`` silently mixes units by six orders of
    magnitude; ``x_us = y_s * 1e6`` states the conversion.

``R4`` ``unvalidated-config-field``
    Every dataclass field of the public config classes
    (:data:`CONFIG_CLASSES`) must be referenced by its class's
    ``__post_init__``/``validate`` method — the repo's convention is that
    every knob is checked by a ``repro.utils.validation`` helper (or an
    explicit ``if``/``raise``) at construction time, so bad configs fail
    loudly instead of corrupting a simulation.

``R5`` ``float-equality``
    Test files must not compare against float *literals* with ``==``/``!=``;
    use ``pytest.approx``/``np.isclose``, or — for intentional bit-exact
    golden pins — an explicit ``# repro-lint: disable=R5`` that documents the
    exactness as load-bearing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro_lint.framework import FileContext, Rule, Violation, register

# --------------------------------------------------------------------------- R1
#: ``numpy.random`` members that construct explicit generators / types rather
#: than touching the global stream.
ALLOWED_NP_RANDOM = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)

#: stdlib ``random`` members that are explicit seeded instances, not state.
ALLOWED_STDLIB_RANDOM = frozenset({"Random", "SystemRandom"})

#: Module whose job is to own RNG plumbing; exempt from R1.
RNG_HOME_MODULE = "repro.utils.rng"


def _iter_dotted_uses(ctx: FileContext) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(resolved_dotted_name, node)`` for maximal attribute chains."""

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.found: List[Tuple[str, ast.AST]] = []

        def visit_Attribute(self, node: ast.Attribute) -> None:
            dotted = ctx.dotted_name(node)
            if dotted is not None:
                self.found.append((dotted, node))
                return  # children are part of this chain
            self.generic_visit(node)

        def visit_Name(self, node: ast.Name) -> None:
            dotted = ctx.dotted_name(node)
            if dotted is not None and dotted != node.id:
                self.found.append((dotted, node))

    visitor = Visitor()
    visitor.visit(ctx.tree)
    return iter(visitor.found)


@register
class BareRandomStateRule(Rule):
    id = "R1"
    name = "bare-random-state"
    rationale = (
        "Global RNG state (np.random.* module functions, the stdlib random "
        "module) breaks seed-to-result reproducibility; construct explicit "
        "Generators via repro.utils.rng instead."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.module == RNG_HOME_MODULE:
            return
        # Import-site checks: `import random`, `from random import x`,
        # `from numpy.random import x`, `from numpy import random`.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.violation(
                            self,
                            node,
                            "stdlib `random` is hidden global state; use "
                            "repro.utils.rng (np.random.Generator) instead",
                        )
            elif isinstance(node, ast.ImportFrom) and not node.level:
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in ALLOWED_STDLIB_RANDOM:
                            yield ctx.violation(
                                self,
                                node,
                                f"`from random import {alias.name}` is hidden "
                                "global state; use repro.utils.rng instead",
                            )
                elif node.module in ("numpy.random", "numpy"):
                    for alias in node.names:
                        bad_np = node.module == "numpy.random" and (
                            alias.name not in ALLOWED_NP_RANDOM
                        )
                        if bad_np:
                            yield ctx.violation(
                                self,
                                node,
                                f"`from numpy.random import {alias.name}` uses "
                                "the global stream; pass an explicit Generator",
                            )
        # Use-site checks on resolved attribute chains.
        for dotted, node in _iter_dotted_uses(ctx):
            parts = dotted.split(".")
            if parts[:2] == ["numpy", "random"]:
                if len(parts) == 2 or parts[2] not in ALLOWED_NP_RANDOM:
                    yield ctx.violation(
                        self,
                        node,
                        f"`{dotted}` touches numpy's global RNG state; use an "
                        "explicit np.random.Generator (repro.utils.rng.ensure_rng)",
                    )
            elif parts[0] == "random" and "random" in ctx.import_aliases:
                if len(parts) < 2 or parts[1] not in ALLOWED_STDLIB_RANDOM:
                    yield ctx.violation(
                        self,
                        node,
                        f"`{dotted}` uses stdlib random's global state; use "
                        "repro.utils.rng instead",
                    )


# --------------------------------------------------------------------------- R2
#: Wall-clock reads banned inside simulated-clock code.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Modules allowed to read the wall clock.  The partitioning package times
#: *algorithm* runtimes (SHP/K-means training cost, the paper's Figure 7) —
#: genuine wall time, not simulated time — so its ``perf_counter`` calls are
#: sanctioned.  Everything else under ``repro.`` runs on the simulated clock.
WALL_CLOCK_ALLOWED_MODULES: Tuple[str, ...] = ("repro.partitioning",)


@register
class WallClockRule(Rule):
    id = "R2"
    name = "wall-clock"
    rationale = (
        "Simulation/serving/cluster code runs on a simulated microsecond "
        "clock; reading the wall clock makes results machine-dependent and "
        "unpinnable. Partitioning timers are explicitly allowlisted."
    )

    @staticmethod
    def _in_scope(ctx: FileContext) -> bool:
        if ctx.module is None or not ctx.module.startswith("repro."):
            return False
        return not any(
            ctx.module == mod or ctx.module.startswith(mod + ".")
            for mod in WALL_CLOCK_ALLOWED_MODULES
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not self._in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and not node.level:
                if node.module in ("time", "datetime"):
                    for alias in node.names:
                        if f"{node.module}.{alias.name}" in WALL_CLOCK_CALLS or (
                            node.module == "datetime"
                            and alias.name in ("datetime", "date")
                        ):
                            # importing datetime.datetime itself is fine; only
                            # flag direct function imports like perf_counter.
                            if f"{node.module}.{alias.name}" in WALL_CLOCK_CALLS:
                                yield ctx.violation(
                                    self,
                                    node,
                                    f"`from {node.module} import {alias.name}` "
                                    "pulls in a wall-clock read; simulated-clock "
                                    "code must stay deterministic",
                                )
        for dotted, node in _iter_dotted_uses(ctx):
            if dotted in WALL_CLOCK_CALLS:
                yield ctx.violation(
                    self,
                    node,
                    f"wall-clock call `{dotted}` in simulated-clock module "
                    f"`{ctx.module}` (allowlist: {', '.join(WALL_CLOCK_ALLOWED_MODULES)})",
                )


# --------------------------------------------------------------------------- R3
#: Recognised time-unit suffixes, longest first so ``_us`` wins over ``_s``.
UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_us", "us"),
    ("_ms", "ms"),
    ("_ns", "ns"),
    ("_s", "s"),
)


def unit_of(identifier: str) -> Optional[str]:
    """The time unit encoded in ``identifier``'s suffix, if any."""
    for suffix, unit in UNIT_SUFFIXES:
        if identifier.endswith(suffix):
            return unit
    return None


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    """The unit-bearing identifier of a Name/Attribute leaf, if any."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _expr_units(expr: ast.AST) -> List[Tuple[str, str, ast.AST]]:
    """All ``(identifier, unit, node)`` leaves mentioned anywhere in ``expr``."""
    found = []
    for node in ast.walk(expr):
        ident = _terminal_identifier(node)
        if ident is not None:
            unit = unit_of(ident)
            if unit is not None:
                found.append((ident, unit, node))
    return found


def _has_conversion(expr: ast.AST) -> bool:
    """Whether ``expr`` contains an explicit scaling or an opaque call.

    A ``*`` or ``/`` is how unit conversions are written (``x_s * 1e6``); a
    function call (``to_micros(x_s)``, ``int(round(...))``) is treated as
    opaque rather than second-guessed.  This keeps the rule free of false
    positives at the cost of missing conversions hidden behind arithmetic —
    the failure mode that matters (`a_us = b_s`, `a_us = b_s + c_us`) has
    neither.
    """
    for node in ast.walk(expr):
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mult, ast.Div)):
            return True
        if isinstance(node, ast.Call):
            return True
    return False


@register
class TimeUnitMixRule(Rule):
    id = "R3"
    name = "time-unit-mix"
    rationale = (
        "Assigning a `_s`/`_ms` quantity to a `_us` name (or any cross-unit "
        "pair) without a visible conversion silently corrupts clock "
        "arithmetic by orders of magnitude."
    )

    def _check_binding(
        self, ctx: FileContext, target_ident: str, value: ast.AST, node: ast.AST
    ) -> Iterator[Violation]:
        target_unit = unit_of(target_ident)
        if target_unit is None or _has_conversion(value):
            return
        for ident, unit, _leaf in _expr_units(value):
            if unit != target_unit:
                yield ctx.violation(
                    self,
                    node,
                    f"`{target_ident}` ({target_unit}) assigned from "
                    f"`{ident}` ({unit}) without an explicit conversion "
                    "(scale with * / / or convert at the boundary)",
                )
                return  # one report per binding is enough

    def _bindings(
        self, node: ast.AST
    ) -> Iterator[Tuple[str, ast.AST]]:
        """Yield ``(target_identifier, value_expr)`` pairs for ``node``."""
        if isinstance(node, ast.Assign):
            targets = node.targets
            for target in targets:
                if isinstance(target, ast.Tuple) and isinstance(node.value, ast.Tuple):
                    if len(target.elts) == len(node.value.elts):
                        for t, v in zip(target.elts, node.value.elts):
                            ident = _terminal_identifier(t)
                            if ident is not None:
                                yield ident, v
                    continue
                ident = _terminal_identifier(target)
                if ident is not None:
                    yield ident, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            ident = _terminal_identifier(node.target)
            if ident is not None:
                yield ident, node.value
        elif isinstance(node, ast.AugAssign):
            ident = _terminal_identifier(node.target)
            if ident is not None:
                yield ident, node.value
        elif isinstance(node, ast.keyword) and node.arg is not None:
            yield node.arg, node.value

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.keyword)):
                for ident, value in self._bindings(node):
                    yield from self._check_binding(ctx, ident, value, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Parameter defaults: `def f(timeout_us=linger_ms)` is the
                # same hazard in signature position.
                args = node.args
                pos = args.posonlyargs + args.args
                for arg, default in zip(pos[len(pos) - len(args.defaults) :], args.defaults):
                    yield from self._check_binding(ctx, arg.arg, default, default)
                for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
                    if kw_default is not None:
                        yield from self._check_binding(ctx, arg.arg, kw_default, kw_default)


# --------------------------------------------------------------------------- R4
#: Public config dataclasses whose every field must be validated.
CONFIG_CLASSES = frozenset(
    {
        "BandanaConfig",
        "ServingConfig",
        "ClusterConfig",
        "TracingConfig",
        "DeviceBankConfig",
        "ScenarioConfig",
        "TraceLoaderConfig",
        "RepartitionConfig",
    }
)

#: Method names R4 accepts as "the validation hook".
VALIDATION_METHODS = ("__post_init__", "validate")


@register
class UnvalidatedConfigFieldRule(Rule):
    id = "R4"
    name = "unvalidated-config-field"
    rationale = (
        "Every knob on the public config dataclasses must be referenced by "
        "__post_init__/validate so misconfigurations fail at construction "
        "(via repro.utils.validation) instead of corrupting simulations."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or node.name not in CONFIG_CLASSES:
                continue
            fields: List[Tuple[str, ast.AnnAssign]] = []
            validators: List[ast.FunctionDef] = []
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    annotation = ast.unparse(stmt.annotation)
                    if "ClassVar" in annotation:
                        continue
                    fields.append((stmt.target.id, stmt))
                elif (
                    isinstance(stmt, ast.FunctionDef)
                    and stmt.name in VALIDATION_METHODS
                ):
                    validators.append(stmt)
            if not validators:
                if fields:
                    yield ctx.violation(
                        self,
                        node,
                        f"config class {node.name} has no "
                        f"{'/'.join(VALIDATION_METHODS)} method validating its fields",
                    )
                continue
            referenced: Set[str] = set()
            for validator in validators:
                for sub in ast.walk(validator):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                    ):
                        referenced.add(sub.attr)
                    elif isinstance(sub, ast.Call):
                        # object.__setattr__(self, "field", ...) normalisation
                        func = sub.func
                        if (
                            isinstance(func, ast.Attribute)
                            and func.attr == "__setattr__"
                            and len(sub.args) >= 2
                            and isinstance(sub.args[1], ast.Constant)
                            and isinstance(sub.args[1].value, str)
                        ):
                            referenced.add(sub.args[1].value)
            for field_name, field_node in fields:
                if field_name not in referenced:
                    yield ctx.violation(
                        self,
                        field_node,
                        f"field `{field_name}` of {node.name} is never "
                        "referenced by a validation check in "
                        f"{'/'.join(VALIDATION_METHODS)}",
                    )


# --------------------------------------------------------------------------- R5
@register
class FloatEqualityRule(Rule):
    id = "R5"
    name = "float-equality"
    rationale = (
        "Float-literal ==/!= in tests is either a tolerance bug (use "
        "pytest.approx / np.isclose) or an intentional bit-exact pin, which "
        "must carry an explicit disable comment documenting that."
    )

    @staticmethod
    def _is_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        ):
            return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            literal = next((o for o in operands if self._is_float_literal(o)), None)
            if literal is not None:
                yield ctx.violation(
                    self,
                    node,
                    f"float literal compared with ==/!= "
                    f"(`{ast.unparse(node)[:60]}`); use pytest.approx/"
                    "np.isclose, or disable R5 for an intentional exact pin",
                )
