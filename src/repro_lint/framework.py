"""Core machinery of ``repro_lint``: contexts, rules, suppressions, runner.

The framework is deliberately small.  A :class:`Rule` looks at one
:class:`FileContext` (source text + parsed AST + resolved imports + location
metadata) and yields :class:`Violation` objects.  The :func:`lint_paths`
runner walks the requested trees, applies every registered rule to every
file, filters violations through ``# repro-lint: disable=RULE`` comments and
finally reports any *unused* suppression as a violation of its own
(:data:`META_RULE_ID`), so suppressions cannot rot silently.

Everything is pure stdlib (``ast`` + ``tokenize``) so the checker runs in any
environment the test-suite runs in.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: Rule id reserved for the framework's own checks (unused or unknown
#: suppressions).  It cannot itself be suppressed.
META_RULE_ID = "R0"

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s-]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Last physical line of the offending node — a suppression comment on
    #: any line of a multi-line statement silences the violation.
    end_line: int = 0

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Suppression:
    """One ``# repro-lint: disable=...`` comment for one rule id."""

    rule: str
    path: str
    line: int


class FileContext:
    """Everything a rule may want to know about one source file.

    Attributes
    ----------
    path:
        Path as given to the runner.
    rel_path:
        POSIX-style path relative to the lint root (used in reports and for
        location-scoped rules).
    module:
        Dotted module path for files under ``src/`` (``repro.caching.engine``),
        else ``None``.
    is_test:
        Whether the file lives under a ``tests/`` directory or is named
        ``test_*.py`` / ``conftest.py``.
    source / tree / lines:
        Raw text, parsed ``ast.Module`` and split physical lines.
    import_aliases:
        Local name -> fully dotted module for ``import x.y as z`` forms
        (``np`` -> ``numpy``).
    from_imports:
        Local name -> fully dotted origin for ``from x import y as z`` forms
        (``perf_counter`` -> ``time.perf_counter``).
    """

    def __init__(self, path: str, source: str, rel_path: Optional[str] = None):
        self.path = str(path)
        self.rel_path = (rel_path if rel_path is not None else str(path)).replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.path)
        self.module = self._module_of(self.rel_path)
        parts = Path(self.rel_path).parts
        name = Path(self.rel_path).name
        self.is_test = "tests" in parts or name.startswith("test_") or name == "conftest.py"
        self.import_aliases: Dict[str, str] = {}
        self.from_imports: Dict[str, str] = {}
        self._collect_imports()

    @staticmethod
    def _module_of(rel_path: str) -> Optional[str]:
        parts = Path(rel_path).parts
        if "src" not in parts:
            return None
        idx = parts.index("src")
        mod_parts = list(parts[idx + 1 :])
        if not mod_parts or not mod_parts[-1].endswith(".py"):
            return None
        mod_parts[-1] = mod_parts[-1][: -len(".py")]
        if mod_parts[-1] == "__init__":
            mod_parts.pop()
        return ".".join(mod_parts) if mod_parts else None

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds `c` -> a.b
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.import_aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports never alias external modules
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.from_imports[local] = f"{node.module}.{alias.name}"

    # ------------------------------------------------------------- name helpers
    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve a pure ``Name``/``Attribute`` chain to a dotted string.

        Import aliases are expanded (``np.random.seed`` -> ``numpy.random.seed``,
        ``perf_counter`` -> ``time.perf_counter``).  Chains interrupted by
        calls or subscripts resolve to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = node.id
        if head in self.import_aliases:
            head = self.import_aliases[head]
        elif head in self.from_imports:
            head = self.from_imports[head]
        parts.append(head)
        return ".".join(reversed(parts))

    def violation(self, rule: "Rule", node: ast.AST, message: str) -> Violation:
        """Build a :class:`Violation` for ``node`` in this file."""
        return Violation(
            rule=rule.id,
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            end_line=getattr(node, "end_lineno", None) or getattr(node, "lineno", 1),
        )


class Rule:
    """Base class for lint rules.  Subclasses register via :func:`register`."""

    #: Short stable id used in reports and suppressions (``R1``...).
    id: str = ""
    #: Human-readable mnemonic (``bare-random-state``).
    name: str = ""
    #: One-paragraph rationale shown by ``--list-rules``.
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError


#: Registry of rule classes by id, in registration order.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.id or not cls.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if cls.id == META_RULE_ID:
        raise ValueError(f"{META_RULE_ID} is reserved for the framework")
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in registration order."""
    return [cls() for cls in RULE_REGISTRY.values()]


def known_rule_ids() -> Set[str]:
    return set(RULE_REGISTRY) | {META_RULE_ID}


# ----------------------------------------------------------------- suppressions
def collect_suppressions(ctx: FileContext) -> List[Suppression]:
    """Parse ``# repro-lint: disable=R1[,R2]`` comments out of ``ctx``."""
    found: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(ctx.source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            for rule_id in match.group(1).split(","):
                rule_id = rule_id.strip()
                if rule_id:
                    found.append(
                        Suppression(rule=rule_id, path=ctx.rel_path, line=tok.start[0])
                    )
    except tokenize.TokenError:  # pragma: no cover - ast.parse already failed
        pass
    return found


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def extend(self, other: "LintResult") -> None:
        self.violations.extend(other.violations)
        self.files_checked += other.files_checked
        self.suppressed += other.suppressed

    def sorted_violations(self) -> List[Violation]:
        return sorted(self.violations, key=Violation.sort_key)


# ----------------------------------------------------------------------- runner
def lint_context(ctx: FileContext, rules: Optional[Sequence[Rule]] = None) -> LintResult:
    """Run ``rules`` (default: all registered) over one parsed file."""
    active = list(rules) if rules is not None else all_rules()
    raw: List[Violation] = []
    for rule in active:
        raw.extend(rule.check(ctx))

    suppressions = collect_suppressions(ctx)
    by_rule_line: Dict[str, Set[int]] = {}
    for sup in suppressions:
        by_rule_line.setdefault(sup.rule, set()).add(sup.line)

    used: Set[Tuple[str, int]] = set()
    kept: List[Violation] = []
    for violation in raw:
        lines = by_rule_line.get(violation.rule, set())
        hit = [ln for ln in lines if violation.line <= ln <= violation.end_line]
        if hit:
            used.update((violation.rule, ln) for ln in hit)
        else:
            kept.append(violation)

    result = LintResult(violations=kept, files_checked=1, suppressed=len(raw) - len(kept))
    known = known_rule_ids()
    checked_ids = {rule.id for rule in active}
    for sup in suppressions:
        if sup.rule not in known:
            result.violations.append(
                Violation(
                    rule=META_RULE_ID,
                    path=ctx.rel_path,
                    line=sup.line,
                    col=0,
                    message=f"suppression names unknown rule {sup.rule!r}",
                )
            )
        elif sup.rule in checked_ids and (sup.rule, sup.line) not in used:
            result.violations.append(
                Violation(
                    rule=META_RULE_ID,
                    path=ctx.rel_path,
                    line=sup.line,
                    col=0,
                    message=(
                        f"unused suppression: no {sup.rule} violation on this "
                        "line (remove the disable comment)"
                    ),
                )
            )
    return result


def lint_source(
    source: str,
    rel_path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint an in-memory snippet as if it lived at ``rel_path``."""
    return lint_context(FileContext(rel_path, source, rel_path=rel_path), rules=rules)


def iter_python_files(paths: Sequence[str], root: Path) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` (files or directories), sorted.

    Hidden directories and ``__pycache__`` are skipped.  Paths are resolved
    relative to ``root``.
    """
    for raw in paths:
        base = Path(raw)
        if not base.is_absolute():
            base = root / base
        if base.is_file():
            yield base
            continue
        if not base.is_dir():
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for candidate in sorted(base.rglob("*.py")):
            parts = candidate.relative_to(base).parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts[:-1]):
                continue
            yield candidate


def lint_paths(
    paths: Sequence[str],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and merge the results.

    Files that fail to parse are reported as a :data:`META_RULE_ID` violation
    rather than aborting the run.
    """
    root = Path(root) if root is not None else Path.cwd()
    result = LintResult()
    for file_path in iter_python_files(paths, root):
        try:
            rel = str(file_path.relative_to(root))
        except ValueError:
            rel = str(file_path)
        try:
            ctx = FileContext(str(file_path), file_path.read_text(), rel_path=rel)
        except SyntaxError as exc:
            result.violations.append(
                Violation(
                    rule=META_RULE_ID,
                    path=rel.replace("\\", "/"),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            result.files_checked += 1
            continue
        result.extend(lint_context(ctx, rules=rules))
    result.violations = result.sorted_violations()
    return result
