"""Reporters: render a :class:`~repro_lint.framework.LintResult` for humans or CI.

Two output formats:

* :func:`render_text` — one ``path:line:col: ID [name] message`` line per
  violation plus a one-line summary, the default CLI output.
* :func:`render_json` / :func:`to_json_dict` — a stable machine-readable
  document (schema version :data:`JSON_SCHEMA_VERSION`) for CI annotation
  tooling; ``tests/test_repro_lint.py`` pins the schema.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro_lint.framework import META_RULE_ID, RULE_REGISTRY, LintResult

#: Bumped whenever the JSON document shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def _rule_name(rule_id: str) -> str:
    if rule_id == META_RULE_ID:
        return "suppression-audit"
    cls = RULE_REGISTRY.get(rule_id)
    return cls.name if cls is not None else "unknown"


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [
        f"{v.path}:{v.line}:{v.col + 1}: {v.rule} [{_rule_name(v.rule)}] {v.message}"
        for v in result.sorted_violations()
    ]
    noun = "violation" if len(result.violations) == 1 else "violations"
    lines.append(
        f"repro-lint: {len(result.violations)} {noun} in "
        f"{result.files_checked} files ({result.suppressed} suppressed)"
    )
    return "\n".join(lines)


def to_json_dict(result: LintResult) -> Dict[str, Any]:
    """The JSON document as a dict (see :data:`JSON_SCHEMA_VERSION`)."""
    by_rule: Dict[str, int] = {}
    for violation in result.violations:
        by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "clean": result.clean,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "violation_counts": dict(sorted(by_rule.items())),
        "violations": [
            {
                "rule": v.rule,
                "name": _rule_name(v.rule),
                "path": v.path,
                "line": v.line,
                "col": v.col + 1,
                "message": v.message,
            }
            for v in result.sorted_violations()
        ],
    }


def render_json(result: LintResult) -> str:
    """The JSON document serialised with stable key order."""
    return json.dumps(to_json_dict(result), indent=2, sort_keys=False)
