"""Latency and bandwidth model of a block-addressable NVM device.

The paper measures a 375 GB NVM device with ``fio`` (Figure 2): 4 KB random
reads deliver roughly 10 µs mean latency at queue depth 1 rising to ~25 µs at
queue depth 8, with P99 around 25–80 µs, while bandwidth grows from ~0.4 GB/s
to ~2.3 GB/s and then saturates.  Figure 5 shows the loaded behaviour: as the
application approaches the device's effective bandwidth, mean and P99 latency
spike.

``NVMLatencyModel`` reproduces both behaviours with a small closed-form model:

* unloaded service time grows linearly with queue depth (device-internal
  queueing),
* bandwidth follows a saturating curve ``B_max * qd / (qd + k)``,
* loaded latency follows an M/M/1-style ``1 / (1 - utilisation)`` blow-up with
  a configurable knee, which is all Figure 5 needs.

The constants default to the paper's measurements and are all overridable, so
benchmarks can model faster or slower devices.

Domain clamping
---------------
Closed-loop callers (the serving front-end in :mod:`repro.serving` feeds
*observed* queue depths and throughputs back into this model) can legitimately
produce boundary values an ``fio`` sweep never would: a momentarily idle
device observes queue depth 0, and an overloaded one offers more throughput
than the device can absorb.  The model therefore clamps instead of raising at
both edges:

* queue depths in ``[0, 1)`` behave as depth 1 — the device always has at
  least the one read being served in flight; negative or non-finite depths
  remain errors,
* utilisation at or beyond 1 returns the saturation ceiling
  (``saturation_ceiling`` × the unloaded latency), and the pre-saturation
  blow-up is capped at that same ceiling, so loaded latency is monotone
  non-decreasing in offered throughput with no discontinuity at saturation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_fraction, check_non_negative, check_positive


@dataclass(frozen=True)
class LoadedLatency:
    """Mean and P99 latency (in microseconds) of the device under load."""

    mean_us: float
    p99_us: float


@dataclass(frozen=True)
class NVMLatencyModel:
    """Analytic latency/bandwidth model calibrated to the paper's Figure 2.

    Attributes
    ----------
    block_bytes:
        Size of one device block (4 KB in the paper).
    max_bandwidth_gbps:
        Saturated random-read bandwidth in GB/s (2.3 in the paper).
    bandwidth_half_depth:
        Queue depth at which bandwidth reaches half of the saturated value.
    base_latency_us:
        Mean latency of an isolated 4 KB read at queue depth 1.
    latency_per_depth_us:
        Additional mean latency per unit of queue depth beyond 1.
    p99_multiplier:
        Ratio of P99 to mean latency when unloaded.
    p99_depth_multiplier:
        Additional P99 amplification per unit of queue depth (tail grows
        faster than the mean, as in Figure 2a).
    saturation_knee:
        Utilisation at which loaded latency starts to climb steeply (Fig. 5).
    saturation_ceiling:
        Multiple of the unloaded latency reported at (and clamped to near)
        full utilisation; keeps load sweeps finite and monotone.
    """

    block_bytes: int = 4096
    max_bandwidth_gbps: float = 2.3
    bandwidth_half_depth: float = 1.0
    base_latency_us: float = 10.0
    latency_per_depth_us: float = 2.0
    p99_multiplier: float = 2.5
    p99_depth_multiplier: float = 0.6
    saturation_knee: float = 0.85
    saturation_ceiling: float = 100.0

    def __post_init__(self) -> None:
        check_positive(self.block_bytes, "block_bytes")
        check_positive(self.max_bandwidth_gbps, "max_bandwidth_gbps")
        check_positive(self.bandwidth_half_depth, "bandwidth_half_depth")
        check_positive(self.base_latency_us, "base_latency_us")
        check_positive(self.p99_multiplier, "p99_multiplier")
        check_fraction(self.saturation_knee, "saturation_knee")
        check_positive(self.saturation_ceiling, "saturation_ceiling")

    @staticmethod
    def _clamp_depth(queue_depth: float) -> float:
        """Clamp queue depths in ``[0, 1)`` to 1 (see "Domain clamping")."""
        check_non_negative(queue_depth, "queue_depth")
        return max(float(queue_depth), 1.0)

    # ------------------------------------------------------- unloaded (Fig 2)
    def bandwidth_gbps(self, queue_depth: float) -> float:
        """Random-read bandwidth (GB/s) at the given queue depth."""
        queue_depth = self._clamp_depth(queue_depth)
        return self.max_bandwidth_gbps * queue_depth / (
            queue_depth + self.bandwidth_half_depth
        )

    def mean_latency_us(self, queue_depth: float) -> float:
        """Mean 4 KB read latency (µs) at the given queue depth, unloaded."""
        queue_depth = self._clamp_depth(queue_depth)
        return self.base_latency_us + self.latency_per_depth_us * (queue_depth - 1.0)

    def p99_latency_us(self, queue_depth: float) -> float:
        """P99 4 KB read latency (µs) at the given queue depth, unloaded."""
        queue_depth = self._clamp_depth(queue_depth)
        multiplier = self.p99_multiplier + self.p99_depth_multiplier * (queue_depth - 1.0)
        return self.mean_latency_us(queue_depth) * multiplier

    # --------------------------------------------------------- loaded (Fig 5)
    def loaded_latency(
        self,
        device_throughput_mbps: float,
        queue_depth: float = 8.0,
    ) -> LoadedLatency:
        """Latency when the device serves ``device_throughput_mbps`` of block reads.

        ``device_throughput_mbps`` is the rate of bytes physically read from
        the device (block reads × block size), *not* the application-useful
        bytes.  As it approaches the device's saturated bandwidth, latency
        rises sharply; at and beyond saturation the model returns the
        ``saturation_ceiling`` multiple of the unloaded latency rather than
        raising, and the pre-saturation blow-up is capped at that same
        ceiling, so the result is monotone non-decreasing in throughput
        (closed-loop callers rely on this — see "Domain clamping" above).
        """
        if device_throughput_mbps < 0:
            raise ValueError("device_throughput_mbps must be >= 0")
        capacity_mbps = self.bandwidth_gbps(queue_depth) * 1000.0
        utilisation = device_throughput_mbps / capacity_mbps
        base_mean = self.mean_latency_us(queue_depth)
        base_p99 = self.p99_latency_us(queue_depth)
        if utilisation >= 1.0:
            inflation = self.saturation_ceiling
        elif utilisation <= self.saturation_knee:
            # Piecewise queueing blow-up: gentle before the knee, 1/(1-u) after.
            inflation = 1.0 + utilisation / (1.0 - self.saturation_knee) * 0.25
        else:
            inflation = (1.0 - self.saturation_knee * 0.25) / (1.0 - utilisation)
        inflation = min(max(inflation, 1.0), self.saturation_ceiling)
        return LoadedLatency(mean_us=base_mean * inflation, p99_us=base_p99 * inflation)

    def application_latency(
        self,
        app_throughput_mbps: float,
        effective_bandwidth_fraction: float,
        queue_depth: float = 8.0,
    ) -> LoadedLatency:
        """Latency seen by an application with a given *effective bandwidth*.

        The paper defines effective bandwidth as the fraction of the bytes
        read from NVM that the application actually uses.  The baseline policy
        uses 128 B of every 4 KB block, i.e. ~3 % effective bandwidth, so the
        device saturates at a tiny application throughput (Figure 5).
        """
        check_fraction(effective_bandwidth_fraction, "effective_bandwidth_fraction")
        if effective_bandwidth_fraction == 0:
            raise ValueError("effective_bandwidth_fraction must be > 0")
        device_mbps = app_throughput_mbps / effective_bandwidth_fraction
        return self.loaded_latency(device_mbps, queue_depth=queue_depth)

    # ----------------------------------------------------------------- helper
    def blocks_per_second(self, queue_depth: float) -> float:
        """Device block-read rate at the given queue depth."""
        return self.bandwidth_gbps(queue_depth) * 1e9 / self.block_bytes
