"""Write-endurance accounting for the NVM device.

NVM endurance degrades with writes: the paper notes typical devices tolerate
about 30 full-device rewrites per day (DWPD), while Facebook's embedding
retraining rewrites the tables 10–20 times a day — comfortably below the
limit.  :class:`EnduranceTracker` keeps the bookkeeping so deployments (and
the examples in this repository) can check that a retraining cadence stays
within budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_non_negative, check_positive


@dataclass
class EnduranceTracker:
    """Tracks bytes written to the device against a drive-writes-per-day budget.

    Parameters
    ----------
    capacity_bytes:
        Usable capacity of the device.
    dwpd_limit:
        Maximum sustainable full-device writes per day (30 for the paper's
        device class).
    """

    capacity_bytes: int
    dwpd_limit: float = 30.0
    _bytes_written: int = field(default=0, init=False)
    _elapsed_days: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        check_positive(self.capacity_bytes, "capacity_bytes")
        check_positive(self.dwpd_limit, "dwpd_limit")

    # ------------------------------------------------------------------ record
    def record_write(self, num_bytes: int) -> None:
        """Account for ``num_bytes`` written to the device."""
        check_non_negative(num_bytes, "num_bytes")
        self._bytes_written += int(num_bytes)

    def advance_time(self, days: float) -> None:
        """Advance the accounting clock by ``days`` (fractions allowed)."""
        check_non_negative(days, "days")
        self._elapsed_days += float(days)

    # ----------------------------------------------------------------- inspect
    @property
    def bytes_written(self) -> int:
        """Total bytes written so far."""
        return self._bytes_written

    @property
    def elapsed_days(self) -> float:
        """Days of operation recorded so far."""
        return self._elapsed_days

    @property
    def device_writes(self) -> float:
        """Number of full-device writes performed so far."""
        return self._bytes_written / self.capacity_bytes

    @property
    def drive_writes_per_day(self) -> float:
        """Average full-device writes per day over the recorded period.

        Returns ``0`` until time has been advanced, so a fresh tracker never
        reports a violation.
        """
        if self._elapsed_days <= 0:
            return 0.0
        return self.device_writes / self._elapsed_days

    @property
    def within_budget(self) -> bool:
        """Whether the observed write rate is within the DWPD limit."""
        return self.drive_writes_per_day <= self.dwpd_limit

    def headroom(self) -> float:
        """Remaining DWPD headroom (limit minus observed rate)."""
        return self.dwpd_limit - self.drive_writes_per_day

    def reset(self) -> None:
        """Clear all recorded writes and elapsed time."""
        self._bytes_written = 0
        self._elapsed_days = 0.0
