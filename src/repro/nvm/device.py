"""The simulated NVM block device.

The real system issues 4 KB block reads to an NVM drive through Libaio; all of
Bandana's decisions are driven by *how many* block reads the drive serves and
what latency it delivers at a given load.  :class:`NVMDevice` therefore models
the device as a counted collection of fixed-size blocks with an attached
latency model and endurance tracker.  It can optionally hold real block
payloads (used by the end-to-end examples that return actual embedding
values); the replay benchmarks run it in pure counting mode for speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
import numpy.typing as npt

from repro.nvm.endurance import EnduranceTracker
from repro.nvm.latency import NVMLatencyModel
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NVMReadResult:
    """Outcome of a single block read."""

    block_id: int
    latency_us: float
    data: Optional[np.ndarray] = None


class NVMDevice:
    """A block-addressable NVM device with latency and endurance accounting.

    Parameters
    ----------
    num_blocks:
        Number of addressable blocks.
    block_bytes:
        Block size in bytes (4096 in the paper).
    latency_model:
        Latency/bandwidth model; defaults to the paper-calibrated model.
    dwpd_limit:
        Endurance budget in drive-writes-per-day.
    track_per_block_reads:
        When true, keeps a per-block read histogram (useful for debugging
        placement quality; adds memory proportional to ``num_blocks``).
    """

    def __init__(
        self,
        num_blocks: int,
        block_bytes: int = 4096,
        latency_model: Optional[NVMLatencyModel] = None,
        dwpd_limit: float = 30.0,
        track_per_block_reads: bool = False,
    ) -> None:
        check_positive(num_blocks, "num_blocks")
        check_positive(block_bytes, "block_bytes")
        self.num_blocks = int(num_blocks)
        self.block_bytes = int(block_bytes)
        self.latency_model = latency_model or NVMLatencyModel(block_bytes=block_bytes)
        self.endurance = EnduranceTracker(
            capacity_bytes=self.num_blocks * self.block_bytes, dwpd_limit=dwpd_limit
        )
        self._payloads: Dict[int, np.ndarray] = {}
        self._blocks_read = 0
        self._blocks_written = 0
        self._total_read_latency_us = 0.0
        self._per_block_reads: Optional[np.ndarray] = (
            np.zeros(self.num_blocks, dtype=np.int64) if track_per_block_reads else None
        )

    # ------------------------------------------------------------------ writes
    def write_block(self, block_id: int, data: Optional[np.ndarray] = None) -> None:
        """Write one block (e.g. during table loading or retraining).

        ``data`` is stored only if provided; counting-mode users simply get the
        endurance/byte accounting.
        """
        self._check_block(block_id)
        if data is not None:
            data = np.asarray(data)
            if data.nbytes > self.block_bytes:
                raise ValueError(
                    f"payload of {data.nbytes} bytes exceeds block size {self.block_bytes}"
                )
            self._payloads[block_id] = data
        self._blocks_written += 1
        self.endurance.record_write(self.block_bytes)

    def write_all_blocks(self) -> None:
        """Account for a full-device rewrite (one embedding retraining push)."""
        for block_id in range(self.num_blocks):
            self.write_block(block_id)

    # ------------------------------------------------------------------- reads
    def read_block(self, block_id: int, queue_depth: float = 8.0) -> NVMReadResult:
        """Read one block, returning its payload (if any) and modelled latency."""
        self._check_block(block_id)
        latency = self.latency_model.mean_latency_us(queue_depth)
        self._blocks_read += 1
        self._total_read_latency_us += latency
        if self._per_block_reads is not None:
            self._per_block_reads[block_id] += 1
        return NVMReadResult(
            block_id=block_id,
            latency_us=latency,
            data=self._payloads.get(block_id),
        )

    def read_blocks(self, block_ids: npt.ArrayLike, queue_depth: float = 8.0) -> float:
        """Read several blocks; returns the total modelled latency in µs.

        Reads at the same queue depth overlap on the device, so the modelled
        wall-clock latency of a batch is the per-read latency times the number
        of serial rounds (``ceil(len(block_ids) / queue_depth)``).
        """
        block_ids = np.asarray(block_ids, dtype=np.int64)
        for block_id in block_ids:
            self.read_block(int(block_id), queue_depth=queue_depth)
        if block_ids.size == 0:
            return 0.0
        rounds = int(np.ceil(block_ids.size / queue_depth))
        return rounds * self.latency_model.mean_latency_us(queue_depth)

    # ---------------------------------------------------------------- counters
    @property
    def blocks_read(self) -> int:
        """Total number of block reads served."""
        return self._blocks_read

    @property
    def bytes_read(self) -> int:
        """Total bytes physically read from the device."""
        return self._blocks_read * self.block_bytes

    @property
    def blocks_written(self) -> int:
        """Total number of block writes."""
        return self._blocks_written

    @property
    def mean_read_latency_us(self) -> float:
        """Average modelled latency over all reads so far."""
        if self._blocks_read == 0:
            return 0.0
        return self._total_read_latency_us / self._blocks_read

    @property
    def per_block_reads(self) -> Optional[np.ndarray]:
        """Per-block read counts, or ``None`` if tracking is disabled."""
        return self._per_block_reads

    def reset_counters(self) -> None:
        """Zero the read/write counters (payloads and endurance are kept)."""
        self._blocks_read = 0
        self._blocks_written = 0
        self._total_read_latency_us = 0.0
        if self._per_block_reads is not None:
            self._per_block_reads[:] = 0

    # ----------------------------------------------------------------- private
    def _check_block(self, block_id: int) -> None:
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(
                f"block_id {block_id} out of range [0, {self.num_blocks})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NVMDevice(num_blocks={self.num_blocks}, block_bytes={self.block_bytes}, "
            f"blocks_read={self._blocks_read})"
        )
