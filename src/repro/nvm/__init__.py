"""Block-addressable NVM device model and block layout machinery.

The paper uses a 375 GB NVM block device whose read bandwidth saturates around
2.3 GB/s and whose latency grows with queue depth (Figure 2) and with load
(Figure 5).  Byte-addressable NVM DIMMs were not available, so the device is
read in 4 KB blocks; a 128 B embedding-vector read therefore wastes 96 % of
the device bandwidth unless neighbouring vectors in the block are useful.

This package provides:

* :class:`repro.nvm.BlockLayout` — the mapping from vector id to (block, slot)
  induced by a placement order,
* :class:`repro.nvm.NVMLatencyModel` — the queue-depth/throughput latency
  curves calibrated to the paper's Figure 2/5 measurements,
* :class:`repro.nvm.NVMDevice` — the device itself: block reads/writes,
  counters, latency accounting and endurance tracking,
* :class:`repro.nvm.EnduranceTracker` and :class:`repro.nvm.DRAMModel`.
"""

from repro.nvm.block import BlockLayout
from repro.nvm.latency import NVMLatencyModel, LoadedLatency
from repro.nvm.device import NVMDevice, NVMReadResult
from repro.nvm.endurance import EnduranceTracker
from repro.nvm.dram import DRAMModel

__all__ = [
    "BlockLayout",
    "NVMLatencyModel",
    "LoadedLatency",
    "NVMDevice",
    "NVMReadResult",
    "EnduranceTracker",
    "DRAMModel",
]
