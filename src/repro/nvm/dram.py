"""Reference DRAM performance and cost constants.

Bandana's motivation is the total-cost-of-ownership gap between DRAM and NVM:
the paper quotes DRAM read bandwidth around 75 GB/s (versus 2.3 GB/s for the
NVM device) and an NVM cost roughly an order of magnitude lower per bit.
:class:`DRAMModel` packages those constants so examples and benchmarks can
report TCO-style comparisons next to the bandwidth results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DRAMModel:
    """Simple DRAM performance/cost model used for comparisons.

    Attributes
    ----------
    bandwidth_gbps:
        Sustained read bandwidth (the paper quotes ~75 GB/s).
    latency_us:
        Random access latency in microseconds (~0.1 µs).
    cost_per_gb:
        Relative cost per GB.  Only the *ratio* to ``nvm_cost_per_gb`` matters
        for the TCO comparisons; the paper states NVM is about an order of
        magnitude cheaper per bit.
    nvm_cost_per_gb:
        Relative cost per GB of the NVM device.
    """

    bandwidth_gbps: float = 75.0
    latency_us: float = 0.1
    cost_per_gb: float = 10.0
    nvm_cost_per_gb: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.bandwidth_gbps, "bandwidth_gbps")
        check_positive(self.latency_us, "latency_us")
        check_positive(self.cost_per_gb, "cost_per_gb")
        check_positive(self.nvm_cost_per_gb, "nvm_cost_per_gb")

    def cost(self, dram_bytes: float, nvm_bytes: float = 0.0) -> float:
        """Relative cost of a deployment holding the given bytes in each medium."""
        if dram_bytes < 0 or nvm_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        gib = 1024.0 ** 3
        return (dram_bytes / gib) * self.cost_per_gb + (nvm_bytes / gib) * self.nvm_cost_per_gb

    def savings_vs_all_dram(self, total_bytes: float, dram_cache_bytes: float) -> float:
        """Fractional TCO saving of a Bandana deployment versus all-DRAM.

        ``total_bytes`` is the full embedding footprint; ``dram_cache_bytes``
        is the DRAM cache Bandana keeps (the rest lives on NVM).
        """
        if dram_cache_bytes > total_bytes:
            raise ValueError("dram_cache_bytes cannot exceed total_bytes")
        all_dram = self.cost(total_bytes)
        bandana = self.cost(dram_cache_bytes, total_bytes)
        if all_dram == 0:
            return 0.0
        return 1.0 - bandana / all_dram
