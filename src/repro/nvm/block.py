"""Block layout: the mapping from embedding-vector ids to NVM blocks.

A placement algorithm (identity, K-means, SHP, ...) produces an *order* — a
permutation of vector ids giving their physical storage order.  Packing that
order into fixed-size blocks of ``vectors_per_block`` vectors yields the
:class:`BlockLayout`, which the cache and the device use to answer two
questions: *which block holds vector v?* and *which vectors share v's block?*
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import numpy.typing as npt

from repro.utils.validation import check_array_1d_ints, check_positive


class BlockLayout:
    """Mapping between vector ids and (block, slot) physical positions.

    Parameters
    ----------
    order:
        Permutation of ``range(num_vectors)``; ``order[i]`` is the vector id
        stored at physical position ``i``.
    vectors_per_block:
        Number of vectors packed into one NVM block (the paper uses
        4096 B / 128 B = 32).  The final block may be partially filled.
    """

    def __init__(self, order: Iterable[int], vectors_per_block: int) -> None:
        order = check_array_1d_ints(order, "order")
        check_positive(vectors_per_block, "vectors_per_block")
        num_vectors = order.size
        if num_vectors == 0:
            raise ValueError("order must contain at least one vector id")
        # Validate that `order` is a permutation of 0..n-1.
        seen = np.zeros(num_vectors, dtype=bool)
        if order.min() < 0 or order.max() >= num_vectors:
            raise ValueError("order must be a permutation of range(num_vectors)")
        seen[order] = True
        if not seen.all():
            raise ValueError("order must be a permutation of range(num_vectors)")

        self.vectors_per_block = int(vectors_per_block)
        self.num_vectors = int(num_vectors)
        self._order = order
        positions = np.empty(num_vectors, dtype=np.int64)
        positions[order] = np.arange(num_vectors, dtype=np.int64)
        self._position_of = positions
        self._block_of = positions // self.vectors_per_block
        self._slot_of = positions % self.vectors_per_block

    # ------------------------------------------------------------------ basic
    @property
    def order(self) -> np.ndarray:
        """The physical storage order (position -> vector id)."""
        return self._order

    @property
    def num_blocks(self) -> int:
        """Number of NVM blocks needed to hold the table."""
        return int(
            (self.num_vectors + self.vectors_per_block - 1) // self.vectors_per_block
        )

    @classmethod
    def identity(cls, num_vectors: int, vectors_per_block: int) -> "BlockLayout":
        """The original (id-ordered) layout used as the paper's baseline."""
        return cls(np.arange(int(num_vectors), dtype=np.int64), vectors_per_block)

    # ----------------------------------------------------------------- queries
    def block_of(self, vector_ids: npt.ArrayLike) -> np.ndarray:
        """Block index holding each of the given vector ids."""
        ids = check_array_1d_ints(vector_ids, "vector_ids")
        self._check_ids(ids)
        return self._block_of[ids]

    def slot_of(self, vector_ids: npt.ArrayLike) -> np.ndarray:
        """Slot (offset within the block) of each of the given vector ids."""
        ids = check_array_1d_ints(vector_ids, "vector_ids")
        self._check_ids(ids)
        return self._slot_of[ids]

    def position_of(self, vector_ids: npt.ArrayLike) -> np.ndarray:
        """Physical position of each of the given vector ids."""
        ids = check_array_1d_ints(vector_ids, "vector_ids")
        self._check_ids(ids)
        return self._position_of[ids]

    def vectors_in_block(self, block_id: int) -> np.ndarray:
        """Vector ids stored in the given block, in slot order."""
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(f"block_id {block_id} out of range [0, {self.num_blocks})")
        start = block_id * self.vectors_per_block
        stop = min(start + self.vectors_per_block, self.num_vectors)
        return self._order[start:stop]

    def blocks_for_query(self, vector_ids: npt.ArrayLike) -> np.ndarray:
        """Distinct blocks that must be read to serve a query (its *fanout*)."""
        if len(vector_ids) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.block_of(vector_ids))

    def fanout(self, vector_ids: npt.ArrayLike) -> int:
        """Number of distinct blocks a query touches."""
        return int(self.blocks_for_query(vector_ids).size)

    def average_fanout(self, queries: Iterable[npt.ArrayLike]) -> float:
        """Average fanout over a sequence of queries (the SHP objective, Eq. 3)."""
        queries = list(queries)
        if not queries:
            return 0.0
        return float(np.mean([self.fanout(q) for q in queries]))

    # ----------------------------------------------------------------- private
    def _check_ids(self, ids: np.ndarray) -> None:
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_vectors):
            raise IndexError(
                f"vector ids must be in [0, {self.num_vectors}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockLayout(num_vectors={self.num_vectors}, "
            f"vectors_per_block={self.vectors_per_block}, "
            f"num_blocks={self.num_blocks})"
        )
