"""Configuration objects for the end-to-end Bandana store.

The defaults reproduce the paper's end-to-end configuration (Section 5): SHP
placement trained with 16 iterations, 32 vectors per 4 KB block, a DRAM cache
budget expressed in vectors, per-table admission thresholds tuned by miniature
caches sampled at 0.1 %, and a hit-rate-curve-driven split of the DRAM budget
across tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.utils.validation import (
    check_bool,
    check_fraction,
    check_instance,
    check_int_at_least,
    check_positive,
    check_probability,
    check_seed,
)

#: Ways of splitting the DRAM budget across tables.
ALLOCATION_POLICIES = ("hit-rate", "proportional", "uniform")

#: Placement algorithms the store knows how to build.
PARTITIONERS = ("shp", "kmeans", "recursive-kmeans", "frequency", "identity")

#: Arrival processes the serving front-end can generate.
ARRIVAL_PROCESSES = ("poisson", "mmpp", "closed-loop")

#: Ways the serving front-end can account device time.
DEVICE_ACCOUNTING_MODES = ("legacy", "per-table", "shared")


@dataclass(frozen=True)
class DeviceBankConfig:
    """Knobs of the shared NVM device layer (:mod:`repro.device`).

    Attributes
    ----------
    accounting:
        How ``simulate_serving`` accounts device time.  ``"legacy"`` (the
        default) keeps the original single-accountant path — one FIFO clock
        charged each batch's *total* misses — bit-identical to the golden
        pins.  ``"per-table"`` gives every table a private device (each
        table's misses queue only behind their own table — the old
        accounting made honest, and the counterfactual the paper's shared
        hardware is compared against).  ``"shared"`` pins all tables onto
        ``devices_per_host`` physical devices round-robin, so tables
        sharing a device genuinely contend — the paper's single-host
        deployment.
    devices_per_host:
        Physical NVM devices in the host's bank under ``"shared"``
        accounting (ignored by the other modes: ``"legacy"`` is one clock
        by construction, ``"per-table"`` is one device per table).
    """

    accounting: str = "legacy"
    devices_per_host: int = 1

    def __post_init__(self) -> None:
        if self.accounting not in DEVICE_ACCOUNTING_MODES:
            raise ValueError(
                f"accounting must be one of {DEVICE_ACCOUNTING_MODES}, "
                f"got {self.accounting!r}"
            )
        check_int_at_least(self.devices_per_host, 1, "devices_per_host")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the batch-serving front-end (:mod:`repro.serving`).

    Attributes
    ----------
    arrival_rate_rps:
        Long-run request arrival rate in requests per second.  For the MMPP
        process this is the *stationary* mean rate, so sweeps over
        ``arrival_rate_rps`` offer the same average load regardless of the
        process shape.
    arrival_process:
        ``"poisson"`` (memoryless open-loop arrivals), ``"mmpp"`` (a
        two-state Markov-modulated Poisson process producing bursts) or
        ``"closed-loop"`` (a fixed population of ``closed_loop_clients``
        clients, each issuing its next request one exponential think time
        after the previous response — RPC fan-in, where saturation slows
        the clients down instead of growing the queue without bound).
    mmpp_burst_factor:
        Ratio of the bursty state's arrival rate to the quiet state's.
    mmpp_burst_fraction:
        Stationary fraction of time spent in the bursty state.
    mmpp_mean_dwell_s:
        Mean sojourn time of one visit to the bursty state, in seconds (the
        quiet state's dwell is derived from ``mmpp_burst_fraction``).
    max_batch_requests:
        Dynamic-batcher size cutoff: a batch is dispatched as soon as it
        holds this many requests.  ``1`` disables batching.
    max_linger_us:
        Dynamic-batcher time cutoff: a batch is dispatched once its oldest
        request has waited this long, full or not.
    slo_latency_us:
        Per-request latency SLO; the report counts violations against it.
    request_overhead_us:
        Fixed non-device latency added to every request (queueing-free
        front-end compute: pooling, RPC framing).
    max_device_queue_depth:
        Cap on the queue depth fed to the NVM latency model — the device
        exposes only so many submission slots, so deeper backlogs raise
        queueing delay (serial rounds) rather than device-internal depth.
    throughput_window_s:
        Trailing window over which the latency accountant measures device
        throughput for the loaded-latency feedback.
    closed_loop_clients:
        Client population size under ``"closed-loop"`` arrivals — a hard
        cap on in-flight requests (the concurrency invariant the tests
        pin).
    closed_loop_think_s:
        Mean think time (exponential) between a client's response and its
        next request.  The defaults offer ``32 / 0.016 s = 2000`` nominal
        rps, matching ``arrival_rate_rps``'s open-loop default.
    device:
        Shared NVM device layer knobs (:class:`DeviceBankConfig`):
        accounting mode (legacy / per-table / shared) and the host's
        physical device count.
    admission_queue_slack:
        Single-host admission control, ported from the cluster tier: at
        batch dispatch, a request is shed (fast rejection, no cache or
        device work) when any of its tables' device backlog exceeds
        ``slack ×`` that table's SLO.  ``None`` (the default) disables
        shedding entirely — the golden-pinned behaviour.
    table_slo_us:
        Per-table SLO overrides for admission control, a ``(name, slo_us)``
        tuple sequence; tables not named fall back to ``slo_latency_us``
        (see :meth:`slo_us`).
    seed:
        Seed of the arrival process; ``None`` inherits the store seed.
    """

    arrival_rate_rps: float = 2000.0
    arrival_process: str = "poisson"
    mmpp_burst_factor: float = 4.0
    mmpp_burst_fraction: float = 0.2
    mmpp_mean_dwell_s: float = 0.02
    max_batch_requests: int = 16
    max_linger_us: float = 500.0
    slo_latency_us: float = 2000.0
    request_overhead_us: float = 5.0
    max_device_queue_depth: float = 64.0
    throughput_window_s: float = 0.05
    closed_loop_clients: int = 32
    closed_loop_think_s: float = 0.016
    device: DeviceBankConfig = DeviceBankConfig()
    admission_queue_slack: Optional[float] = None
    table_slo_us: Sequence[Tuple[str, float]] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive(self.arrival_rate_rps, "arrival_rate_rps")
        check_positive(self.mmpp_burst_factor, "mmpp_burst_factor")
        check_positive(self.mmpp_mean_dwell_s, "mmpp_mean_dwell_s")
        check_int_at_least(self.max_batch_requests, 1, "max_batch_requests")
        check_positive(self.slo_latency_us, "slo_latency_us")
        check_positive(self.max_device_queue_depth, "max_device_queue_depth")
        check_positive(self.throughput_window_s, "throughput_window_s")
        if self.max_linger_us < 0:
            raise ValueError("max_linger_us must be >= 0")
        if self.request_overhead_us < 0:
            raise ValueError("request_overhead_us must be >= 0")
        check_fraction(self.mmpp_burst_fraction, "mmpp_burst_fraction")
        check_int_at_least(self.closed_loop_clients, 1, "closed_loop_clients")
        check_positive(self.closed_loop_think_s, "closed_loop_think_s")
        check_instance(self.device, DeviceBankConfig, "device")
        if self.admission_queue_slack is not None:
            check_positive(self.admission_queue_slack, "admission_queue_slack")
        check_seed(self.seed, "seed")
        if self.arrival_process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"arrival_process must be one of {ARRIVAL_PROCESSES}, "
                f"got {self.arrival_process!r}"
            )
        if self.arrival_process == "mmpp" and not 0 < self.mmpp_burst_fraction < 1:
            raise ValueError(
                "mmpp_burst_fraction must lie strictly between 0 and 1"
            )
        slos = tuple((str(name), float(slo)) for name, slo in self.table_slo_us)
        for name, slo in slos:
            check_positive(slo, f"table_slo_us[{name!r}]")
        object.__setattr__(self, "table_slo_us", slos)

    def slo_us(self, table_name: str) -> float:
        """The admission-control latency SLO for one table."""
        for name, slo in self.table_slo_us:
            if name == table_name:
                return slo
        return self.slo_latency_us


@dataclass(frozen=True)
class TracingConfig:
    """Knobs of the per-request span tracer (:mod:`repro.tracing`).

    Attributes
    ----------
    enabled:
        Master switch.  Disabled (the default), the serving and cluster
        paths use the shared no-op tracer — instrumentation costs one
        attribute load and a branch per site, allocates nothing, and every
        golden pin stays bit-identical.
    sample_every:
        Retain every ``sample_every``-th request's trace (``1`` retains
        all).  Sampling bounds memory on long runs without losing the
        shape of the per-stage breakdown.
    always_sample_slo_violations:
        Retain every request whose end-to-end latency exceeded the run's
        SLO regardless of ``sample_every`` — tail regressions live in a
        handful of requests uniform sampling would miss.
    max_requests:
        Hard cap on retained traces; beyond it the oldest retained trace
        is evicted first (the tracer's conservation counters still account
        for every request ever started).
    top_k_slow:
        How many slowest requests the summary renders with their critical
        paths (the benchmark artifacts' "why is p999 what it is" section).
    """

    enabled: bool = False
    sample_every: int = 1
    always_sample_slo_violations: bool = True
    max_requests: int = 4096
    top_k_slow: int = 5

    def __post_init__(self) -> None:
        check_bool(self.enabled, "enabled")
        check_bool(self.always_sample_slo_violations, "always_sample_slo_violations")
        check_int_at_least(self.sample_every, 1, "sample_every")
        check_int_at_least(self.max_requests, 1, "max_requests")
        check_int_at_least(self.top_k_slow, 1, "top_k_slow")


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the simulated multi-node cluster store (:mod:`repro.cluster`).

    Topology
    --------
    num_nodes:
        Simulated store nodes in the cluster.
    replication:
        Copies of every shard (``R``), placed on distinct nodes by walking
        the consistent-hash ring.  Reads go to one replica (read-one); the
        others absorb retries and hedges.  Clamped to ``num_nodes`` at ring
        construction.
    virtual_nodes:
        Virtual nodes per physical node on the hash ring — more vnodes
        smooth the per-node ownership shares at the cost of ring size.
    devices_per_node:
        Physical NVM devices in each node's bank (:mod:`repro.device`).
        ``1`` (the default) keeps every node a single FIFO resource — the
        pre-bank semantics, golden-pinned; more devices spread a node's
        tables round-robin so reads of co-hosted tables stop queueing
        behind each other.

    Per-attempt costs
    -----------------
    node_overhead_us:
        Fixed per-shard-read service time on the owning node (request
        parsing, cache probing), before any NVM reads.
    link_delay_us:
        Healthy one-way network delay between the router and a node (paid
        twice per attempt).
    shard_timeout_us:
        How long the router waits for a shard read before declaring the
        attempt dead (crashed node, lost packet) and retrying.

    Retries, hedging, breaker, admission
    ------------------------------------
    retry_backoff_us / retry_backoff_cap_us:
        First retry backoff and its cap; the backoff doubles per attempt
        (capped exponential backoff), and each retry targets the shard's
        next replica.
    max_attempts:
        Total attempts (first try + retries) before a shard read is declared
        failed and the request degrades.
    hedge_enabled / hedge_quantile / hedge_min_us:
        Hedged reads: when a first attempt's observed latency exceeds the
        running ``hedge_quantile`` estimate of shard latency (never below
        ``hedge_min_us``), a duplicate read is fired at another replica and
        the earlier completion wins.  Requires ``replication >= 2``.
    breaker_failure_threshold:
        Consecutive failures-or-slow-responses after which a node's circuit
        breaker opens (the router stops routing to it without paying
        timeouts).
    breaker_slow_threshold_us:
        Attempt latency counted as a "slow strike" against the breaker —
        this is what ejects persistently slow (but alive) replicas.
    breaker_cooloff_s:
        Simulated seconds an open breaker stays open before the node is
        probed again (half-open).
    admission_queue_slack:
        Queue-level admission control: a node sheds a shard read instead of
        enqueueing it when its backlog exceeds ``slack ×`` the table's SLO
        (see ``table_slo_us``), so overload degrades into fast rejections
        (picked up by another replica) rather than unbounded queueing.
    default_slo_us / table_slo_us:
        Per-table latency SLOs used by admission control; ``table_slo_us``
        is a ``(name, slo_us)`` tuple sequence overriding the default.

    request_overhead_us:
        Router-side fan-out/fan-in overhead added to every request.
    seed:
        Seed of the cluster's stochastic machinery (link-loss draws).
    """

    num_nodes: int = 4
    replication: int = 2
    virtual_nodes: int = 64
    devices_per_node: int = 1
    node_overhead_us: float = 5.0
    link_delay_us: float = 2.0
    shard_timeout_us: float = 1000.0
    retry_backoff_us: float = 100.0
    retry_backoff_cap_us: float = 2000.0
    max_attempts: int = 4
    hedge_enabled: bool = True
    hedge_quantile: float = 0.99
    hedge_min_us: float = 100.0
    breaker_failure_threshold: int = 5
    breaker_slow_threshold_us: float = 20000.0
    breaker_cooloff_s: float = 0.25
    admission_queue_slack: float = 4.0
    default_slo_us: float = 2000.0
    table_slo_us: Sequence[Tuple[str, float]] = ()
    request_overhead_us: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_int_at_least(self.num_nodes, 1, "num_nodes")
        check_int_at_least(self.replication, 1, "replication")
        check_int_at_least(self.virtual_nodes, 1, "virtual_nodes")
        check_int_at_least(self.devices_per_node, 1, "devices_per_node")
        check_int_at_least(self.max_attempts, 1, "max_attempts")
        check_int_at_least(
            self.breaker_failure_threshold, 1, "breaker_failure_threshold"
        )
        if self.node_overhead_us < 0:
            raise ValueError("node_overhead_us must be >= 0")
        if self.link_delay_us < 0:
            raise ValueError("link_delay_us must be >= 0")
        check_positive(self.shard_timeout_us, "shard_timeout_us")
        check_positive(self.retry_backoff_us, "retry_backoff_us")
        check_positive(self.retry_backoff_cap_us, "retry_backoff_cap_us")
        if self.retry_backoff_cap_us < self.retry_backoff_us:
            raise ValueError(
                "retry_backoff_cap_us must be >= retry_backoff_us "
                f"({self.retry_backoff_cap_us} < {self.retry_backoff_us})"
            )
        check_bool(self.hedge_enabled, "hedge_enabled")
        check_seed(self.seed, "seed")
        check_fraction(self.hedge_quantile, "hedge_quantile")
        check_positive(self.hedge_min_us, "hedge_min_us")
        check_positive(self.breaker_slow_threshold_us, "breaker_slow_threshold_us")
        check_positive(self.breaker_cooloff_s, "breaker_cooloff_s")
        check_positive(self.admission_queue_slack, "admission_queue_slack")
        check_positive(self.default_slo_us, "default_slo_us")
        if self.request_overhead_us < 0:
            raise ValueError("request_overhead_us must be >= 0")
        slos = tuple((str(name), float(slo)) for name, slo in self.table_slo_us)
        for name, slo in slos:
            check_positive(slo, f"table_slo_us[{name!r}]")
        object.__setattr__(self, "table_slo_us", slos)

    def slo_us(self, table_name: str) -> float:
        """The admission-control latency SLO for one table."""
        for name, slo in self.table_slo_us:
            if name == table_name:
                return slo
        return self.default_slo_us


@dataclass(frozen=True)
class TableCacheConfig:
    """Resolved per-table cache configuration (produced during the build).

    Attributes
    ----------
    cache_size_vectors:
        DRAM cache capacity assigned to the table, in vectors.
    threshold:
        Prefetch-admission threshold ``t``; ``None`` means "tune it with
        miniature caches during the build".
    """

    cache_size_vectors: int
    threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cache_size_vectors < 0:
            raise ValueError("cache_size_vectors must be >= 0")
        if self.threshold is not None and self.threshold < 0:
            raise ValueError("threshold must be >= 0 when given")


@dataclass(frozen=True)
class BandanaConfig:
    """Configuration of a :class:`~repro.core.bandana.BandanaStore`.

    Attributes
    ----------
    vector_bytes:
        Bytes per embedding vector as stored on NVM (128 in the paper).
    block_bytes:
        NVM block size (4096 in the paper).  ``vectors_per_block`` is derived.
    total_cache_vectors:
        Total DRAM budget across all tables, expressed in cached vectors
        (the paper's end-to-end runs use 1–5 million; scaled runs use less).
    partitioner:
        Placement algorithm: one of :data:`PARTITIONERS`.
    shp_iterations:
        Refinement iterations per SHP bisection (paper: 16).
    kmeans_clusters:
        Cluster count when ``partitioner`` is a K-means variant.
    allocation:
        How the DRAM budget is split across tables: ``"hit-rate"`` (greedy on
        the hit-rate curves, the paper's choice), ``"proportional"`` (by
        lookup share) or ``"uniform"``.
    tune_thresholds:
        Whether to run the miniature-cache tuner; when false, ``default_threshold``
        is used everywhere.
    default_threshold:
        Admission threshold used when tuning is disabled (or as a fallback for
        tables whose tuning trace is empty).
    mini_cache_sampling_rate:
        Spatial sampling rate of the miniature caches (paper: 0.001).
    candidate_thresholds:
        Thresholds the tuner evaluates.  The paper sweeps 0–20 for its 5 B
        lookup training runs; the default here is shifted upwards because the
        scaled-down training traces concentrate more accesses per touched
        vector, so the same admission selectivity corresponds to larger
        absolute counts.
    queue_depth:
        Queue depth assumed for NVM latency accounting.
    seed:
        Base random seed for all stochastic components.
    use_batched_engine:
        Serve lookups through the vectorized batch replay engine
        (:mod:`repro.caching.engine`).  The engine is bit-identical to the
        reference loop; ``False`` keeps serving on the reference path.
    interleaved_replay:
        Replay store-level request streams interleaved across tables (one
        pass over the request stream, fanning each request's ids out to all
        tables) instead of table-by-table, and serve ``lookup_request``
        through the interleaved fan-out path.  Counters are bit-identical
        either way (see :mod:`repro.simulation.interleaved`); requires
        ``use_batched_engine``.
    num_workers:
        Worker processes for interleaved store replay: tables are sharded
        across this many processes by lookup volume.  ``1`` replays inline
        in the calling process.
    chunk_requests:
        Requests accumulated per table between engine flushes during
        interleaved replay (see
        :data:`repro.simulation.interleaved.DEFAULT_CHUNK_REQUESTS`; the
        literal ``64`` here must match it — config cannot import the
        simulation package without a cycle).  Counters are bit-identical
        for every value; this is purely a throughput knob.
    serving:
        Batch-serving front-end configuration consumed by
        :func:`repro.serving.simulate_serving` (arrival process, batching
        cutoffs, SLO and device-feedback knobs).
    cluster:
        Simulated multi-node cluster topology and robustness knobs consumed
        by :mod:`repro.cluster` (sharding, replication, timeouts, hedging,
        circuit breaking, admission control).
    tracing:
        Per-request span tracing knobs consumed by :mod:`repro.tracing`
        (sampling, SLO-violator retention, sink capacity).  Disabled by
        default; enabling it changes no simulated timing, only records it.
    """

    vector_bytes: int = 128
    block_bytes: int = 4096
    total_cache_vectors: int = 8000
    partitioner: str = "shp"
    shp_iterations: int = 16
    kmeans_clusters: int = 256
    allocation: str = "hit-rate"
    tune_thresholds: bool = True
    default_threshold: float = 50.0
    mini_cache_sampling_rate: float = 0.001
    candidate_thresholds: Sequence[float] = (0, 25, 50, 100, 200, 400)
    queue_depth: float = 8.0
    seed: int = 0
    use_batched_engine: bool = True
    interleaved_replay: bool = False
    num_workers: int = 1
    chunk_requests: int = 64
    serving: ServingConfig = ServingConfig()
    cluster: ClusterConfig = ClusterConfig()
    tracing: TracingConfig = TracingConfig()

    def __post_init__(self) -> None:
        check_int_at_least(self.vector_bytes, 1, "vector_bytes")
        check_int_at_least(self.block_bytes, 1, "block_bytes")
        check_positive(self.total_cache_vectors, "total_cache_vectors")
        check_positive(self.shp_iterations, "shp_iterations")
        check_positive(self.kmeans_clusters, "kmeans_clusters")
        check_positive(self.queue_depth, "queue_depth")
        check_int_at_least(self.num_workers, 1, "num_workers")
        check_int_at_least(self.chunk_requests, 1, "chunk_requests")
        check_fraction(self.mini_cache_sampling_rate, "mini_cache_sampling_rate")
        check_bool(self.tune_thresholds, "tune_thresholds")
        check_seed(self.seed, "seed")
        check_instance(self.serving, ServingConfig, "serving")
        check_instance(self.cluster, ClusterConfig, "cluster")
        check_instance(self.tracing, TracingConfig, "tracing")
        if self.interleaved_replay and not self.use_batched_engine:
            raise ValueError(
                "interleaved_replay requires use_batched_engine (the reference "
                "loop has no interleaved serving path)"
            )
        if self.block_bytes % self.vector_bytes != 0:
            raise ValueError(
                "block_bytes must be a multiple of vector_bytes "
                f"({self.block_bytes} % {self.vector_bytes} != 0)"
            )
        if self.partitioner not in PARTITIONERS:
            raise ValueError(
                f"partitioner must be one of {PARTITIONERS}, got {self.partitioner!r}"
            )
        if self.allocation not in ALLOCATION_POLICIES:
            raise ValueError(
                f"allocation must be one of {ALLOCATION_POLICIES}, got {self.allocation!r}"
            )
        if self.default_threshold < 0:
            raise ValueError("default_threshold must be >= 0")
        if not tuple(self.candidate_thresholds):
            raise ValueError("candidate_thresholds must not be empty")
        # Freeze the threshold list into a tuple for hashability.
        object.__setattr__(
            self, "candidate_thresholds", tuple(float(t) for t in self.candidate_thresholds)
        )

    @property
    def vectors_per_block(self) -> int:
        """Number of vectors per NVM block (32 in the paper's configuration)."""
        return self.block_bytes // self.vector_bytes
