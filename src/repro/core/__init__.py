"""Bandana itself: configuration, metrics and the end-to-end store.

``repro.core`` contains the paper's actual contribution, assembled from the
substrates in the sibling packages: the :class:`~repro.core.bandana.BandanaStore`
partitions every embedding table onto NVM blocks, splits the DRAM budget
across tables, tunes each table's prefetch-admission threshold with miniature
caches and then serves lookups while accounting for every NVM block read.
"""

from repro.core.bandana import BandanaStore, BandanaTableState
from repro.core.config import (
    BandanaConfig,
    ClusterConfig,
    ServingConfig,
    TableCacheConfig,
    TracingConfig,
)
from repro.core.metrics import CacheStats, EffectiveBandwidth, LatencyStats
from repro.core.tablespec import TableServingSpec

__all__ = [
    "BandanaStore",
    "BandanaTableState",
    "BandanaConfig",
    "ClusterConfig",
    "ServingConfig",
    "TableCacheConfig",
    "TracingConfig",
    "TableServingSpec",
    "CacheStats",
    "EffectiveBandwidth",
    "LatencyStats",
]
