"""Metric containers reported by the Bandana store and the simulation harness.

The headline metric throughout the paper is the *effective bandwidth* — the
fraction of bytes read from NVM that the application actually asked for — and
its *increase* over the baseline policy (no prefetching, one block read per
missing vector).  :class:`EffectiveBandwidth` packages that computation;
:class:`CacheStats` summarises a replay in application-facing terms and
:class:`LatencyStats` carries the device latency accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.caching.replay import ReplayStats
from repro.nvm.latency import NVMLatencyModel


@dataclass(frozen=True)
class CacheStats:
    """Application-facing summary of a cache replay."""

    lookups: int
    hits: int
    misses: int
    block_reads: int
    prefetch_admitted: int
    prefetch_hits: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from DRAM."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of admitted prefetches that were eventually demanded."""
        if self.prefetch_admitted == 0:
            return 0.0
        return self.prefetch_hits / self.prefetch_admitted

    @classmethod
    def from_replay(cls, stats: ReplayStats) -> "CacheStats":
        """Build a summary from the raw replay counters."""
        return cls(
            lookups=stats.lookups,
            hits=stats.hits,
            misses=stats.misses,
            block_reads=stats.block_reads,
            prefetch_admitted=stats.prefetch_admitted,
            prefetch_hits=stats.prefetch_hits,
            evictions=stats.evictions,
        )


@dataclass(frozen=True)
class EffectiveBandwidth:
    """Bytes requested by the application versus bytes read from NVM."""

    app_bytes: int
    nvm_bytes: int

    @property
    def fraction(self) -> float:
        """Effective bandwidth as a fraction of the NVM bytes read.

        The baseline policy of the paper sits around 0.03 (128 B useful out of
        each 4 KB block); values above 1.0 are possible once the DRAM cache
        serves most lookups.
        """
        if self.nvm_bytes == 0:
            return 0.0
        return self.app_bytes / self.nvm_bytes

    def increase_over(self, baseline: "EffectiveBandwidth") -> float:
        """Relative reduction in NVM bytes versus a baseline serving the same bytes.

        Matches the paper's "effective bandwidth increase": 1.0 means twice
        the effective bandwidth (half the block reads for the same traffic).
        """
        if self.nvm_bytes == 0:
            return 0.0 if baseline.nvm_bytes == 0 else float("inf")
        return baseline.nvm_bytes / self.nvm_bytes - 1.0

    @classmethod
    def from_replay(cls, stats: ReplayStats) -> "EffectiveBandwidth":
        """Build from raw replay counters."""
        return cls(app_bytes=stats.app_bytes, nvm_bytes=stats.nvm_bytes)


@dataclass(frozen=True)
class LatencyStats:
    """Device latency summary for a replay at a given load level."""

    mean_us: float
    p99_us: float
    total_us: float

    @classmethod
    def from_block_reads(
        cls,
        block_reads: int,
        latency_model: Optional[NVMLatencyModel] = None,
        queue_depth: float = 8.0,
        device_throughput_mbps: float = 0.0,
    ) -> "LatencyStats":
        """Latency summary for ``block_reads`` reads at the given load.

        When ``device_throughput_mbps`` is zero the unloaded figures are used;
        otherwise the loaded-latency model (Figure 5) applies.
        """
        model = latency_model or NVMLatencyModel()
        if device_throughput_mbps > 0:
            loaded = model.loaded_latency(device_throughput_mbps, queue_depth)
            mean, p99 = loaded.mean_us, loaded.p99_us
        else:
            mean = model.mean_latency_us(queue_depth)
            p99 = model.p99_latency_us(queue_depth)
        return cls(mean_us=mean, p99_us=p99, total_us=mean * block_reads)
