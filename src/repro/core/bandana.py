"""The end-to-end Bandana store.

:class:`BandanaStore` assembles the paper's full pipeline:

1. **Placement** — each embedding table is partitioned onto 4 KB NVM blocks by
   the configured algorithm (SHP trained on the table's training trace by
   default; K-means variants and simple baselines are also available).
2. **DRAM split** — the total DRAM cache budget is divided across tables, by
   default greedily from per-table hit-rate curves (the paper's Dynacache-style
   static assignment).
3. **Admission tuning** — each table's prefetch-admission threshold ``t`` is
   chosen by miniature-cache simulation at the table's assigned cache size.
4. **Serving** — lookups hit the per-table DRAM cache first; misses read the
   owning 4 KB block from a per-table simulated NVM device and the admission
   policy decides which of the block's other vectors enter the cache.  With
   ``config.interleaved_replay``, multi-table requests (:meth:`BandanaStore.lookup_request`)
   are fanned out across the per-table engines through the interleaved
   store replayer (:mod:`repro.simulation.interleaved`), whose worker-sharded
   bulk mode also backs :func:`repro.simulation.simulate_store`.

The store keeps all counters needed to report the paper's metrics (effective
bandwidth, hit rates, device latency, endurance) and can optionally return the
actual embedding values when built with an :class:`~repro.embeddings.EmbeddingModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np
import numpy.typing as npt

from repro.caching.allocation import allocate_dram_budget
from repro.caching.engine import BatchReplayEngine, replay_table_cache_batched
from repro.caching.lru import LRUCache
from repro.caching.miniature import MiniatureCacheTuner
from repro.caching.policies import (
    AccessThresholdPolicy,
    NoPrefetchPolicy,
    PrefetchPolicy,
)
from repro.caching.replay import ReplayStats, replay_table_cache
from repro.caching.stack_distance import HitRateCurve, hit_rate_curve
from repro.core.config import BandanaConfig, TableCacheConfig
from repro.core.metrics import CacheStats, EffectiveBandwidth
from repro.core.tablespec import TableServingSpec
from repro.embeddings.model import EmbeddingModel
from repro.nvm.block import BlockLayout
from repro.nvm.device import NVMDevice
from repro.partitioning.base import Partitioner
from repro.partitioning.frequency import FrequencyPartitioner
from repro.partitioning.identity import IdentityPartitioner
from repro.partitioning.kmeans import KMeansPartitioner
from repro.partitioning.recursive_kmeans import RecursiveKMeansPartitioner
from repro.partitioning.shp import SHPPartitioner
from repro.workloads.characterization import access_counts
from repro.workloads.trace import ModelTrace, Trace

if TYPE_CHECKING:
    from repro.simulation.interleaved import InterleavedStoreReplayer


@dataclass
class BandanaTableState:
    """Everything the store keeps per embedding table."""

    name: str
    layout: BlockLayout
    cache: LRUCache
    policy: PrefetchPolicy
    device: NVMDevice
    cache_config: TableCacheConfig
    access_counts: np.ndarray
    stats: ReplayStats = field(default_factory=ReplayStats)
    hit_rate_curve: Optional[HitRateCurve] = None
    partition_runtime_seconds: float = 0.0
    #: Lazily-created batched serving engine (shares ``stats`` and ``device``).
    engine: Optional[BatchReplayEngine] = None

    @property
    def cache_stats(self) -> CacheStats:
        """Application-facing summary of the traffic served so far."""
        return CacheStats.from_replay(self.stats)

    def serving_spec(self, config: BandanaConfig) -> TableServingSpec:
        """The node-independent serving specification of this table.

        Extracts the "table spec owned by the cluster" half of this state
        (placement, policy, cache budget, geometry), leaving the node-owned
        half (this state's cache, device and engine) behind.  The returned
        spec mints cold engines bit-identical in behaviour to this table's
        own serving engine — :mod:`repro.cluster` builds one per replica.
        """
        return TableServingSpec(
            name=self.name,
            layout=self.layout,
            policy_prototype=self.policy,
            cache_size_vectors=self.cache_config.cache_size_vectors,
            vector_bytes=config.vector_bytes,
            device_block_bytes=config.block_bytes,
            queue_depth=config.queue_depth,
        )

    @property
    def effective_bandwidth(self) -> EffectiveBandwidth:
        """Effective bandwidth of the traffic served so far."""
        return EffectiveBandwidth.from_replay(self.stats)


class BandanaStore:
    """NVM-backed embedding storage with locality-aware placement and caching.

    Use :meth:`BandanaStore.build` to construct a store from a training trace;
    the constructor itself only wires together already-resolved per-table
    state (useful for tests and custom pipelines).
    """

    def __init__(
        self,
        config: BandanaConfig,
        tables: Dict[str, BandanaTableState],
        embedding_model: Optional[EmbeddingModel] = None,
    ) -> None:
        self.config = config
        self.tables = tables
        self.embedding_model = embedding_model
        # Lazily-built interleaved request fan-out over the serving engines
        # (used by lookup_request when config.interleaved_replay is set).
        self._request_replayer = None

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        training_trace: ModelTrace,
        config: Optional[BandanaConfig] = None,
        embedding_model: Optional[EmbeddingModel] = None,
        tuning_trace: Optional[ModelTrace] = None,
        num_vectors: Optional[Mapping[str, int]] = None,
    ) -> "BandanaStore":
        """Build a store from a training trace.

        Parameters
        ----------
        training_trace:
            Per-table traces used to train the placement (and, by default, to
            derive hit-rate curves and tune admission thresholds).
        config:
            Store configuration; defaults to :class:`BandanaConfig()`.
        embedding_model:
            Optional embedding values.  Required for the K-means partitioners
            and for lookups that return actual vectors.
        tuning_trace:
            Optional separate trace for threshold tuning and DRAM allocation;
            defaults to ``training_trace``.
        num_vectors:
            Table sizes; defaults to the embedding model's sizes or, failing
            that, the sizes implied by the training trace.
        """
        config = config or BandanaConfig()
        tuning_trace = tuning_trace or training_trace
        if config.partitioner in ("kmeans", "recursive-kmeans") and embedding_model is None:
            raise ValueError(
                f"partitioner {config.partitioner!r} needs embedding values; "
                "pass an embedding_model"
            )

        sizes = cls._resolve_table_sizes(training_trace, embedding_model, num_vectors)

        # 1. placement + per-vector access counts
        layouts: Dict[str, BlockLayout] = {}
        counts: Dict[str, np.ndarray] = {}
        runtimes: Dict[str, float] = {}
        for name, trace in training_trace.items():
            partitioner = cls._make_partitioner(config, name)
            table_values = (
                embedding_model[name] if embedding_model and name in embedding_model else None
            )
            result = partitioner.partition(sizes[name], trace=trace, table=table_values)
            layouts[name] = result.layout(config.vectors_per_block)
            runtimes[name] = result.runtime_seconds
            table_counts = np.zeros(sizes[name], dtype=np.int64)
            table_counts[: trace.num_vectors] = access_counts(trace)
            counts[name] = table_counts

        # 2. DRAM budget split across tables
        curves: Dict[str, HitRateCurve] = {
            name: hit_rate_curve(trace) for name, trace in tuning_trace.items()
        }
        cache_sizes = cls._allocate_budget(config, tuning_trace, curves)

        # 3. per-table threshold tuning + state assembly
        tuner = MiniatureCacheTuner(
            sampling_rate=config.mini_cache_sampling_rate,
            seed=config.seed,
            thresholds=config.candidate_thresholds,
            vector_bytes=config.vector_bytes,
        )
        tables: Dict[str, BandanaTableState] = {}
        for name in training_trace:
            cache_size = cache_sizes[name]
            threshold = config.default_threshold
            if config.tune_thresholds and cache_size > 0 and len(tuning_trace[name]) > 0:
                selection = tuner.select_threshold(
                    tuning_trace[name], layouts[name], counts[name], cache_size
                )
                threshold = selection.threshold
            policy = AccessThresholdPolicy(counts[name], threshold)
            device = NVMDevice(
                num_blocks=layouts[name].num_blocks, block_bytes=config.block_bytes
            )
            tables[name] = BandanaTableState(
                name=name,
                layout=layouts[name],
                cache=LRUCache(cache_size),
                policy=policy,
                device=device,
                cache_config=TableCacheConfig(
                    cache_size_vectors=cache_size, threshold=threshold
                ),
                access_counts=counts[name],
                stats=ReplayStats(
                    vector_bytes=config.vector_bytes,
                    block_bytes=config.vectors_per_block * config.vector_bytes,
                ),
                hit_rate_curve=curves.get(name),
                partition_runtime_seconds=runtimes[name],
            )
        return cls(config, tables, embedding_model=embedding_model)

    # ---------------------------------------------------------------- serving
    def lookup(
        self, table_name: str, vector_ids: npt.ArrayLike, gather: bool = True
    ) -> Optional[np.ndarray]:
        """Serve one query against one table.

        Runs the cache/prefetch machinery (updating all counters) and returns
        the embedding vectors when the store holds an embedding model, or
        ``None`` in counting-only mode.  ``gather=False`` skips the embedding
        gather even when values are available (counters-only callers like the
        serving simulator measure load, not data).
        """
        state = self._state(table_name)
        ids = np.asarray(vector_ids, dtype=np.int64)
        if ids.size:
            if self.config.use_batched_engine:
                self._engine(state).replay_query(ids)
            else:
                replay_table_cache(
                    [ids],
                    state.layout,
                    state.policy,
                    cache=state.cache,
                    vector_bytes=self.config.vector_bytes,
                    device=state.device,
                    queue_depth=self.config.queue_depth,
                    stats=state.stats,
                )
        return self._gather(table_name, ids) if gather else None

    def lookup_batch(
        self, table_name: str, queries: Sequence[Iterable[int]], gather: bool = True
    ) -> Optional[List[np.ndarray]]:
        """Serve a batch of queries against one table in one engine pass.

        Equivalent (counter for counter) to calling :meth:`lookup` per query,
        but the cache machinery runs through the vectorized batch engine so
        hit runs spanning query boundaries are processed in bulk.  Returns
        one embedding array per query when the store holds an embedding
        model, or ``None`` in counting-only mode (or when ``gather=False``).
        """
        state = self._state(table_name)
        id_arrays = [np.asarray(ids, dtype=np.int64) for ids in queries]
        if self.config.use_batched_engine:
            engine = self._engine(state)
            non_empty = [ids for ids in id_arrays if ids.size]
            if non_empty:
                engine.replay_query(
                    np.concatenate(non_empty) if len(non_empty) > 1 else non_empty[0]
                )
        else:
            # One reference-loop call per query, exactly like lookup(), so the
            # two APIs stay counter-for-counter equivalent on this path too.
            for ids in id_arrays:
                if ids.size:
                    replay_table_cache(
                        [ids],
                        state.layout,
                        state.policy,
                        cache=state.cache,
                        vector_bytes=self.config.vector_bytes,
                        device=state.device,
                        queue_depth=self.config.queue_depth,
                        stats=state.stats,
                    )
        if gather and self.embedding_model is not None and table_name in self.embedding_model:
            table = self.embedding_model[table_name]
            return [table.gather(ids) for ids in id_arrays]
        return None

    def lookup_request(
        self, request: Mapping[str, Iterable[int]], gather: bool = True
    ) -> Dict[str, Optional[np.ndarray]]:
        """Serve one multi-table request (mapping table name → ids).

        With ``config.interleaved_replay`` the request is fanned out across
        the per-table serving engines through one
        :class:`~repro.simulation.interleaved.InterleavedStoreReplayer`
        (counter-for-counter identical to the per-table loop — see the
        schedule-equivalence invariant in
        :mod:`repro.simulation.interleaved`); otherwise each table is
        served by :meth:`lookup` in turn.  ``gather=False`` skips the
        embedding gathers (counters-only serving).
        """
        if self.config.interleaved_replay:
            arrays = {
                name: np.asarray(ids, dtype=np.int64) for name, ids in request.items()
            }
            self._interleaved_replayer().replay_request(arrays)
            return {
                name: self._gather(name, ids) if gather else None
                for name, ids in arrays.items()
            }
        return {
            name: self.lookup(name, ids, gather=gather)
            for name, ids in request.items()
        }

    def pooled_features(self, request: Mapping[str, Iterable[int]]) -> np.ndarray:
        """Serve a request and return the concatenated sum-pooled features.

        Requires an embedding model; this is the read path a ranking model
        consumes (see :class:`repro.embeddings.RecommendationModel`).
        """
        if self.embedding_model is None:
            raise ValueError("pooled_features requires an embedding model")
        for name, ids in request.items():
            self.lookup(name, ids)
        return self.embedding_model.pooled_features(request)

    def table_specs(self) -> Dict[str, TableServingSpec]:
        """Node-independent serving specs for every table (cluster input)."""
        return {
            name: state.serving_spec(self.config) for name, state in self.tables.items()
        }

    # ---------------------------------------------------------------- metrics
    def table_stats(self) -> Dict[str, CacheStats]:
        """Per-table cache statistics for the traffic served so far."""
        return {name: state.cache_stats for name, state in self.tables.items()}

    def aggregate_stats(self) -> ReplayStats:
        """Sum of the per-table replay statistics.

        Always a fresh object — never an alias of a table's live stats — so
        callers can snapshot it and diff against a later call (the serving
        simulator's before/after accounting relies on this; an alias would
        silently zero every delta on single-table stores).
        """
        stats = None
        for state in self.tables.values():
            stats = (
                replace(state.stats) if stats is None else stats.merge(state.stats)
            )
        return stats if stats is not None else ReplayStats()

    def effective_bandwidth(self) -> EffectiveBandwidth:
        """Effective bandwidth over all tables for the traffic served so far."""
        return EffectiveBandwidth.from_replay(self.aggregate_stats())

    def total_blocks_read(self) -> int:
        """Total NVM block reads across all per-table devices."""
        return sum(state.device.blocks_read for state in self.tables.values())

    def dram_bytes(self) -> int:
        """DRAM footprint of the configured caches, in bytes."""
        return sum(
            state.cache_config.cache_size_vectors * self.config.vector_bytes
            for state in self.tables.values()
        )

    def nvm_bytes(self) -> int:
        """NVM footprint of the stored tables, in bytes."""
        return sum(
            state.layout.num_blocks * self.config.block_bytes
            for state in self.tables.values()
        )

    def swap_layout(
        self, table_name: str, layout: BlockLayout, retain_cache: bool = True
    ) -> None:
        """Adopt a new block placement for one table, live.

        Models an online re-partition (the re-partitioning lifecycle of
        :mod:`repro.scenarios.lifecycle`).  With ``retain_cache`` (the
        default) DRAM residency survives the swap — cache entries are keyed
        by vector id, which a re-layout of the NVM blocks does not
        invalidate — so only the placement-derived prefetch behaviour
        changes.  With ``retain_cache=False`` the table restarts cold, for
        modelling systems that flush DRAM on re-layout.  Cumulative stats
        carry over either way; the layout must keep the table's geometry.
        """
        state = self._state(table_name)
        if (layout.num_vectors, layout.vectors_per_block) != (
            state.layout.num_vectors,
            state.layout.vectors_per_block,
        ):
            raise ValueError(
                "swap_layout requires identical geometry: "
                f"({layout.num_vectors} vectors, {layout.vectors_per_block}/block) vs "
                f"({state.layout.num_vectors}, {state.layout.vectors_per_block})"
            )
        state.layout = layout
        if state.engine is not None:
            if retain_cache:
                state.engine.swap_layout(layout)
            else:
                state.engine.reset()
                state.engine.swap_layout(layout)
        if not retain_cache:
            state.cache.clear()
        self._request_replayer = None  # rebound to the swapped engines on demand

    def reset_serving_state(self) -> None:
        """Clear caches and counters (placement and thresholds are kept)."""
        for state in self.tables.values():
            state.cache.clear()
            state.policy.reset()
            state.device.reset_counters()
            state.stats = ReplayStats(
                vector_bytes=self.config.vector_bytes,
                block_bytes=self.config.vectors_per_block * self.config.vector_bytes,
            )
            state.engine = None  # rebuilt lazily against the fresh stats
        self._request_replayer = None  # rebound to the fresh engines on demand

    # ------------------------------------------------------------- baselines
    def baseline_block_reads(self, eval_trace: ModelTrace) -> int:
        """Block reads the paper's baseline policy would issue for a trace.

        The baseline caches only demand vectors (no prefetching) in caches of
        the same per-table sizes.  Used to report the effective-bandwidth
        *increase* of the store.
        """
        total = 0
        replay = (
            replay_table_cache_batched
            if self.config.use_batched_engine
            else replay_table_cache
        )
        for name, trace in eval_trace.items():
            state = self._state(name)
            stats = replay(
                trace.queries,
                state.layout,
                NoPrefetchPolicy(),
                cache_size=state.cache_config.cache_size_vectors,
                vector_bytes=self.config.vector_bytes,
            )
            total += stats.block_reads
        return total

    def serving_engine(self, table_name: str) -> BatchReplayEngine:
        """The table's batched serving engine (created on first use).

        Public accessor for callers that drive the engines directly — the
        interleaved store replay builds its per-table tasks from these, so
        a replay continues exactly where serving left off.
        """
        if not self.config.use_batched_engine:
            raise ValueError(
                "serving engines exist only when config.use_batched_engine is set"
            )
        return self._engine(self._state(table_name))

    def adopt_engine(self, table_name: str, engine: BatchReplayEngine) -> None:
        """Install an engine replayed elsewhere (e.g. in a worker process).

        Rebinds the table's stats, policy and device to the engine's so the
        store's observable state — counters, cache contents, policy state,
        device accounting — is exactly what in-process serving would have
        produced, and drops the interleaved request fan-out so it is
        rebuilt over the adopted engines.
        """
        state = self._state(table_name)
        if (engine.stats.vector_bytes, engine.stats.block_bytes) != (
            state.stats.vector_bytes,
            state.stats.block_bytes,
        ):
            raise ValueError("adopted engine has a different stats geometry")
        state.engine = engine
        state.stats = engine.stats
        state.policy = engine.policy
        if engine.device is not None:
            state.device = engine.device
        # A policy that crossed a process boundary carries its own copy of
        # the table's access counts; re-point it at the store's array to
        # restore the build-time aliasing (no duplicate memory, and in-place
        # updates to state.access_counts keep steering admissions).
        adopted_counts = getattr(state.policy, "access_counts", None)
        if adopted_counts is not None and np.array_equal(
            adopted_counts, state.access_counts
        ):
            state.policy.access_counts = state.access_counts
        self._request_replayer = None

    # ----------------------------------------------------------------- private
    def _gather(self, table_name: str, ids: np.ndarray) -> Optional[np.ndarray]:
        """Embedding values for ``ids``, or ``None`` in counting-only mode."""
        if self.embedding_model is not None and table_name in self.embedding_model:
            return self.embedding_model[table_name].gather(ids)
        return None

    def _interleaved_replayer(self) -> "InterleavedStoreReplayer":
        """The store-wide interleaved request fan-out (created on first use)."""
        if self._request_replayer is None:
            # Imported here: repro.simulation imports this module at package
            # init, so a top-level import would be circular.
            from repro.simulation.interleaved import InterleavedStoreReplayer

            self._request_replayer = InterleavedStoreReplayer(
                {name: self._engine(state) for name, state in self.tables.items()}
            )
        return self._request_replayer

    def _engine(self, state: BandanaTableState) -> BatchReplayEngine:
        """The table's batched serving engine, created on first use.

        The engine shares the table's ``stats`` object and device, so all
        counters accumulate exactly as on the reference path.  Serving must
        stay on one path per reset: the engine's array cache and the legacy
        ``state.cache`` are separate residency states.
        """
        if state.engine is None:
            state.engine = BatchReplayEngine(
                state.layout,
                state.policy,
                cache_size=state.cache_config.cache_size_vectors,
                vector_bytes=self.config.vector_bytes,
                device=state.device,
                queue_depth=self.config.queue_depth,
                stats=state.stats,
            )
        return state.engine

    def _state(self, table_name: str) -> BandanaTableState:
        try:
            return self.tables[table_name]
        except KeyError:
            raise KeyError(
                f"unknown table {table_name!r}; known tables: {sorted(self.tables)}"
            ) from None

    @staticmethod
    def _resolve_table_sizes(
        training_trace: ModelTrace,
        embedding_model: Optional[EmbeddingModel],
        num_vectors: Optional[Mapping[str, int]],
    ) -> Dict[str, int]:
        sizes: Dict[str, int] = {}
        for name, trace in training_trace.items():
            if num_vectors is not None and name in num_vectors:
                sizes[name] = int(num_vectors[name])
            elif embedding_model is not None and name in embedding_model:
                sizes[name] = embedding_model[name].num_vectors
            else:
                sizes[name] = trace.num_vectors
            if sizes[name] < trace.num_vectors:
                raise ValueError(
                    f"table {name!r}: trace references {trace.num_vectors} vectors "
                    f"but the table size is {sizes[name]}"
                )
        return sizes

    @staticmethod
    def _make_partitioner(config: BandanaConfig, table_name: str) -> Partitioner:
        if config.partitioner == "shp":
            return SHPPartitioner(
                vectors_per_block=config.vectors_per_block,
                num_iterations=config.shp_iterations,
                seed=config.seed,
            )
        if config.partitioner == "kmeans":
            return KMeansPartitioner(num_clusters=config.kmeans_clusters, seed=config.seed)
        if config.partitioner == "recursive-kmeans":
            return RecursiveKMeansPartitioner(
                num_top_clusters=min(256, config.kmeans_clusters),
                num_sub_clusters=config.kmeans_clusters,
                seed=config.seed,
            )
        if config.partitioner == "frequency":
            return FrequencyPartitioner()
        return IdentityPartitioner()

    @staticmethod
    def _allocate_budget(
        config: BandanaConfig,
        tuning_trace: ModelTrace,
        curves: Dict[str, HitRateCurve],
    ) -> Dict[str, int]:
        names = list(tuning_trace.tables)
        total = config.total_cache_vectors
        if config.allocation == "uniform":
            per_table = total // len(names)
            return {name: per_table for name in names}
        if config.allocation == "proportional":
            shares = tuning_trace.lookup_shares()
            return {name: int(round(total * shares[name])) for name in names}
        # "hit-rate": greedy marginal allocation on the hit-rate curves.
        return allocate_dram_budget(curves, total)
