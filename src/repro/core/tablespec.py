"""The cluster-owned half of a table: its serving *specification*.

Historically :class:`~repro.core.bandana.BandanaTableState` fused two things:

* the **table spec** — placement layout, admission policy, cache budget,
  geometry — which describes *what* serving a table means, and
* the **node-owned serving state** — the DRAM cache, the NVM device and the
  replay engine bound to them — which describes *where* that serving runs.

A single-host store never needs the distinction, but a cluster does: the
spec is global (every replica of every shard serves the same table the same
way) while caches and devices exist once per node.  :class:`TableServingSpec`
is the extracted spec; it can mint any number of independent, cold serving
engines (:meth:`TableServingSpec.make_engine`), each with its own policy
instance, cache and device, all bit-identical in behaviour to the engine a
:class:`~repro.core.bandana.BandanaStore` would build for the same table.
:mod:`repro.cluster` instantiates one per replica; the single-host store
keeps working on its fused state and merely *exports* specs via
:meth:`~repro.core.bandana.BandanaStore.table_specs`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.caching.engine import BatchReplayEngine
from repro.caching.policies import PrefetchPolicy
from repro.caching.replay import ReplayStats
from repro.nvm.block import BlockLayout
from repro.nvm.device import NVMDevice
from repro.utils.validation import check_int_at_least, check_positive


@dataclass(frozen=True)
class TableServingSpec:
    """Everything needed to serve one table, minus the node-owned state.

    Attributes
    ----------
    name:
        Table name.
    layout:
        Physical placement of the table's vectors into NVM blocks (shared by
        every replica — placement is a property of the table, not the node).
    policy_prototype:
        The prefetch-admission policy *as configured*.  Each call to
        :meth:`make_policy` deep-copies and resets it, so replicas never
        share mutable policy state (shadow caches, access counters).
    cache_size_vectors:
        DRAM cache budget for serving the whole table on one node.  Cluster
        callers scale this by each node's owned share of the table.
    vector_bytes:
        Bytes per embedding vector.
    device_block_bytes:
        Physical block size of the backing NVM device.
    queue_depth:
        Queue depth assumed for the device's latency accounting.
    """

    name: str
    layout: BlockLayout
    policy_prototype: PrefetchPolicy
    cache_size_vectors: int
    vector_bytes: int = 128
    device_block_bytes: int = 4096
    queue_depth: float = 8.0

    def __post_init__(self) -> None:
        check_int_at_least(self.cache_size_vectors, 0, "cache_size_vectors")
        check_positive(self.vector_bytes, "vector_bytes")
        check_positive(self.device_block_bytes, "device_block_bytes")
        check_positive(self.queue_depth, "queue_depth")

    # ------------------------------------------------------------------ build
    @property
    def stats_block_bytes(self) -> int:
        """Block size used for stats geometry (layout block × vector bytes)."""
        return self.layout.vectors_per_block * self.vector_bytes

    def make_policy(self) -> PrefetchPolicy:
        """A fresh, independent policy instance in its reset state."""
        policy = copy.deepcopy(self.policy_prototype)
        policy.reset()
        return policy

    def make_device(self) -> NVMDevice:
        """A fresh NVM device sized for the table's layout."""
        return NVMDevice(
            num_blocks=self.layout.num_blocks, block_bytes=self.device_block_bytes
        )

    def make_stats(self) -> ReplayStats:
        """A zeroed stats object with the table's geometry."""
        return ReplayStats(
            vector_bytes=self.vector_bytes, block_bytes=self.stats_block_bytes
        )

    def make_engine(
        self,
        cache_size_vectors: Optional[int] = None,
        stats: Optional[ReplayStats] = None,
        with_device: bool = True,
    ) -> BatchReplayEngine:
        """A cold serving engine for this table.

        ``cache_size_vectors`` overrides the spec's budget (cluster nodes
        pass their owned share); ``stats`` lets a crash-recovering node keep
        accumulating its historical counters into a rebuilt, cold engine.
        """
        if cache_size_vectors is None:
            cache_size_vectors = self.cache_size_vectors
        else:
            check_int_at_least(cache_size_vectors, 0, "cache_size_vectors")
        return BatchReplayEngine(
            self.layout,
            self.make_policy(),
            cache_size=cache_size_vectors,
            vector_bytes=self.vector_bytes,
            device=self.make_device() if with_device else None,
            queue_depth=self.queue_depth,
            stats=stats if stats is not None else self.make_stats(),
        )

    def scaled_cache_size(self, owned_blocks: int) -> int:
        """Cache budget for a node owning ``owned_blocks`` of the table.

        Proportional to the owned share of blocks, rounded half-up, so a
        node owning the whole table gets exactly ``cache_size_vectors`` (the
        single-node equivalence case) and shares across nodes sum to within
        rounding of one full budget per replica.
        """
        check_int_at_least(owned_blocks, 0, "owned_blocks")
        num_blocks = self.layout.num_blocks
        if num_blocks == 0 or owned_blocks >= num_blocks:
            return self.cache_size_vectors
        return int(np.floor(self.cache_size_vectors * owned_blocks / num_blocks + 0.5))
