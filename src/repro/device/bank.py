"""A bank of K physical NVM devices behind a table→device mapping.

:class:`NVMDeviceBank` is the resource abstraction both serving tiers sit
on: a host (or cluster node) owns ``num_devices`` physical devices, every
embedding table is pinned to exactly one of them (round-robin over first-use
order, or an explicit mapping), and all work for a table queues FIFO on its
device.  One device shared by many tables is the paper's actual single-host
deployment — cross-table contention is real because the *hardware* is
shared; one device per table reproduces the older per-table accounting as
the counterfactual.

The bank adds nothing to the per-device arithmetic — that is
:class:`~repro.device.clock.DeviceClock`, bit-identical to the original
serving accountant — it contributes the mapping, bank-wide observability
(conservation invariant: total busy time ≤ wall time × K), rebase/restart
plumbing, and the ``device.queue`` / ``device.service`` span emission used
by every client so single-host and cluster traces attribute identically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.device.clock import DeviceClock, DeviceServiceRecord
from repro.nvm.latency import NVMLatencyModel
from repro.tracing.tracer import (
    ATTR_PARALLEL,
    STAGE_DEVICE_QUEUE,
    STAGE_DEVICE_SERVICE,
    Tracer,
)
from repro.utils.validation import check_int_at_least


class NVMDeviceBank:
    """K FIFO NVM devices with a table→device mapping (see module docstring).

    Parameters
    ----------
    num_devices:
        Physical devices in the bank (``K``).
    latency_model:
        Shared latency/bandwidth model for device-priced work; ``None`` for
        banks whose clients price their own work (cluster nodes).
    block_bytes:
        Bytes per NVM block read.
    max_queue_depth / throughput_window_s:
        Per-device pricing knobs (see :class:`~repro.device.clock.DeviceClock`).
    tables:
        Tables to pin up front, round-robin in iteration order.  Tables not
        pre-pinned are pinned on first use, also round-robin — deterministic
        as long as the call order is (everything on the simulated clock is).
    keep_records:
        Retain per-serve records on every device (serving reports need
        them; long cluster runs keep only O(1) aggregates).
    """

    def __init__(
        self,
        num_devices: int,
        latency_model: Optional[NVMLatencyModel] = None,
        block_bytes: int = 4096,
        max_queue_depth: float = 64.0,
        throughput_window_s: float = 0.05,
        tables: Iterable[str] = (),
        keep_records: bool = True,
    ) -> None:
        check_int_at_least(num_devices, 1, "num_devices")
        self.devices: List[DeviceClock] = [
            DeviceClock(
                latency_model,
                block_bytes=block_bytes,
                max_queue_depth=max_queue_depth,
                throughput_window_s=throughput_window_s,
                index=i,
                keep_records=keep_records,
            )
            for i in range(num_devices)
        ]
        self._table_device: Dict[str, int] = {}
        for name in tables:
            self.map_table(name)

    # ---------------------------------------------------------------- mapping
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def map_table(self, table_name: str) -> int:
        """Pin ``table_name`` to a device (idempotent); returns its index.

        Assignment is round-robin over first-use order — with ``K >=`` the
        table count every table gets a private device (the per-table
        counterfactual); with ``K = 1`` everything shares one device.
        """
        index = self._table_device.get(table_name)
        if index is None:
            index = len(self._table_device) % len(self.devices)
            self._table_device[table_name] = index
        return index

    def device_of(self, table_name: str) -> DeviceClock:
        """The device serving ``table_name`` (pinning it on first use)."""
        return self.devices[self.map_table(table_name)]

    def table_mapping(self) -> Dict[str, int]:
        """Snapshot of the table→device pinning."""
        return dict(self._table_device)

    # ----------------------------------------------------------------- timing
    def queue_wait_us(self, at_us: float, table_name: Optional[str] = None) -> float:
        """Backlog work arriving at ``at_us`` would wait behind.

        With a ``table_name`` this is that table's device's backlog — the
        quantity admission control sheds against; without one it is the
        worst backlog over the bank.
        """
        if table_name is not None:
            return self.device_of(table_name).queue_wait_us(at_us)
        return max(device.queue_wait_us(at_us) for device in self.devices)

    @property
    def free_at_us(self) -> float:
        """When the *last* device frees up (max over the bank)."""
        return max(device.free_at_us for device in self.devices)

    def rebase(self, now_us: float = 0.0) -> None:
        """Re-anchor every device at ``now_us`` with empty backlogs.

        This is the one definition of restart semantics: warm-up rebase
        (``now_us = 0``) and node cold restarts both route here.
        """
        for device in self.devices:
            device.rebase(now_us)

    # ------------------------------------------------------------------ serve
    def serve_blocks(
        self, table_name: str, dispatch_us: float, block_reads: int
    ) -> DeviceServiceRecord:
        """Price and serve ``block_reads`` for one table on its device."""
        return self.device_of(table_name).serve_blocks(
            dispatch_us, block_reads, table=table_name
        )

    def serve_duration(
        self,
        table_name: str,
        arrive_us: float,
        service_us: float,
        block_reads: int = 0,
    ) -> DeviceServiceRecord:
        """Serve externally-priced work for one table on its device."""
        return self.device_of(table_name).serve_duration(
            arrive_us, service_us, block_reads=block_reads, table=table_name
        )

    # ---------------------------------------------------------------- tracing
    @staticmethod
    def emit_device_spans(
        tracer: Tracer,
        request_id: int,
        record: DeviceServiceRecord,
        parent_id: Optional[int] = None,
        parallel: bool = False,
    ) -> None:
        """Record one serve as ``device.queue`` + ``device.service`` spans.

        Emitted from the shared layer so single-host and cluster traces
        attribute device time identically: the queue span covers dispatch →
        device start (FIFO backlog), the service span covers start →
        completion with the pricing inputs as attributes.  ``parent_id``
        defaults to the request's root span; ``parallel`` marks the spans as
        concurrent siblings (a multi-table request's per-device charges
        overlap by construction).
        """
        attrs: Dict[str, object] = {"device": record.device_index}
        if record.table is not None:
            attrs["table"] = record.table
        if parallel:
            attrs[ATTR_PARALLEL] = True
        tracer.span(
            request_id,
            STAGE_DEVICE_QUEUE,
            record.dispatch_us,
            record.start_us,
            parent_id=parent_id,
            **attrs,
        )
        tracer.span(
            request_id,
            STAGE_DEVICE_SERVICE,
            record.start_us,
            record.completion_us,
            parent_id=parent_id,
            block_reads=record.block_reads,
            queue_depth=record.queue_depth,
            read_latency_us=record.read_latency_us,
            **attrs,
        )

    # ---------------------------------------------------------------- metrics
    def records(self) -> List[DeviceServiceRecord]:
        """All retained records across the bank, in serve order per device."""
        out: List[DeviceServiceRecord] = []
        for device in self.devices:
            out.extend(device.records)
        return out

    def busy_us(self) -> List[float]:
        """Per-device cumulative busy time (FIFO ⇒ ≤ wall time each)."""
        return [device.busy_us for device in self.devices]

    def total_busy_us(self) -> float:
        """Bank-wide busy time (conservation: ≤ wall time × K)."""
        return sum(device.busy_us for device in self.devices)

    def depth_histograms(self) -> List[Dict[int, int]]:
        """Per-device queue-depth histograms (counts sum to serve calls)."""
        return [dict(device.depth_hist) for device in self.devices]

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready observability snapshot (benchmark artifacts)."""
        return {
            "num_devices": len(self.devices),
            "table_mapping": dict(self._table_device),
            "per_device": [
                {
                    "serves": device.serves,
                    "blocks_issued": device.blocks_issued,
                    "busy_us": device.busy_us,
                    "free_at_us": device.free_at_us,
                    "depth_hist": {
                        str(k): v for k, v in sorted(device.depth_hist.items())
                    },
                }
                for device in self.devices
            ],
        }
