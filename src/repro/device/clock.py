"""One physical NVM device as a FIFO clock with load-feedback pricing.

:class:`DeviceClock` is the single implementation of the simulated-device
arithmetic that used to live twice in this repository — once in the serving
tier's latency accountant and once, hand-rolled, inside the cluster node.
It models one physical device as one FIFO resource (``free_at_us``) and
supports the two ways a client can put work on it:

* :meth:`DeviceClock.serve_blocks` — *device-priced* work: the client hands
  over a count of NVM block reads and the clock prices them itself, feeding
  the observed queue depth and the trailing-window device throughput into
  :meth:`repro.nvm.latency.NVMLatencyModel.loaded_latency` and charging
  ``ceil(blocks / queue_depth)`` serial rounds at that price.  This is the
  serving front-end's path (paper Figure 5's feedback loop), preserved
  bit-for-bit from the original accountant so the golden serving pins hold.
* :meth:`DeviceClock.serve_duration` — *externally-priced* work: the client
  already knows the service time (the cluster node computes it from its
  replay engine's NVM latency plus node overhead, stretched by slow-node
  multipliers) and the clock only provides FIFO serialisation — start at
  ``max(free_at, arrive)``, advance the clock, report the queue wait.

Both paths share the observability the conservation tests pin: cumulative
busy time (FIFO service intervals never overlap, so per-device busy time can
never exceed the device's wall-clock makespan), a power-of-two queue-depth
histogram whose counts sum to the number of serve calls, and per-serve
:class:`DeviceServiceRecord` entries (suppressible for long cluster runs).

Everything runs on the simulated clock; there are no wall-time reads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.nvm.latency import NVMLatencyModel
from repro.utils.units import s_to_us


@dataclass(frozen=True)
class DeviceServiceRecord:
    """What the device clock decided for one serve call.

    ``start_us`` is when the device actually began the work —
    ``completion_us - start_us`` is pure service time and
    ``start_us - dispatch_us`` is FIFO queue wait behind earlier work, the
    split the tracer records as ``device.queue`` vs ``device.service``.
    ``device_index`` and ``table`` attribute the work to a physical device
    and (when known) the embedding table that caused it.
    """

    dispatch_us: float
    start_us: float
    completion_us: float
    block_reads: int
    queue_depth: float
    device_mbps: float
    read_latency_us: float
    device_index: int = 0
    table: Optional[str] = None

    @property
    def queue_wait_us(self) -> float:
        return self.start_us - self.dispatch_us

    @property
    def service_us(self) -> float:
        return self.completion_us - self.start_us


def depth_bucket(depth: float) -> int:
    """Power-of-two histogram bucket for one queue-depth sample.

    Matches :func:`repro.serving.report.depth_histogram`: depth ``d`` lands
    in the smallest bucket key with ``d <= key``; the ``0`` bucket is exact
    (an idle device is a different fact than depth-1 occupancy).
    """
    if depth <= 0.0:
        return 0
    return 1 << int(math.ceil(math.log2(max(depth, 1.0))))


class DeviceClock:
    """One simulated NVM device: a FIFO clock with two pricing modes.

    Parameters
    ----------
    latency_model:
        Device latency/bandwidth model (paper Figure 2/5 calibration).
        Required for :meth:`serve_blocks`; ``None`` is allowed for clients
        that only use :meth:`serve_duration` (the cluster node prices its
        own reads through its replay engines).
    block_bytes:
        Bytes physically read per block read (throughput measurement).
    max_queue_depth:
        Cap on the queue depth fed to the latency model (device submission
        slots); backlog beyond it costs extra serial rounds instead.
    throughput_window_s:
        Trailing window over which device throughput is measured.
    index:
        This device's index within its :class:`~repro.device.bank.NVMDeviceBank`.
    keep_records:
        Retain a :class:`DeviceServiceRecord` per serve call.  Serving
        reports need them; long cluster runs can turn them off and keep only
        the O(1) aggregates (busy time, depth histogram, counters).
    """

    def __init__(
        self,
        latency_model: Optional[NVMLatencyModel],
        block_bytes: int,
        max_queue_depth: float = 64.0,
        throughput_window_s: float = 0.05,
        index: int = 0,
        keep_records: bool = True,
    ) -> None:
        self.latency_model = latency_model
        self.block_bytes = int(block_bytes)
        self.max_queue_depth = float(max_queue_depth)
        # Normalised to *integer* µs at the boundary: 0.05 * 1e6 is
        # 50000.000000000007 in floats, and window pruning must not depend
        # on that representation noise.
        self.window_us = s_to_us(throughput_window_s)
        self.index = int(index)
        self.keep_records = bool(keep_records)
        self.free_at_us = 0.0
        self.records: List[DeviceServiceRecord] = []
        # Issue log for the trailing-window throughput measurement and the
        # in-flight scan; dispatches are non-decreasing on the block-priced
        # path, so both prune with a monotone pointer (amortised O(1)).
        self._issue_us: List[float] = []
        self._issue_blocks: List[int] = []
        self._completion_us: List[float] = []
        self._window_start = 0
        self._window_blocks = 0
        self._inflight_start = 0
        self._inflight_blocks = 0
        # O(1) aggregates behind the conservation invariants.
        self.serves = 0
        self.busy_us = 0.0
        self.blocks_issued = 0
        self.depth_hist: Dict[int, int] = {}

    # ------------------------------------------------------------------ timing
    def queue_wait_us(self, at_us: float) -> float:
        """Backlog work arriving at ``at_us`` would wait behind."""
        return max(0.0, self.free_at_us - at_us)

    def rebase(self, now_us: float = 0.0) -> None:
        """Re-anchor the clock at ``now_us`` with an empty backlog.

        Used by warm-up rebase (``now_us = 0``) and node cold restarts
        (``now_us =`` the restart time): queued work and the trailing
        throughput window are lost, cumulative aggregates are kept — the
        same split the cluster's crash recovery applies to its engines.
        """
        self.free_at_us = float(now_us)
        self._issue_us.clear()
        self._issue_blocks.clear()
        self._completion_us.clear()
        self._window_start = 0
        self._window_blocks = 0
        self._inflight_start = 0
        self._inflight_blocks = 0

    # ------------------------------------------------------------------ serve
    def serve_blocks(
        self,
        dispatch_us: float,
        block_reads: int,
        table: Optional[str] = None,
    ) -> DeviceServiceRecord:
        """Price and serve ``block_reads`` dispatched at ``dispatch_us``.

        Returns the service record; ``completion_us`` is when every read has
        finished (a batch's requests complete together).  A call with zero
        reads (all lookups hit DRAM) never visits the device and completes
        at its dispatch time.  Dispatches must be non-decreasing per device
        (the batcher guarantees it), which keeps window pruning O(1).
        """
        if block_reads < 0:
            raise ValueError("block_reads must be >= 0")
        if self.latency_model is None:
            raise ValueError(
                "this DeviceClock has no latency model; serve_blocks needs one "
                "(serve_duration is the externally-priced path)"
            )
        self._prune(dispatch_us)
        outstanding = self._inflight_blocks + block_reads
        queue_depth = min(max(float(outstanding), 1.0), self.max_queue_depth)
        mbps = self._throughput_mbps(block_reads)
        if block_reads == 0:
            # No device visit: record the depth actually observed (possibly
            # 0, an idle device) rather than the >=1 clamp the latency model
            # needs — the model is never consulted on this branch.
            return self._finish(
                DeviceServiceRecord(
                    dispatch_us=dispatch_us,
                    start_us=dispatch_us,
                    completion_us=dispatch_us,
                    block_reads=0,
                    queue_depth=min(
                        float(self._inflight_blocks), self.max_queue_depth
                    ),
                    device_mbps=mbps,
                    read_latency_us=0.0,
                    device_index=self.index,
                    table=table,
                )
            )
        read_latency = self.latency_model.loaded_latency(
            mbps, queue_depth=queue_depth
        ).mean_us
        rounds = math.ceil(block_reads / queue_depth)
        start_us = max(dispatch_us, self.free_at_us)
        completion_us = start_us + rounds * read_latency
        self.free_at_us = completion_us
        self._issue_us.append(dispatch_us)
        self._issue_blocks.append(block_reads)
        self._completion_us.append(completion_us)
        self._window_blocks += block_reads
        self._inflight_blocks += block_reads
        return self._finish(
            DeviceServiceRecord(
                dispatch_us=dispatch_us,
                start_us=start_us,
                completion_us=completion_us,
                block_reads=block_reads,
                queue_depth=queue_depth,
                device_mbps=mbps,
                read_latency_us=read_latency,
                device_index=self.index,
                table=table,
            )
        )

    def serve_duration(
        self,
        arrive_us: float,
        service_us: float,
        block_reads: int = 0,
        table: Optional[str] = None,
    ) -> DeviceServiceRecord:
        """Serve externally-priced work behind the FIFO backlog.

        The caller already knows the service time (e.g. the cluster node's
        ``(overhead + engine NVM latency) × slow-multiplier``); the clock
        contributes only the queue wait and advances.  Arrivals need *not*
        be monotone (retries and hedges arrive out of order); the observed
        depth is recorded as 1 when the work had to queue, 0 when the device
        was idle — occupancy, not submission-slot depth, since no depth was
        priced.
        """
        if service_us < 0:
            raise ValueError("service_us must be >= 0")
        start_us = max(self.free_at_us, arrive_us)
        completion_us = start_us + service_us
        self.free_at_us = completion_us
        return self._finish(
            DeviceServiceRecord(
                dispatch_us=arrive_us,
                start_us=start_us,
                completion_us=completion_us,
                block_reads=int(block_reads),
                queue_depth=1.0 if start_us > arrive_us else 0.0,
                device_mbps=0.0,
                read_latency_us=0.0,
                device_index=self.index,
                table=table,
            )
        )

    # ---------------------------------------------------------------- private
    def _finish(self, record: DeviceServiceRecord) -> DeviceServiceRecord:
        """Fold one decided record into the aggregates (and record log)."""
        self.serves += 1
        self.busy_us += record.completion_us - record.start_us
        self.blocks_issued += record.block_reads
        bucket = depth_bucket(record.queue_depth)
        self.depth_hist[bucket] = self.depth_hist.get(bucket, 0) + 1
        if self.keep_records:
            self.records.append(record)
        return record

    def _prune(self, now_us: float) -> None:
        while (
            self._window_start < len(self._issue_us)
            and self._issue_us[self._window_start] <= now_us - self.window_us
        ):
            self._window_blocks -= self._issue_blocks[self._window_start]
            self._window_start += 1
        while (
            self._inflight_start < len(self._completion_us)
            and self._completion_us[self._inflight_start] <= now_us
        ):
            self._inflight_blocks -= self._issue_blocks[self._inflight_start]
            self._inflight_start += 1

    def _throughput_mbps(self, new_blocks: int) -> float:
        """Device throughput over the trailing window, including this work."""
        blocks = self._window_blocks + new_blocks
        return blocks * self.block_bytes / self.window_us  # bytes/µs == MB/s
