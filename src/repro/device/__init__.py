"""The shared NVM device layer: one resource abstraction for both tiers.

Bandana's real deployment is one host whose embedding tables all contend for
the *same* physical NVM devices.  This package models exactly that resource:
:class:`~repro.device.clock.DeviceClock` is one physical device as a FIFO
clock (with the paper's Figure-5 load-feedback pricing), and
:class:`~repro.device.bank.NVMDeviceBank` is a host's bank of K devices
behind a table→device mapping.

Both serving tiers are clients of this layer rather than owners of their own
clock arithmetic:

* the single-host front-end's
  :class:`~repro.serving.accountant.DeviceLatencyAccountant` is a thin
  adapter over a 1-device bank (device-priced work, bit-identical to the
  pre-refactor accountant — the golden serving pins verify it), and
  ``simulate_serving``'s shared-device modes put every table's misses on a
  configured ``devices_per_host`` bank so cross-table contention is real;
* each :class:`~repro.cluster.node.ClusterNode` owns a per-node bank
  (externally-priced work — the node prices reads through its replay
  engines) instead of a hand-rolled ``busy_until_us`` clock, and restart /
  rebase semantics are defined once, in :meth:`NVMDeviceBank.rebase`.

The layer also owns the ``device.queue`` / ``device.service`` tracing span
emission (:meth:`NVMDeviceBank.emit_device_spans`) and the observability the
conservation tests pin: per-device busy time (≤ wall time per device, ≤
wall × K per bank) and queue-depth histograms whose counts sum to the serve
count.  Everything runs on the simulated clock.
"""

from repro.device.bank import NVMDeviceBank
from repro.device.clock import DeviceClock, DeviceServiceRecord, depth_bucket

__all__ = [
    "DeviceClock",
    "DeviceServiceRecord",
    "NVMDeviceBank",
    "depth_bucket",
]
