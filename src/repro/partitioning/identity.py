"""The baseline placement: vectors stay in their original (id) order.

This reproduces the paper's "original tables" configuration: blocks hold
consecutive ids, which carry no co-access relationship, so prefetching whole
blocks yields little benefit (Figure 10's "Original Tables" line).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.embeddings.table import EmbeddingTable
from repro.partitioning.base import Partitioner, PartitionResult
from repro.workloads.trace import Trace


class IdentityPartitioner(Partitioner):
    """Keeps the original table order (the paper's baseline placement)."""

    name = "identity"

    def partition(
        self,
        num_vectors: int,
        trace: Optional[Trace] = None,
        table: Optional[EmbeddingTable] = None,
    ) -> PartitionResult:
        num_vectors = self._validate_num_vectors(num_vectors)
        start = time.perf_counter()
        order = np.arange(num_vectors, dtype=np.int64)
        return PartitionResult(
            order=order,
            runtime_seconds=self._timed(start),
            algorithm=self.name,
        )
