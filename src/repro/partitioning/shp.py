"""Social Hash Partitioner (SHP): supervised placement from access history.

This is Bandana's placement algorithm of choice (Section 4.2.2).  The training
trace is viewed as a hypergraph: vertices are embedding vectors, hyperedges
are the lookup queries.  The goal is a partition of the vectors into
block-sized groups that minimises the *average fanout* — the number of blocks
a query touches (Equation 3) — so that one 4 KB block read prefetches as many
of a query's vectors as possible.

Following Kabiljo et al. (VLDB'17), the partition is built by recursive
balanced bisection.  Each bisection starts from a random balanced split and
runs a fixed number of refinement iterations; in each iteration every vertex
computes the fanout gain of moving to the other side, both sides are ranked by
gain, and the top pairs are swapped while the combined gain is positive
(swapping preserves balance exactly).  Queries that end up entirely inside one
side are dropped from the sub-problems, which keeps the work per level roughly
proportional to the number of query memberships that are still "cut".

Vectors that never appear in the training trace have zero gain everywhere and
end up wherever balance requires — exactly the "arbitrary locations in blocks
that have free space" behaviour the paper describes, which motivates the
access-threshold admission policy of Section 4.3.2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.embeddings.table import EmbeddingTable
from repro.partitioning.base import Partitioner, PartitionResult
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive
from repro.workloads.trace import Trace


@dataclass
class _SubProblem:
    """One node of the recursive bisection tree.

    ``vertex_ids`` are global vector ids; ``members``/``query_ids`` form the
    flattened membership list of the queries restricted to this vertex set,
    with ``members`` holding *local* vertex indices (0..len(vertex_ids)-1).
    """

    vertex_ids: np.ndarray
    members: np.ndarray
    query_ids: np.ndarray
    num_queries: int
    depth: int


class SHPPartitioner(Partitioner):
    """Recursive-bisection hypergraph partitioner minimising average query fanout.

    Parameters
    ----------
    vectors_per_block:
        Target leaf size; the paper packs 32 vectors (4 KB / 128 B) per block.
    num_iterations:
        Refinement iterations per bisection (the paper uses 16).
    seed:
        Seed of the random initial splits.
    max_queries:
        Optional cap on the number of training queries used (queries beyond
        the cap are ignored); the paper's Figures 9 and 15 sweep this.
    """

    name = "shp"

    def __init__(
        self,
        vectors_per_block: int = 32,
        num_iterations: int = 16,
        seed: int = 0,
        max_queries: Optional[int] = None,
    ) -> None:
        check_positive(vectors_per_block, "vectors_per_block")
        check_positive(num_iterations, "num_iterations")
        if max_queries is not None:
            check_positive(max_queries, "max_queries")
        self.vectors_per_block = int(vectors_per_block)
        self.num_iterations = int(num_iterations)
        self.seed = int(seed)
        self.max_queries = None if max_queries is None else int(max_queries)

    # -------------------------------------------------------------------- API
    def partition(
        self,
        num_vectors: int,
        trace: Optional[Trace] = None,
        table: Optional[EmbeddingTable] = None,
    ) -> PartitionResult:
        num_vectors = self._validate_num_vectors(num_vectors)
        if trace is None:
            raise ValueError("SHPPartitioner requires a training trace")
        if trace.num_vectors > num_vectors:
            raise ValueError(
                "trace references more vectors than the table being partitioned"
            )
        start = time.perf_counter()
        rng = ensure_rng(self.seed)

        members, query_ids, num_queries = self._flatten_queries(trace)
        root = _SubProblem(
            vertex_ids=np.arange(num_vectors, dtype=np.int64),
            members=members,
            query_ids=query_ids,
            num_queries=num_queries,
            depth=0,
        )

        order_parts: List[np.ndarray] = []
        total_swaps = 0
        max_depth = 0
        # Depth-first, left child first, so the final order lays sibling leaves
        # next to each other (adjacent blocks share an ancestor split).
        stack: List[_SubProblem] = [root]
        while stack:
            problem = stack.pop()
            max_depth = max(max_depth, problem.depth)
            if problem.vertex_ids.size <= self.vectors_per_block:
                order_parts.append(problem.vertex_ids)
                continue
            side, swaps = self._bisect(problem, rng)
            total_swaps += swaps
            left, right = self._split(problem, side)
            # Push right first so the left child is processed first (LIFO).
            stack.append(right)
            stack.append(left)

        order = np.concatenate(order_parts).astype(np.int64)
        return PartitionResult(
            order=order,
            runtime_seconds=self._timed(start),
            algorithm=self.name,
            details={
                "num_iterations": self.num_iterations,
                "num_training_queries": num_queries,
                "total_swaps": int(total_swaps),
                "max_depth": int(max_depth),
            },
        )

    # ---------------------------------------------------------------- internal
    def _flatten_queries(self, trace: Trace) -> Tuple[np.ndarray, np.ndarray, int]:
        """Flatten the training queries into (member ids, query ids) arrays.

        Queries with fewer than two distinct ids cannot influence fanout and
        are dropped up front.
        """
        queries = trace.queries
        if self.max_queries is not None:
            queries = queries[: self.max_queries]
        members_parts: List[np.ndarray] = []
        query_id_parts: List[np.ndarray] = []
        next_query = 0
        for query in queries:
            ids = np.unique(query)
            if ids.size < 2:
                continue
            members_parts.append(ids.astype(np.int64))
            query_id_parts.append(np.full(ids.size, next_query, dtype=np.int64))
            next_query += 1
        if not members_parts:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                0,
            )
        return (
            np.concatenate(members_parts),
            np.concatenate(query_id_parts),
            next_query,
        )

    def _bisect(
        self, problem: _SubProblem, rng: np.random.Generator
    ) -> Tuple[np.ndarray, int]:
        """Refine a balanced bisection of the sub-problem's vertices.

        Returns the side assignment (0/1 per local vertex) and the number of
        swaps performed.
        """
        num_vertices = problem.vertex_ids.size
        half = num_vertices // 2
        # Balanced random initial split: `half` vertices on side 1.
        side = np.zeros(num_vertices, dtype=np.int8)
        side[rng.permutation(num_vertices)[:half]] = 1

        members = problem.members
        query_ids = problem.query_ids
        num_queries = problem.num_queries
        total_swaps = 0
        if members.size == 0 or num_queries == 0:
            return side, 0

        membership_counts = np.bincount(query_ids, minlength=num_queries)
        for _ in range(self.num_iterations):
            member_side = side[members]
            count_side1 = np.bincount(
                query_ids, weights=member_side, minlength=num_queries
            )
            count_side0 = membership_counts - count_side1

            # Per-membership gain of moving that vertex to the other side:
            # leaving a side it occupies alone removes one block from the
            # query's fanout (+1 gain); entering a side the query does not yet
            # touch adds one (-1 gain).
            on_side1 = member_side.astype(bool)
            count_here = np.where(on_side1, count_side1[query_ids], count_side0[query_ids])
            count_there = np.where(on_side1, count_side0[query_ids], count_side1[query_ids])
            contribution = (count_here == 1).astype(np.float64) - (count_there == 0)
            gain = np.bincount(members, weights=contribution, minlength=num_vertices)

            side0_vertices = np.where(side == 0)[0]
            side1_vertices = np.where(side == 1)[0]
            if side0_vertices.size == 0 or side1_vertices.size == 0:
                break
            side0_sorted = side0_vertices[np.argsort(-gain[side0_vertices], kind="stable")]
            side1_sorted = side1_vertices[np.argsort(-gain[side1_vertices], kind="stable")]
            pairs = min(side0_sorted.size, side1_sorted.size)
            combined = gain[side0_sorted[:pairs]] + gain[side1_sorted[:pairs]]
            # Both gain sequences are non-increasing, so the combined gain is
            # non-increasing and the positive prefix is a contiguous block.
            num_swaps = int((combined > 0).sum())
            if num_swaps == 0:
                break
            swap0 = side0_sorted[:num_swaps]
            swap1 = side1_sorted[:num_swaps]
            side[swap0] = 1
            side[swap1] = 0
            total_swaps += num_swaps
        return side, total_swaps

    def _split(
        self, problem: _SubProblem, side: np.ndarray
    ) -> Tuple[_SubProblem, _SubProblem]:
        """Split a sub-problem into its two children given a side assignment."""
        children = []
        for child_side in (0, 1):
            vertex_mask = side == child_side
            child_vertices = problem.vertex_ids[vertex_mask]
            # Local re-indexing of the child's vertices.
            local_index = np.full(problem.vertex_ids.size, -1, dtype=np.int64)
            local_index[np.where(vertex_mask)[0]] = np.arange(child_vertices.size)

            if problem.members.size:
                member_mask = side[problem.members] == child_side
                child_members = local_index[problem.members[member_mask]]
                child_query_ids = problem.query_ids[member_mask]
                # Keep only queries that still have >= 2 members on this side;
                # single-member queries cannot affect any further bisection.
                if child_query_ids.size:
                    counts = np.bincount(child_query_ids)
                    keep = counts[child_query_ids] >= 2
                    child_members = child_members[keep]
                    child_query_ids = child_query_ids[keep]
                    if child_query_ids.size:
                        _, child_query_ids = np.unique(
                            child_query_ids, return_inverse=True
                        )
                        num_child_queries = int(child_query_ids.max()) + 1
                    else:
                        num_child_queries = 0
                else:
                    num_child_queries = 0
            else:
                child_members = np.empty(0, dtype=np.int64)
                child_query_ids = np.empty(0, dtype=np.int64)
                num_child_queries = 0

            children.append(
                _SubProblem(
                    vertex_ids=child_vertices,
                    members=child_members,
                    query_ids=child_query_ids,
                    num_queries=num_child_queries,
                    depth=problem.depth + 1,
                )
            )
        return children[0], children[1]
