"""Physical placement algorithms (the paper's Section 4.2).

A partitioner decides the physical order of a table's embedding vectors so
that vectors likely to be read together share a 4 KB NVM block.  Two families
are evaluated in the paper:

* **Semantic** — :class:`KMeansPartitioner` and
  :class:`RecursiveKMeansPartitioner` cluster the vector *values* (Euclidean
  proximity as a proxy for temporal proximity).
* **Supervised** — :class:`SHPPartitioner` (Social Hash Partitioner) minimises
  the average number of blocks a training-trace query touches, using only the
  access history.

:class:`IdentityPartitioner` reproduces the paper's baseline (original table
order) and :class:`FrequencyPartitioner` is an extra ablation that simply
groups hot vectors together.
"""

from repro.partitioning.base import Partitioner, PartitionResult
from repro.partitioning.identity import IdentityPartitioner
from repro.partitioning.frequency import FrequencyPartitioner
from repro.partitioning.kmeans import KMeansPartitioner, kmeans_cluster
from repro.partitioning.recursive_kmeans import RecursiveKMeansPartitioner
from repro.partitioning.shp import SHPPartitioner

__all__ = [
    "Partitioner",
    "PartitionResult",
    "IdentityPartitioner",
    "FrequencyPartitioner",
    "KMeansPartitioner",
    "kmeans_cluster",
    "RecursiveKMeansPartitioner",
    "SHPPartitioner",
]
