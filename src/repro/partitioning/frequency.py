"""Frequency-ordered placement (ablation; not part of the paper's design).

Sorting vectors by access frequency packs the hottest vectors into the same
few blocks.  It captures *popularity* locality but not *co-access* locality:
two hot vectors need not be requested by the same queries.  It is included as
an ablation baseline between the identity layout and SHP, to quantify how much
of SHP's win comes from genuine co-access mining rather than from merely
segregating hot vectors.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.embeddings.table import EmbeddingTable
from repro.partitioning.base import Partitioner, PartitionResult
from repro.workloads.characterization import access_counts
from repro.workloads.trace import Trace


class FrequencyPartitioner(Partitioner):
    """Orders vectors by descending access count in the training trace."""

    name = "frequency"

    def partition(
        self,
        num_vectors: int,
        trace: Optional[Trace] = None,
        table: Optional[EmbeddingTable] = None,
    ) -> PartitionResult:
        num_vectors = self._validate_num_vectors(num_vectors)
        if trace is None:
            raise ValueError("FrequencyPartitioner requires a training trace")
        if trace.num_vectors > num_vectors:
            raise ValueError(
                "trace references more vectors than the table being partitioned"
            )
        start = time.perf_counter()
        counts = np.zeros(num_vectors, dtype=np.int64)
        counts[: trace.num_vectors] = access_counts(trace)
        # Stable sort keeps the original order among equally-hot vectors, so
        # never-accessed vectors stay in id order at the cold end.
        order = np.argsort(-counts, kind="stable").astype(np.int64)
        return PartitionResult(
            order=order,
            runtime_seconds=self._timed(start),
            algorithm=self.name,
            details={"max_count": int(counts.max()) if counts.size else 0},
        )
