"""Two-stage (recursive) K-means placement (the paper's Section 4.2.1).

Flat K-means does not scale to the hundreds of thousands of clusters needed to
approach block-sized groups (Figure 7a shows its runtime growing steeply with
the cluster count).  The paper's remedy is to run K-means twice: first into a
moderate number of top-level clusters (256), then again *inside each cluster*
to produce sub-clusters.  The total number of leaf clusters is the product,
while each individual run stays small, so the runtime grows far more slowly
(Figure 7b) and the achieved effective bandwidth matches flat K-means
(Figure 8).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.embeddings.table import EmbeddingTable
from repro.partitioning.base import Partitioner, PartitionResult
from repro.partitioning.kmeans import kmeans_cluster
from repro.utils.validation import check_positive
from repro.workloads.trace import Trace


class RecursiveKMeansPartitioner(Partitioner):
    """Two-stage K-means: top-level clusters, then sub-clusters within each.

    Parameters
    ----------
    num_top_clusters:
        Number of first-stage clusters (the paper uses 256).
    num_sub_clusters:
        *Total* number of leaf clusters targeted across the whole table (the
        x-axis of Figures 7b and 8).  Each top-level cluster is split into a
        number of sub-clusters proportional to its size so leaves stay
        roughly balanced.
    num_iterations:
        Lloyd iterations per stage.
    seed:
        Base random seed.
    """

    name = "recursive-kmeans"

    def __init__(
        self,
        num_top_clusters: int = 256,
        num_sub_clusters: int = 8192,
        num_iterations: int = 20,
        seed: int = 0,
    ) -> None:
        check_positive(num_top_clusters, "num_top_clusters")
        check_positive(num_sub_clusters, "num_sub_clusters")
        check_positive(num_iterations, "num_iterations")
        if num_sub_clusters < num_top_clusters:
            raise ValueError(
                "num_sub_clusters is the total leaf count and must be >= num_top_clusters"
            )
        self.num_top_clusters = int(num_top_clusters)
        self.num_sub_clusters = int(num_sub_clusters)
        self.num_iterations = int(num_iterations)
        self.seed = int(seed)

    def partition(
        self,
        num_vectors: int,
        trace: Optional[Trace] = None,
        table: Optional[EmbeddingTable] = None,
    ) -> PartitionResult:
        num_vectors = self._validate_num_vectors(num_vectors)
        if table is None:
            raise ValueError(
                "RecursiveKMeansPartitioner requires the embedding table values"
            )
        if table.num_vectors != num_vectors:
            raise ValueError(
                f"table has {table.num_vectors} vectors but num_vectors={num_vectors}"
            )
        start = time.perf_counter()
        values = np.asarray(table.values, dtype=np.float32)

        top_labels, _, _ = kmeans_cluster(
            values,
            num_clusters=self.num_top_clusters,
            num_iterations=self.num_iterations,
            seed=self.seed,
        )
        num_top = int(top_labels.max()) + 1

        # Split the leaf budget across top-level clusters proportionally to
        # their size (at least one leaf each).
        counts = np.bincount(top_labels, minlength=num_top)
        leaves_per_cluster = np.maximum(
            1, np.round(self.num_sub_clusters * counts / max(1, counts.sum())).astype(int)
        )

        order_parts = []
        total_leaves = 0
        for cluster in range(num_top):
            member_ids = np.where(top_labels == cluster)[0]
            if member_ids.size == 0:
                continue
            leaves = int(min(leaves_per_cluster[cluster], member_ids.size))
            total_leaves += leaves
            if leaves <= 1:
                order_parts.append(member_ids)
                continue
            sub_labels, _, _ = kmeans_cluster(
                values[member_ids],
                num_clusters=leaves,
                num_iterations=self.num_iterations,
                seed=self.seed + 1 + cluster,
            )
            order_parts.append(member_ids[np.argsort(sub_labels, kind="stable")])

        order = np.concatenate(order_parts).astype(np.int64)
        return PartitionResult(
            order=order,
            runtime_seconds=self._timed(start),
            algorithm=self.name,
            details={
                "num_top_clusters": num_top,
                "num_leaf_clusters": total_leaves,
            },
        )
