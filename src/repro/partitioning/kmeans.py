"""Semantic placement with flat K-means (the paper's Section 4.2.1).

The hypothesis: vectors that are close in embedding space represent similar
content and are therefore accessed at close temporal intervals.  K-means
clusters the vector values and the physical order simply concatenates the
clusters, so members of a cluster land in the same (or adjacent) 4 KB blocks.

The clustering itself is a plain NumPy k-means++ / Lloyd implementation (the
paper uses Faiss; the algorithm is the same).  Its runtime grows with the
number of clusters, which is what the paper's Figure 7a measures and what
motivates the recursive variant.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from repro.embeddings.table import EmbeddingTable
from repro.partitioning.base import Partitioner, PartitionResult
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive
from repro.workloads.trace import Trace


def _kmeans_plus_plus_init(
    values: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread the initial centroids out in data space."""
    num_points = values.shape[0]
    centroids = np.empty((num_clusters, values.shape[1]), dtype=values.dtype)
    first = rng.integers(num_points)
    centroids[0] = values[first]
    # Squared distance to the nearest chosen centroid so far.
    distances = ((values - centroids[0]) ** 2).sum(axis=1)
    for index in range(1, num_clusters):
        total = distances.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; pick uniformly.
            choice = rng.integers(num_points)
        else:
            choice = rng.choice(num_points, p=distances / total)
        centroids[index] = values[choice]
        new_distances = ((values - centroids[index]) ** 2).sum(axis=1)
        np.minimum(distances, new_distances, out=distances)
    return centroids


def kmeans_cluster(
    values: np.ndarray,
    num_clusters: int,
    num_iterations: int = 20,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Cluster ``values`` into ``num_clusters`` groups with Lloyd's algorithm.

    Returns ``(labels, centroids, inertia)`` where ``inertia`` is the final
    sum of squared distances to the assigned centroid.  Cluster count is
    clamped to the number of points.
    """
    check_positive(num_clusters, "num_clusters")
    check_positive(num_iterations, "num_iterations")
    values = np.asarray(values, dtype=np.float32)
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D, got shape {values.shape}")
    num_points = values.shape[0]
    num_clusters = int(min(num_clusters, num_points))
    rng = ensure_rng(seed)

    if num_clusters == 1:
        centroids = values.mean(axis=0, keepdims=True)
        labels = np.zeros(num_points, dtype=np.int64)
        inertia = float(((values - centroids[0]) ** 2).sum())
        return labels, centroids, inertia

    centroids = _kmeans_plus_plus_init(values, num_clusters, rng)
    labels = np.zeros(num_points, dtype=np.int64)
    for _ in range(int(num_iterations)):
        # Assignment step: nearest centroid by squared Euclidean distance,
        # computed blockwise to bound memory for large tables.
        labels = _assign_labels(values, centroids)
        # Update step.
        new_centroids = centroids.copy()
        counts = np.bincount(labels, minlength=num_clusters)
        sums = np.zeros_like(centroids)
        np.add.at(sums, labels, values)
        non_empty = counts > 0
        new_centroids[non_empty] = sums[non_empty] / counts[non_empty, None]
        # Re-seed empty clusters on the points farthest from their centroid.
        empty = np.where(~non_empty)[0]
        if empty.size:
            distances = ((values - new_centroids[labels]) ** 2).sum(axis=1)
            farthest = np.argsort(-distances)[: empty.size]
            new_centroids[empty] = values[farthest]
        if np.allclose(new_centroids, centroids, atol=1e-6):
            centroids = new_centroids
            break
        centroids = new_centroids
    labels = _assign_labels(values, centroids)
    inertia = float(((values - centroids[labels]) ** 2).sum())
    return labels, centroids, inertia


def _assign_labels(
    values: np.ndarray, centroids: np.ndarray, chunk: int = 16384
) -> np.ndarray:
    """Nearest-centroid assignment, chunked over points to bound memory."""
    labels = np.empty(values.shape[0], dtype=np.int64)
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 ; ||x||^2 is constant per row.
    centroid_norms = (centroids ** 2).sum(axis=1)
    for start in range(0, values.shape[0], chunk):
        block = values[start : start + chunk]
        scores = block @ centroids.T
        scores *= -2.0
        scores += centroid_norms
        labels[start : start + chunk] = scores.argmin(axis=1)
    return labels


class KMeansPartitioner(Partitioner):
    """Orders vectors by their K-means cluster (semantic placement).

    Parameters
    ----------
    num_clusters:
        Number of clusters (the x-axis of the paper's Figure 6).
    num_iterations:
        Lloyd iterations (the paper uses 20).
    seed:
        Random seed for the k-means++ initialisation.
    sort_clusters_by_size:
        When true, larger clusters are laid out first; keeps block packing of
        small trailing clusters slightly tighter.  The paper does not specify
        an intra/inter cluster order, and the choice has little effect.
    """

    name = "kmeans"

    def __init__(
        self,
        num_clusters: int,
        num_iterations: int = 20,
        seed: int = 0,
        sort_clusters_by_size: bool = False,
    ) -> None:
        check_positive(num_clusters, "num_clusters")
        check_positive(num_iterations, "num_iterations")
        self.num_clusters = int(num_clusters)
        self.num_iterations = int(num_iterations)
        self.seed = int(seed)
        self.sort_clusters_by_size = bool(sort_clusters_by_size)

    def partition(
        self,
        num_vectors: int,
        trace: Optional[Trace] = None,
        table: Optional[EmbeddingTable] = None,
    ) -> PartitionResult:
        num_vectors = self._validate_num_vectors(num_vectors)
        if table is None:
            raise ValueError("KMeansPartitioner requires the embedding table values")
        if table.num_vectors != num_vectors:
            raise ValueError(
                f"table has {table.num_vectors} vectors but num_vectors={num_vectors}"
            )
        start = time.perf_counter()
        labels, _, inertia = kmeans_cluster(
            table.values,
            num_clusters=self.num_clusters,
            num_iterations=self.num_iterations,
            seed=self.seed,
        )
        order = order_by_labels(labels, self.sort_clusters_by_size)
        return PartitionResult(
            order=order,
            runtime_seconds=self._timed(start),
            algorithm=self.name,
            details={
                "num_clusters": self.num_clusters,
                "inertia": inertia,
            },
        )


def order_by_labels(labels: np.ndarray, sort_clusters_by_size: bool = False) -> np.ndarray:
    """Turn a cluster labelling into a physical order (clusters laid out contiguously)."""
    labels = np.asarray(labels, dtype=np.int64)
    if sort_clusters_by_size:
        counts = np.bincount(labels)
        # Rank clusters by descending size; relabel so argsort groups big first.
        rank_of_label = np.empty_like(counts)
        rank_of_label[np.argsort(-counts, kind="stable")] = np.arange(counts.size)
        sort_keys = rank_of_label[labels]
    else:
        sort_keys = labels
    return np.argsort(sort_keys, kind="stable").astype(np.int64)
