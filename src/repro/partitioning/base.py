"""Partitioner interface and result container.

Every placement algorithm consumes some combination of the table's values and
its training trace and produces a physical *order* — a permutation of vector
ids.  The order is wrapped in a :class:`repro.nvm.BlockLayout` by
:meth:`PartitionResult.layout` for consumption by the cache and device.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.embeddings.table import EmbeddingTable
from repro.nvm.block import BlockLayout
from repro.workloads.trace import Trace


@dataclass
class PartitionResult:
    """Output of a partitioner run.

    Attributes
    ----------
    order:
        Permutation of vector ids: ``order[i]`` is the id stored at physical
        position ``i``.
    runtime_seconds:
        Wall-clock time the algorithm took (the paper reports these in
        Figure 7).
    algorithm:
        Human-readable name of the algorithm that produced the order.
    details:
        Algorithm-specific diagnostics (iterations, objective values, ...).
    """

    order: np.ndarray
    runtime_seconds: float
    algorithm: str
    details: Dict[str, object] = field(default_factory=dict)

    def layout(self, vectors_per_block: int) -> BlockLayout:
        """Pack the order into fixed-size blocks."""
        return BlockLayout(self.order, vectors_per_block)


class Partitioner(abc.ABC):
    """Base class of all placement algorithms."""

    #: Name used in reports and benchmark output.
    name: str = "partitioner"

    @abc.abstractmethod
    def partition(
        self,
        num_vectors: int,
        trace: Optional[Trace] = None,
        table: Optional[EmbeddingTable] = None,
    ) -> PartitionResult:
        """Produce a physical order for a table of ``num_vectors`` vectors.

        Subclasses may require ``trace`` (supervised algorithms), ``table``
        (semantic algorithms), both, or neither; they must raise
        ``ValueError`` when a required input is missing.
        """

    def _timed(self, start_time: float) -> float:
        """Seconds elapsed since ``start_time`` (helper for subclasses)."""
        return time.perf_counter() - start_time

    @staticmethod
    def _validate_num_vectors(num_vectors: int) -> int:
        if num_vectors <= 0:
            raise ValueError(f"num_vectors must be positive, got {num_vectors}")
        return int(num_vectors)
