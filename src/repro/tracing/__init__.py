"""Per-request span tracing on the simulated clock.

``repro.tracing`` decomposes every request's end-to-end latency into named
stage intervals — arrival → batcher linger → shard fan-out → per-attempt
node queue/service (with retries, hedges, breaker skips, and sheds each as
their own span) → fan-in — so a regressed percentile can be *attributed*
instead of guessed at.  Everything runs on the same microsecond simulated
clock as the serving front-end and the cluster store; tracing reads values
the simulation already computed, touches no RNG, and changes no behavior.

Worked example: why did p999 regress?
-------------------------------------
``BENCH_cluster_failures.json`` shows the ``crash_recover`` scenario at
R=2 with availability 1.0 but p999 ≈ 5x the healthy baseline.  Is the
device slower, or is the tail paying for failover?  Ask the tracer:

>>> from repro.cluster import run_scenario
>>> from repro.core.config import TracingConfig
>>> report = run_scenario(
...     store, eval_trace, "crash_recover",
...     cluster_config=cluster_cfg, serving_config=serving_cfg,
...     num_requests=4000,
...     tracing=TracingConfig(enabled=True, sample_every=1),
... )
>>> trace = report.trace                      # JSON-ready summary dict
>>> trace["slo_violators_breakdown_by_stage"]  # doctest: +SKIP
{'request':         {'count': 38, 'total_us': 52413.0, ...},
 'attempt.timeout': {'count': 41, 'total_us': 28700.0, ...},
 'backoff':         {'count': 41, 'total_us': 12915.0, ...},
 'node.service':    {'count': 38, 'total_us': 3810.0, ...},
 ...}

The violators' time sits in ``attempt.timeout`` + ``backoff`` — reads that
hit the crashed replica, burned the shard timeout, backed off, and retried
on the survivor — while ``node.service`` is unchanged from the healthy run.
The p999 inflation is failover cost, not device contention; the fix is a
faster breaker strike or shorter shard timeout, not more NVM bandwidth.
The same dict's ``top_slow`` entries carry each slow request's critical
path (the root-to-leaf chain of spans that determined its completion) for
request-by-request drill-down.

Enabling it
-----------
Set ``BandanaConfig.tracing = TracingConfig(enabled=True, ...)`` or pass a
``TracingConfig`` / :class:`Tracer` to ``simulate_serving`` /
``run_scenario`` directly.  Disabled (the default) resolves to the shared
:data:`NULL_TRACER`, and every instrumentation site guards with
``if tracer.enabled:`` — the disabled path is an attribute load and a
branch, with zero allocations (enforced by
``benchmarks/bench_tracing_overhead.py`` in CI).
"""

from repro.tracing.tracer import (
    ATTR_OVERLAP_OK,
    ATTR_PARALLEL,
    NULL_TRACER,
    STAGE_ATTEMPT_BREAKER_SKIP,
    STAGE_ATTEMPT_LINK_LOSS,
    STAGE_ATTEMPT_OK,
    STAGE_ATTEMPT_SHED,
    STAGE_ATTEMPT_TIMEOUT,
    STAGE_BACKOFF,
    STAGE_BATCH_QUEUE,
    STAGE_DEVICE_QUEUE,
    STAGE_DEVICE_SERVICE,
    STAGE_FANIN_OVERHEAD,
    STAGE_HEDGE_LOST,
    STAGE_HEDGE_WON,
    STAGE_NODE_QUEUE,
    STAGE_NODE_SERVICE,
    STAGE_OVERHEAD,
    STAGE_REQUEST,
    STAGE_REQUEST_SHED,
    STAGE_SHARD_GROUP,
    NullTracer,
    RequestTrace,
    Span,
    Tracer,
    resolve_tracer,
)
from repro.tracing.summary import (
    breakdown_by_stage,
    critical_path,
    tracer_summary,
    validate_trace,
)

__all__ = [
    "ATTR_OVERLAP_OK",
    "ATTR_PARALLEL",
    "NULL_TRACER",
    "STAGE_ATTEMPT_BREAKER_SKIP",
    "STAGE_ATTEMPT_LINK_LOSS",
    "STAGE_ATTEMPT_OK",
    "STAGE_ATTEMPT_SHED",
    "STAGE_ATTEMPT_TIMEOUT",
    "STAGE_BACKOFF",
    "STAGE_BATCH_QUEUE",
    "STAGE_DEVICE_QUEUE",
    "STAGE_DEVICE_SERVICE",
    "STAGE_FANIN_OVERHEAD",
    "STAGE_HEDGE_LOST",
    "STAGE_HEDGE_WON",
    "STAGE_NODE_QUEUE",
    "STAGE_NODE_SERVICE",
    "STAGE_OVERHEAD",
    "STAGE_REQUEST",
    "STAGE_REQUEST_SHED",
    "STAGE_SHARD_GROUP",
    "NullTracer",
    "RequestTrace",
    "Span",
    "Tracer",
    "breakdown_by_stage",
    "critical_path",
    "resolve_tracer",
    "tracer_summary",
    "validate_trace",
]
