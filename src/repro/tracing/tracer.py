"""Span records, the tracer, and its bounded in-memory sink.

Everything here runs on the **simulated** clock: a :class:`Span` is a named
``[t_start_us, t_end_us]`` interval on the same microsecond timeline the
serving front-end and the cluster store advance, recorded *retrospectively*
(the simulator knows an interval's end the moment it computes it, so there
is no open-span bookkeeping on the hot path beyond a dict entry).  A trace
is the set of spans of one request, rooted at a ``"request"`` span covering
arrival to completion.

Cost discipline
---------------
Tracing must never perturb a simulation — it reads clocks and counters the
simulation already computed and touches no RNG — and must cost (almost)
nothing when disabled.  Both are structural:

* every instrumentation site guards its span construction with
  ``if tracer.enabled:``, so the disabled path pays one attribute load and
  a branch per site — no allocations, no calls (the shared
  :data:`NULL_TRACER` singleton exists so call sites never need a ``None``
  check, and its recording methods are no-ops should anyone call them);
* the sink is bounded: retention is sampled (every ``sample_every``-th
  request, plus every SLO violator when ``always_sample_slo_violations``)
  and capped at ``max_requests`` retained traces, evicting the oldest
  retained trace first — a week-long simulated run cannot OOM the tracer.

The SLO-violator override is what makes the sink useful for tail debugging:
p999 regressions live in a handful of requests, and uniform sampling at a
rate that keeps memory bounded would almost surely miss all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import TracingConfig

# ---------------------------------------------------------------------- stages
#: Root span of every request trace (arrival -> completion).
STAGE_REQUEST = "request"
#: Front-end dispatch wait: arrival -> batch dispatch (queue wait + linger).
STAGE_BATCH_QUEUE = "batcher.queue"
#: Single-host device FIFO wait: batch dispatch -> device start.
STAGE_DEVICE_QUEUE = "device.queue"
#: Single-host device service: device start -> batch completion.
STAGE_DEVICE_SERVICE = "device.service"
#: Fixed per-request front-end overhead (pooling, RPC framing).
STAGE_OVERHEAD = "overhead"
#: One shard group's fan-out interval (cluster path).
STAGE_SHARD_GROUP = "shard_group"
#: A shard attempt that served the read.
STAGE_ATTEMPT_OK = "attempt.ok"
#: A shard attempt that burned the shard timeout (crashed node).
STAGE_ATTEMPT_TIMEOUT = "attempt.timeout"
#: A shard attempt lost on a degraded link (also burns the timeout).
STAGE_ATTEMPT_LINK_LOSS = "attempt.link_loss"
#: A shard attempt the node shed at admission (fast rejection round trip).
STAGE_ATTEMPT_SHED = "attempt.shed"
#: A replica skipped without cost because its circuit breaker was open.
STAGE_ATTEMPT_BREAKER_SKIP = "attempt.breaker_skip"
#: Retry backoff between attempts.
STAGE_BACKOFF = "backoff"
#: Queue wait on the serving node's FIFO clock (inside an attempt).
STAGE_NODE_QUEUE = "node.queue"
#: Service time on the serving node (inside an attempt).
STAGE_NODE_SERVICE = "node.service"
#: A hedged read that delivered the shard group's result.
STAGE_HEDGE_WON = "hedge.won"
#: A hedged read that did real work but finished after the primary.
STAGE_HEDGE_LOST = "hedge.lost"
#: Router-side fan-in overhead at the end of a cluster request.
STAGE_FANIN_OVERHEAD = "fanin.overhead"
#: A whole request shed by *single-host* admission control at batch
#: dispatch (fast rejection; no cache or device work was done).
STAGE_REQUEST_SHED = "request.shed"

#: Attribute marking a span allowed to end after its parent: speculative
#: work (a lost hedge, or the primary attempt a winning hedge beat) whose
#: completion no longer mattered to the request.  The nesting invariant
#: (:func:`repro.tracing.summary.validate_trace`) exempts exactly these.
ATTR_OVERLAP_OK = "overlap_ok"
#: Attribute marking spans that run concurrently with their siblings (the
#: shard groups of one fan-out).  Each still nests inside its parent, but
#: sibling durations deliberately don't tile — the conservation check in
#: :func:`repro.tracing.summary.validate_trace` skips the children-sum
#: budget for them (their bound is the nesting check itself).
ATTR_PARALLEL = "parallel"


@dataclass(slots=True)
class Span:
    """One named interval on the simulated clock.

    ``parent_id`` is ``None`` only for the root ``"request"`` span; every
    other span nests under its parent's interval (except speculative-loser
    spans carrying :data:`ATTR_OVERLAP_OK` — see module docstring).
    ``attributes`` carries stage-specific context: table/node/shard-group
    ids, batch id and cutoff, queue wait vs service split, attempt outcome.
    """

    span_id: int
    request_id: int
    parent_id: Optional[int]
    name: str
    t_start_us: float
    t_end_us: float
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return self.t_end_us - self.t_start_us

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (tuples in attributes become lists)."""
        return {
            "span_id": self.span_id,
            "request_id": self.request_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t_start_us": self.t_start_us,
            "t_end_us": self.t_end_us,
            "duration_us": self.duration_us,
            "attributes": {
                key: (list(value) if isinstance(value, tuple) else value)
                for key, value in self.attributes.items()
            },
        }


@dataclass(slots=True)
class RequestTrace:
    """The completed trace of one request: its root interval plus all spans."""

    request_id: int
    arrival_us: float
    completion_us: float
    slo_violated: bool
    degraded: bool
    spans: List[Span]

    @property
    def latency_us(self) -> float:
        return self.completion_us - self.arrival_us

    @property
    def root(self) -> Span:
        """The ``"request"`` span (always recorded first)."""
        return self.spans[0]

    def to_dict(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "arrival_us": self.arrival_us,
            "completion_us": self.completion_us,
            "latency_us": self.latency_us,
            "slo_violated": self.slo_violated,
            "degraded": self.degraded,
            "spans": [span.to_dict() for span in self.spans],
        }


@dataclass(slots=True)
class _PendingRequest:
    """A request whose spans are still being recorded."""

    seq: int
    arrival_us: float
    root_id: int
    spans: List[Span]


class Tracer:
    """Per-request span recorder with a bounded, sampled sink.

    Parameters
    ----------
    config:
        Sampling and capacity knobs; defaults to an enabled
        :class:`~repro.core.config.TracingConfig` that retains everything
        (``sample_every=1``), which is what tests and ad-hoc debugging want.
    slo_latency_us:
        End-to-end latency above which a request counts as an SLO violator
        (always retained when ``config.always_sample_slo_violations``);
        ``None`` disables the violator override.
    """

    #: Class-level so instrumentation sites pay one attribute load to skip.
    enabled: bool = True

    def __init__(
        self,
        config: Optional[TracingConfig] = None,
        slo_latency_us: Optional[float] = None,
    ) -> None:
        self.config = config if config is not None else TracingConfig(enabled=True)
        self.slo_latency_us = slo_latency_us
        #: Retained traces by request id, in retention order (dict preserves
        #: insertion order; the oldest entry is the eviction victim).
        self.traces: Dict[int, RequestTrace] = {}
        self._pending: Dict[int, _PendingRequest] = {}
        self._next_span_id = 0
        # Conservation counters: every begun request must end exactly once,
        # whether or not its trace is retained.
        self.requests_started = 0
        self.requests_ended = 0
        self.requests_retained = 0
        self.requests_sampled_out = 0
        self.requests_evicted = 0
        self.spans_recorded = 0

    # -------------------------------------------------------------- recording
    def begin_request(self, request_id: int, arrival_us: float) -> int:
        """Open the root span of ``request_id``; returns the root span id."""
        if request_id in self._pending or request_id in self.traces:
            raise ValueError(f"request {request_id} already traced")
        root = Span(
            span_id=self._next_span_id,
            request_id=request_id,
            parent_id=None,
            name=STAGE_REQUEST,
            t_start_us=float(arrival_us),
            t_end_us=float(arrival_us),
        )
        self._next_span_id += 1
        self._pending[request_id] = _PendingRequest(
            seq=self.requests_started,
            arrival_us=float(arrival_us),
            root_id=root.span_id,
            spans=[root],
        )
        self.requests_started += 1
        self.spans_recorded += 1
        return root.span_id

    def span(
        self,
        request_id: int,
        name: str,
        t_start_us: float,
        t_end_us: float,
        parent_id: Optional[int] = None,
        **attributes: object,
    ) -> int:
        """Record one fully-known interval; returns its span id."""
        pending = self._pending[request_id]
        span = Span(
            span_id=self._next_span_id,
            request_id=request_id,
            parent_id=parent_id if parent_id is not None else pending.root_id,
            name=name,
            t_start_us=float(t_start_us),
            t_end_us=float(t_end_us),
            attributes=attributes,
        )
        self._next_span_id += 1
        pending.spans.append(span)
        self.spans_recorded += 1
        return span.span_id

    def open_span(
        self,
        request_id: int,
        name: str,
        t_start_us: float,
        parent_id: Optional[int] = None,
        **attributes: object,
    ) -> int:
        """Record a span whose end is not known yet (close with close_span)."""
        return self.span(
            request_id, name, t_start_us, t_start_us, parent_id, **attributes
        )

    def close_span(
        self, request_id: int, span_id: int, t_end_us: float, **attributes: object
    ) -> None:
        """Set an open span's end time (and merge any late attributes)."""
        for span in self._pending[request_id].spans:
            if span.span_id == span_id:
                span.t_end_us = float(t_end_us)
                if attributes:
                    span.attributes.update(attributes)
                return
        raise KeyError(f"span {span_id} is not open on request {request_id}")

    def end_request(
        self, request_id: int, completion_us: float, degraded: bool = False
    ) -> None:
        """Close the root span and decide whether the trace is retained."""
        pending = self._pending.pop(request_id)
        root = pending.spans[0]
        root.t_end_us = float(completion_us)
        self.requests_ended += 1
        latency_us = float(completion_us) - pending.arrival_us
        slo_violated = (
            self.slo_latency_us is not None and latency_us > self.slo_latency_us
        )
        keep = pending.seq % self.config.sample_every == 0
        if slo_violated and self.config.always_sample_slo_violations:
            keep = True
        if not keep:
            self.requests_sampled_out += 1
            return
        while len(self.traces) >= self.config.max_requests:
            self.traces.pop(next(iter(self.traces)))
            self.requests_evicted += 1
        self.traces[request_id] = RequestTrace(
            request_id=request_id,
            arrival_us=pending.arrival_us,
            completion_us=float(completion_us),
            slo_violated=slo_violated,
            degraded=degraded,
            spans=pending.spans,
        )
        self.requests_retained += 1

    # ---------------------------------------------------------------- queries
    def spans_for_request(self, request_id: int) -> List[Span]:
        """All retained spans of one request, recording order (root first)."""
        trace = self.traces.get(request_id)
        return list(trace.spans) if trace is not None else []

    def critical_path(self, request_id: int) -> List[Span]:
        """The chain of spans that determined one request's completion."""
        from repro.tracing.summary import critical_path

        trace = self.traces.get(request_id)
        return critical_path(trace) if trace is not None else []

    def breakdown_by_stage(
        self, only_slo_violators: bool = False
    ) -> Dict[str, Dict[str, float]]:
        """Aggregate time per stage name over the retained traces."""
        from repro.tracing.summary import breakdown_by_stage

        traces = [
            trace
            for trace in self.traces.values()
            if trace.slo_violated or not only_slo_violators
        ]
        return breakdown_by_stage(traces)

    def slowest_requests(self, k: int) -> List[RequestTrace]:
        """The ``k`` retained traces with the largest end-to-end latency."""
        ranked = sorted(
            self.traces.values(), key=lambda t: (-t.latency_us, t.request_id)
        )
        return ranked[: max(0, int(k))]

    def summary(self, top_k: Optional[int] = None) -> Dict[str, object]:
        """JSON-ready condensation of the sink (see summary module)."""
        from repro.tracing.summary import tracer_summary

        return tracer_summary(self, top_k=top_k)

    def counters(self) -> Dict[str, int]:
        """Conservation counters (started/ended/retained/sampled/evicted)."""
        return {
            "requests_started": self.requests_started,
            "requests_ended": self.requests_ended,
            "requests_retained": self.requests_retained,
            "requests_sampled_out": self.requests_sampled_out,
            "requests_evicted": self.requests_evicted,
            "spans_recorded": self.spans_recorded,
        }


class NullTracer(Tracer):
    """The disabled tracer: every recording method is an allocation-free no-op.

    Instrumentation sites guard with ``if tracer.enabled:`` so these methods
    are rarely even called; they exist so unguarded calls are still safe.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(TracingConfig(enabled=False, sample_every=1))

    def begin_request(self, request_id: int, arrival_us: float) -> int:
        return -1

    def span(
        self,
        request_id: int,
        name: str,
        t_start_us: float,
        t_end_us: float,
        parent_id: Optional[int] = None,
        **attributes: object,
    ) -> int:
        return -1

    def open_span(
        self,
        request_id: int,
        name: str,
        t_start_us: float,
        parent_id: Optional[int] = None,
        **attributes: object,
    ) -> int:
        return -1

    def close_span(
        self, request_id: int, span_id: int, t_end_us: float, **attributes: object
    ) -> None:
        return None

    def end_request(
        self, request_id: int, completion_us: float, degraded: bool = False
    ) -> None:
        return None


#: Shared no-op singleton: attach points default to this, never to ``None``.
NULL_TRACER = NullTracer()


def resolve_tracer(
    tracing: "Optional[TracingConfig | Tracer]",
    slo_latency_us: Optional[float] = None,
) -> Tracer:
    """Normalise a ``tracing`` argument into a tracer instance.

    Accepts an existing :class:`Tracer` (used as-is — tests pass one in to
    inspect raw spans afterwards), a :class:`TracingConfig` (a fresh tracer
    when enabled, :data:`NULL_TRACER` otherwise), or ``None`` (disabled).
    """
    if isinstance(tracing, Tracer):
        return tracing
    if tracing is None or not tracing.enabled:
        return NULL_TRACER
    return Tracer(tracing, slo_latency_us=slo_latency_us)
