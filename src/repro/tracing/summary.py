"""Query and summary API over retained request traces.

Three consumers, three shapes:

* **Tests** call :func:`validate_trace` — the structural invariants every
  trace must satisfy (monotone intervals, children nested inside parents,
  child durations fitting inside the parent's budget) — and the tracer's
  conservation counters.
* **Debugging** calls :func:`critical_path` — the chain of spans that
  actually determined a request's completion time (at each level, the child
  whose end the parent's end equals), which is the answer to "where did
  this request's latency go".
* **Benchmark artifacts** call :func:`tracer_summary` — a JSON-ready
  condensation: per-stage time breakdown over all retained traces and over
  SLO violators only, plus the top-K slowest requests with their critical
  paths.  This is what lands next to the latency percentiles in
  ``BENCH_serving_latency.json`` / ``BENCH_cluster_failures.json``.

Speculative losers — spans carrying
:data:`~repro.tracing.tracer.ATTR_OVERLAP_OK` (a lost hedge, or the primary
attempt a winning hedge beat) — are real work and appear in stage
breakdowns, but are exempt from the nesting and budget invariants and never
sit on a critical path: their completion did not matter to the request.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.tracing.tracer import ATTR_OVERLAP_OK, ATTR_PARALLEL, RequestTrace, Span

if TYPE_CHECKING:
    from repro.tracing.tracer import Tracer

#: Slack for float comparisons between simulated-clock timestamps.
_EPS_US = 1e-6


def _children_by_parent(trace: RequestTrace) -> Dict[int, List[Span]]:
    children: Dict[int, List[Span]] = {}
    for span in trace.spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    return children


def _overlaps(span: Span) -> bool:
    return bool(span.attributes.get(ATTR_OVERLAP_OK))


def critical_path(trace: RequestTrace) -> List[Span]:
    """The root-to-leaf chain of spans that determined the completion time.

    From the root down, follow the child whose end time matches (is latest
    within) the parent's interval; speculative losers are skipped.  The
    returned list starts at the root span.
    """
    children = _children_by_parent(trace)
    path = [trace.root]
    current = trace.root
    while True:
        candidates = [
            child
            for child in children.get(current.span_id, ())
            if not _overlaps(child) and child.t_end_us <= current.t_end_us + _EPS_US
        ]
        if not candidates:
            return path
        current = max(candidates, key=lambda span: (span.t_end_us, span.span_id))
        path.append(current)


def breakdown_by_stage(
    traces: Iterable[RequestTrace],
) -> Dict[str, Dict[str, float]]:
    """Aggregate span time per stage name over ``traces``.

    The root ``"request"`` span is included (its total is the summed
    end-to-end latency, a useful denominator); every stage row carries the
    span count, total/mean/max duration, and its share of that root total.
    Speculative losers are counted — they are real work the cluster did.
    """
    count: Dict[str, int] = {}
    total: Dict[str, float] = {}
    peak: Dict[str, float] = {}
    for trace in traces:
        for span in trace.spans:
            count[span.name] = count.get(span.name, 0) + 1
            total[span.name] = total.get(span.name, 0.0) + span.duration_us
            peak[span.name] = max(peak.get(span.name, 0.0), span.duration_us)
    from repro.tracing.tracer import STAGE_REQUEST

    root_total = total.get(STAGE_REQUEST, 0.0)
    return {
        name: {
            "count": count[name],
            "total_us": total[name],
            "mean_us": total[name] / count[name],
            "max_us": peak[name],
            "share_of_request": (
                total[name] / root_total if root_total > 0 else 0.0
            ),
        }
        for name in sorted(total, key=lambda n: -total[n])
    }


def validate_trace(trace: RequestTrace) -> List[str]:
    """Structural invariant violations of one trace (empty list == valid).

    Checked invariants:

    * exactly one root span, named ``"request"``, spanning
      ``[arrival_us, completion_us]``;
    * every span's interval is monotone (``t_end_us >= t_start_us``);
    * every non-root span's parent exists and belongs to the same request;
    * every child starts within its parent's interval, and ends within it
      too unless flagged :data:`~repro.tracing.tracer.ATTR_OVERLAP_OK`;
    * per-stage conservation: for every span, the summed durations of its
      non-overlapping, non-parallel direct children fit inside the span's
      own duration (sequential stages on the same level tile without double
      counting, so they sum to within the recorded end-to-end latency at
      the root; fan-out siblings carrying
      :data:`~repro.tracing.tracer.ATTR_PARALLEL` run concurrently and are
      bounded by the nesting check instead).
    """
    problems: List[str] = []
    roots = [span for span in trace.spans if span.parent_id is None]
    if len(roots) != 1:
        problems.append(f"expected exactly one root span, found {len(roots)}")
        return problems
    root = roots[0]
    if root is not trace.spans[0]:
        problems.append("root span is not the first recorded span")
    if root.t_start_us != trace.arrival_us or root.t_end_us != trace.completion_us:
        problems.append(
            "root span does not cover [arrival, completion]: "
            f"[{root.t_start_us}, {root.t_end_us}] vs "
            f"[{trace.arrival_us}, {trace.completion_us}]"
        )
    by_id = {span.span_id: span for span in trace.spans}
    for span in trace.spans:
        if span.t_end_us < span.t_start_us - _EPS_US:
            problems.append(
                f"span {span.span_id} ({span.name}) runs backwards: "
                f"[{span.t_start_us}, {span.t_end_us}]"
            )
        if span.request_id != trace.request_id:
            problems.append(
                f"span {span.span_id} belongs to request {span.request_id}, "
                f"not {trace.request_id}"
            )
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"span {span.span_id} ({span.name}) references missing "
                f"parent {span.parent_id}"
            )
            continue
        if span.t_start_us < parent.t_start_us - _EPS_US:
            problems.append(
                f"span {span.span_id} ({span.name}) starts before its "
                f"parent {parent.name}"
            )
        if not _overlaps(span) and span.t_end_us > parent.t_end_us + _EPS_US:
            problems.append(
                f"span {span.span_id} ({span.name}) ends after its parent "
                f"{parent.name} without the overlap flag"
            )
    children = _children_by_parent(trace)
    for span in trace.spans:
        budget = span.duration_us + _EPS_US
        spent = sum(
            child.duration_us
            for child in children.get(span.span_id, ())
            if not _overlaps(child) and not child.attributes.get(ATTR_PARALLEL)
        )
        if spent > budget:
            problems.append(
                f"children of span {span.span_id} ({span.name}) sum to "
                f"{spent:.3f} us, exceeding its {span.duration_us:.3f} us"
            )
    return problems


def _trace_digest(trace: RequestTrace) -> Dict[str, object]:
    """One slow request's JSON row: identity, latency, critical path."""
    stages: Dict[str, float] = {}
    for span in trace.spans:
        if span.parent_id is not None:
            stages[span.name] = stages.get(span.name, 0.0) + span.duration_us
    return {
        "request_id": trace.request_id,
        "arrival_us": trace.arrival_us,
        "latency_us": trace.latency_us,
        "slo_violated": trace.slo_violated,
        "degraded": trace.degraded,
        "stage_totals_us": {
            name: stages[name] for name in sorted(stages, key=lambda n: -stages[n])
        },
        "critical_path": [
            {
                "name": span.name,
                "t_start_us": span.t_start_us,
                "duration_us": span.duration_us,
                "attributes": {
                    key: (list(value) if isinstance(value, tuple) else value)
                    for key, value in span.attributes.items()
                },
            }
            for span in critical_path(trace)
        ],
    }


def tracer_summary(
    tracer: "Tracer", top_k: Optional[int] = None
) -> Dict[str, object]:
    """JSON-ready condensation of a tracer's sink (see module docstring)."""
    k = tracer.config.top_k_slow if top_k is None else int(top_k)
    violators = [t for t in tracer.traces.values() if t.slo_violated]
    return {
        "counters": tracer.counters(),
        "sample_every": tracer.config.sample_every,
        "slo_latency_us": tracer.slo_latency_us,
        "breakdown_by_stage": breakdown_by_stage(tracer.traces.values()),
        "slo_violators_breakdown_by_stage": breakdown_by_stage(violators),
        "top_slow": [_trace_digest(trace) for trace in tracer.slowest_requests(k)],
    }
