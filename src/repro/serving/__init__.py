"""Async batch-serving front-end with NVM-aware latency percentiles.

Why this package exists
-----------------------
Bandana (Eisenman et al., MLSYS 2019) justifies every placement and caching
decision by its effect on NVM read load and on the latency the device
delivers *under that load*: Figure 2 measures the device's latency/bandwidth
curve, and Figure 5 shows application latency spiking as the baseline
policy's wasted block reads push the device towards saturation.  The rest of
this repository measures the first half of that argument (hit rates, block
reads, effective bandwidth); this package measures the second half — the
end-to-end request latency a ranking service would observe — making the
"millions of users" serving scenario quantifiable as p50/p95/p99/p999
latency, sustained throughput and SLO violations.

The event-driven model
----------------------
Everything runs on a **simulated clock** — there are no wall-time sleeps, and
a simulation is a deterministic function of (store, trace, config, seed):

* :mod:`~repro.serving.arrivals` generates an **open-loop** arrival process
  (Poisson, or a two-state MMPP for bursts) over the zipped multi-table
  request stream.  Open-loop means arrivals do not slow down when the store
  falls behind, so saturation appears as growing queueing delay — the
  behaviour Figure 5 is about — rather than as a silently stretched clock.
* :mod:`~repro.serving.batcher` queues requests and forms **dynamic
  batches** under a size cutoff (``max_batch_requests``) and a time cutoff
  (``max_linger_us``); each formed batch is fanned out to the store in one
  ``lookup_batch`` pass per touched table.
* :mod:`~repro.serving.accountant` prices each batch's demand misses on a
  FIFO device clock, feeding the **observed queue depth** and the
  trailing-window **device throughput** back into
  :meth:`repro.nvm.latency.NVMLatencyModel.loaded_latency` — so per-request
  latency reflects the device-load feedback the paper measures, including
  the blow-up past the saturation knee.  The accountant is a thin adapter
  over the shared device layer (:mod:`repro.device`); selecting
  ``ServingConfig.device`` accounting modes other than the default
  ``"legacy"`` puts each table's misses on its own device of an
  :class:`~repro.device.NVMDeviceBank` (``"per-table"``) or pins all tables
  onto ``devices_per_host`` shared devices (``"shared"`` — the paper's
  actual deployment, where co-located tables contend for the same
  hardware).
* A **closed-loop** mode (``arrival_process="closed-loop"``) replaces the
  precomputed arrival array with a fixed client population
  (:class:`~repro.serving.arrivals.ClosedLoopPopulation`) whose next
  arrivals depend on completions, and **single-host admission control**
  (``ServingConfig.admission_queue_slack``) sheds requests whose tables'
  device backlog exceeds ``slack ×`` the table SLO — both measured in the
  same report (``requests_shed`` / ``shed_rate`` / ``device_bank``).
* :mod:`~repro.serving.report` condenses the run into a
  :class:`~repro.serving.report.ServingReport` (latency percentiles,
  throughput, batch-size and queue-depth histograms, SLO violations, and a
  closed-form Figure-5 cross-check via ``application_latency``).

Entry point: :func:`~repro.serving.frontend.simulate_serving`, also exported
as :func:`repro.simulation.simulate_serving` next to ``simulate_store``.  The
knobs live in :class:`repro.core.config.ServingConfig`, reachable as
``BandanaConfig.serving``.  ``benchmarks/bench_serving_latency.py`` sweeps
arrival rates up to device saturation, batched vs unbatched.

Tracing
-------
Pass ``tracing=TracingConfig(enabled=True)`` (or set
``BandanaConfig.tracing``) and every request's latency decomposes into
spans on the same simulated clock — ``batcher.queue`` (arrival → batch
dispatch: queue wait plus linger), ``device.queue`` (dispatch → device
start, the FIFO backlog), ``device.service`` (the batch's NVM reads) and
``overhead`` — which tile the end-to-end latency *exactly*.  The report
then carries a JSON summary (per-stage breakdown, top-K slowest requests
with critical paths) in ``ServingReport.trace``; see :mod:`repro.tracing`
for the query API and a worked "why did p999 regress" example.  A disabled
tracer (the default) is a no-op singleton behind one branch per site —
behavior is bit-identical either way.
"""

from repro.core.config import DeviceBankConfig, ServingConfig
from repro.device import NVMDeviceBank
from repro.serving.accountant import BatchServiceRecord, DeviceLatencyAccountant
from repro.serving.arrivals import (
    ClosedLoopPopulation,
    arrival_times,
    mmpp_arrival_times,
    poisson_arrival_times,
)
from repro.serving.batcher import Batch, form_batches
from repro.serving.frontend import simulate_serving
from repro.serving.report import (
    LatencySummary,
    ServingReport,
    depth_histogram,
)

__all__ = [
    "DeviceBankConfig",
    "NVMDeviceBank",
    "ServingConfig",
    "BatchServiceRecord",
    "DeviceLatencyAccountant",
    "ClosedLoopPopulation",
    "arrival_times",
    "mmpp_arrival_times",
    "poisson_arrival_times",
    "Batch",
    "form_batches",
    "simulate_serving",
    "LatencySummary",
    "ServingReport",
    "depth_histogram",
]
