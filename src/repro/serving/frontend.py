"""The event-driven serving front-end: arrivals → batcher → store → latency.

:func:`simulate_serving` is the serving-side sibling of
:func:`repro.simulation.simulate_store`: instead of replaying a trace as fast
as Python allows and reporting counters, it replays the *same* request stream
on a simulated clock under an arrival process and reports what a user would
see — end-to-end latency percentiles, sustained throughput and SLO
violations — with the device's load-feedback latency (paper Figure 5)
closing the loop.

One simulation step per dispatched batch:

1. the dynamic batcher (:mod:`repro.serving.batcher`) fixes the batch's
   membership and dispatch time — from the arrival process alone under the
   open-loop processes, or interleaved with completions under closed-loop
   arrivals (a client's next request exists only after its previous response),
2. admission control (when ``admission_queue_slack`` is set) sheds requests
   whose tables' device backlog already exceeds ``slack ×`` the table's SLO —
   a fast rejection that does no cache or device work, mirroring the cluster
   tier's queue-level shedding,
3. the batch's surviving requests are fanned out through the store and the
   store's miss counters yield the batch's NVM block reads,
4. those reads are charged on the shared device layer (:mod:`repro.device`):
   the default ``"legacy"`` accounting keeps the original single-clock
   accountant (bit-identical to the golden pins), while ``"per-table"`` /
   ``"shared"`` accounting put each table's misses on its own device of a
   :class:`~repro.device.NVMDeviceBank` — ``devices_per_host`` physical
   devices behind all tables, the paper's actual single-host deployment,
5. every request in the batch completes together; its latency is
   ``completion − arrival + request_overhead_us``.

The cache counters the store accumulates are bit-identical to a plain
:func:`~repro.simulation.simulate_store` replay of the same requests — the
front-end only re-times (and under shedding, skips) the exact same work.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.bandana import BandanaStore
from repro.core.config import ServingConfig, TracingConfig
from repro.device.bank import NVMDeviceBank
from repro.device.clock import DeviceServiceRecord
from repro.nvm.latency import NVMLatencyModel
from repro.serving.accountant import DeviceLatencyAccountant
from repro.serving.arrivals import ClosedLoopPopulation, arrival_times
from repro.serving.batcher import Batch, form_batches
from repro.serving.report import LatencySummary, ServingReport, depth_histogram
from repro.tracing.tracer import (
    NULL_TRACER,
    STAGE_BATCH_QUEUE,
    STAGE_OVERHEAD,
    STAGE_REQUEST_SHED,
    Tracer,
    resolve_tracer,
)
from repro.utils.rng import ensure_rng
from repro.workloads.trace import ModelTrace

if TYPE_CHECKING:  # repro.cluster imports this package; import only for types
    from repro.cluster.store import ClusterStore


def simulate_serving(
    store: BandanaStore,
    eval_trace: ModelTrace,
    config: Optional[ServingConfig] = None,
    num_requests: Optional[int] = None,
    reset_first: bool = True,
    latency_model: Optional[NVMLatencyModel] = None,
    cluster: Optional["ClusterStore"] = None,
    tracing: Optional["TracingConfig | Tracer"] = None,
) -> ServingReport:
    """Serve a model trace through a store under a simulated arrival process.

    Parameters
    ----------
    store:
        A built :class:`~repro.core.bandana.BandanaStore`.
    eval_trace:
        Per-table queries, zipped into multi-table requests exactly like
        :func:`repro.simulation.interleaved.iter_store_requests` (request
        ``i`` reads every table's ``i``-th query).
    config:
        Serving knobs; defaults to ``store.config.serving``.  Beyond the
        arrival/batching knobs this selects the device accounting mode
        (``config.device``: legacy single clock, per-table devices, or a
        shared ``devices_per_host`` bank) and single-host admission control
        (``config.admission_queue_slack``).
    num_requests:
        Optional cap on the number of requests served (the default serves
        the whole zipped stream).
    reset_first:
        Clear the store's serving state first so runs start cold and are
        reproducible, like the paper's experiments.
    latency_model:
        Latency model of the serving tier's NVM device; defaults to the
        paper-calibrated :class:`~repro.nvm.latency.NVMLatencyModel` at the
        store's block size.
    cluster:
        Optional :class:`~repro.cluster.store.ClusterStore` to route through
        instead of the single-host store.  Requests still arrive and batch
        exactly as before, but each one is served by the cluster's
        fan-out/fan-in path at its batch's dispatch time — so the reported
        p999 reflects fan-in stragglers, retries and hedges, and the
        cluster's ``request_overhead_us`` replaces the front-end's (no
        double counting).  ``store`` then only supplies defaults/seed.
        Requires an open-loop arrival process (the cluster's own nodes are
        the closed side of that model).
    tracing:
        Per-request span tracing (:mod:`repro.tracing`): a
        :class:`~repro.core.config.TracingConfig` builds a fresh tracer
        (when enabled), an existing :class:`~repro.tracing.Tracer` is used
        as-is (tests pass one in to inspect raw spans), ``None`` defaults
        to ``store.config.tracing`` — disabled by default.  When enabled,
        every request's latency decomposes into ``batcher.queue`` →
        ``device.queue`` → ``device.service`` → ``overhead`` spans (or the
        cluster's fan-out span tree; shed requests record a
        ``request.shed`` marker instead of device spans) and the report
        carries the tracer's JSON summary in ``report.trace``.  Tracing
        never changes behavior.
    """
    # Imported here: repro.simulation imports this package at init time, so
    # a module-level import would be circular (same pattern as bandana.py).
    from repro.simulation.interleaved import iter_store_requests

    config = config or store.config.serving
    if config.arrival_process == "closed-loop" and cluster is not None:
        raise ValueError(
            "closed-loop arrivals are single-host only; the cluster path "
            "requires an open-loop arrival process"
        )
    tracer = resolve_tracer(
        tracing if tracing is not None else store.config.tracing,
        slo_latency_us=config.slo_latency_us,
    )
    if reset_first:
        if cluster is not None:
            cluster.reset_serving_state()
        else:
            store.reset_serving_state()
    requests = list(iter_store_requests(eval_trace))
    if num_requests is not None:
        requests = requests[: int(num_requests)]
    n = len(requests)

    seed = store.config.seed if config.seed is None else config.seed
    if config.arrival_process == "closed-loop":
        model = latency_model or NVMLatencyModel(block_bytes=store.config.block_bytes)
        return _simulate_closed_loop(store, requests, config, model, tracer, seed)

    arrival_us = arrival_times(config, n, seed=seed) * 1e6
    batches = form_batches(arrival_us, config.max_batch_requests, config.max_linger_us)
    if cluster is not None:
        return _simulate_cluster_serving(
            cluster, requests, arrival_us, batches, config, tracer
        )

    model = latency_model or NVMLatencyModel(block_bytes=store.config.block_bytes)
    if config.device.accounting != "legacy":
        return _simulate_bank_serving(
            store, requests, arrival_us, batches, config, model, tracer
        )

    accountant = DeviceLatencyAccountant(
        model,
        block_bytes=store.config.block_bytes,
        max_queue_depth=config.max_device_queue_depth,
        throughput_window_s=config.throughput_window_s,
    )

    states = list(store.tables.values())
    stats_before = store.aggregate_stats()
    misses_before = sum(state.stats.misses for state in states)

    shed_slack = config.admission_queue_slack
    requests_shed = 0
    latencies = np.empty(n, dtype=np.float64)
    batch_sizes = np.empty(len(batches), dtype=np.int64)
    last_completion_us = 0.0
    for b, batch in enumerate(batches):
        # Admission control (off by default): the device backlog at dispatch
        # is the same for every request of the batch on the single legacy
        # clock; only per-table SLO overrides differentiate requests.
        served: Optional[List[int]] = None
        if shed_slack is not None:
            wait_us = accountant.queue_wait_us(batch.dispatch_us)
            served = []
            for i in range(batch.start, batch.stop):
                if any(
                    wait_us > shed_slack * config.slo_us(name)
                    for name in requests[i]
                ):
                    requests_shed += 1
                    latencies[i] = (
                        batch.dispatch_us
                        - arrival_us[i]
                        + config.request_overhead_us
                    )
                    _emit_shed_spans(
                        tracer,
                        i,
                        float(arrival_us[i]),
                        b,
                        batch.size,
                        batch.dispatch_us,
                        config.request_overhead_us,
                        wait_us,
                    )
                else:
                    served.append(i)
        # gather=False: the simulator measures load and latency, not data —
        # embedding gathers would cost per-lookup work whose result is unused.
        if served is None:
            if batch.size == 1:
                store.lookup_request(requests[batch.start], gather=False)
            else:
                per_table: Dict[str, List[np.ndarray]] = {}
                for request in requests[batch.start : batch.stop]:
                    for name, ids in request.items():
                        per_table.setdefault(name, []).append(ids)
                for name, queries in per_table.items():
                    store.lookup_batch(name, queries, gather=False)
        elif served:
            if len(served) == 1:
                store.lookup_request(requests[served[0]], gather=False)
            else:
                per_table = {}
                for i in served:
                    for name, ids in requests[i].items():
                        per_table.setdefault(name, []).append(ids)
                for name, queries in per_table.items():
                    store.lookup_batch(name, queries, gather=False)
        misses_after = sum(state.stats.misses for state in states)
        record = accountant.serve_batch(batch.dispatch_us, misses_after - misses_before)
        misses_before = misses_after
        if served is None:
            latencies[batch.start : batch.stop] = (
                record.completion_us
                - arrival_us[batch.start : batch.stop]
                + config.request_overhead_us
            )
        else:
            for i in served:
                latencies[i] = (
                    record.completion_us
                    - arrival_us[i]
                    + config.request_overhead_us
                )
        batch_sizes[b] = batch.size
        last_completion_us = max(last_completion_us, record.completion_us)
        if tracer.enabled:
            # Retrospective spans: the batch's timeline is fully known, and
            # the four stages tile the request's latency exactly —
            # batcher.queue + device.queue + device.service + overhead ==
            # completion - arrival + request_overhead_us.
            for i in range(batch.start, batch.stop) if served is None else served:
                _emit_request_spans(
                    tracer,
                    i,
                    float(arrival_us[i]),
                    b,
                    batch.size,
                    batch.dispatch_us,
                    [record],
                    record.completion_us,
                    config.request_overhead_us,
                )

    stats_after = store.aggregate_stats()
    lookups = stats_after.lookups - stats_before.lookups
    hits = stats_after.hits - stats_before.hits
    blocks_read = stats_after.misses - stats_before.misses

    return _assemble_report(
        store=store,
        model=model,
        config=config,
        n=n,
        num_batches=len(batches),
        offered_rate_rps=config.arrival_rate_rps,
        latencies=latencies,
        batch_sizes=batch_sizes,
        first_arrival_us=float(arrival_us[0]) if n else 0.0,
        last_completion_us=last_completion_us,
        records=accountant.records,
        lookups=int(lookups),
        hits=int(hits),
        blocks_read=int(blocks_read),
        requests_shed=requests_shed,
        device_bank=None,
        tracer=tracer,
    )


# --------------------------------------------------------------- bank serving
def _simulate_bank_serving(
    store: BandanaStore,
    requests: List[Dict[str, np.ndarray]],
    arrival_us: np.ndarray,
    batches: List[Batch],
    config: ServingConfig,
    model: NVMLatencyModel,
    tracer: Tracer,
) -> ServingReport:
    """Open-loop serving on a shared device bank (see ``simulate_serving``).

    ``"per-table"`` accounting gives every table a private device (the old
    per-table story made explicit); ``"shared"`` pins all tables onto
    ``devices_per_host`` devices round-robin, so co-located tables genuinely
    queue behind each other — the cross-table contention the legacy single
    charge-everything clock can only approximate and per-table accounting
    cannot produce at all.
    """
    bank = _build_bank(store, config, model)
    stats_before = store.aggregate_stats()
    n = len(requests)
    requests_shed = 0
    latencies = np.empty(n, dtype=np.float64)
    batch_sizes = np.empty(len(batches), dtype=np.int64)
    last_completion_us = 0.0
    for b, batch in enumerate(batches):
        members = list(range(batch.start, batch.stop))
        served, shed = _split_shed(bank, requests, members, batch.dispatch_us, config)
        requests_shed += len(shed)
        for i in shed:
            latencies[i] = (
                batch.dispatch_us - arrival_us[i] + config.request_overhead_us
            )
            _emit_shed_spans(
                tracer,
                i,
                float(arrival_us[i]),
                b,
                batch.size,
                batch.dispatch_us,
                config.request_overhead_us,
                bank.queue_wait_us(batch.dispatch_us),
            )
        completion_us, records = _lookup_and_charge(
            store, requests, served, batch.dispatch_us, bank, split_tables=True
        )
        for i in served:
            latencies[i] = completion_us - arrival_us[i] + config.request_overhead_us
        batch_sizes[b] = batch.size
        last_completion_us = max(last_completion_us, completion_us)
        if tracer.enabled:
            for i in served:
                _emit_request_spans(
                    tracer,
                    i,
                    float(arrival_us[i]),
                    b,
                    batch.size,
                    batch.dispatch_us,
                    records,
                    completion_us,
                    config.request_overhead_us,
                )

    stats_after = store.aggregate_stats()
    return _assemble_report(
        store=store,
        model=model,
        config=config,
        n=n,
        num_batches=len(batches),
        offered_rate_rps=config.arrival_rate_rps,
        latencies=latencies,
        batch_sizes=batch_sizes,
        first_arrival_us=float(arrival_us[0]) if n else 0.0,
        last_completion_us=last_completion_us,
        records=bank.records(),
        lookups=int(stats_after.lookups - stats_before.lookups),
        hits=int(stats_after.hits - stats_before.hits),
        blocks_read=int(stats_after.misses - stats_before.misses),
        requests_shed=requests_shed,
        device_bank=bank.snapshot(),
        tracer=tracer,
    )


# --------------------------------------------------------------- closed loop
def _simulate_closed_loop(
    store: BandanaStore,
    requests: List[Dict[str, np.ndarray]],
    config: ServingConfig,
    model: NVMLatencyModel,
    tracer: Tracer,
    seed: Optional[int],
) -> ServingReport:
    """Closed-loop serving: a fixed client population with think times.

    Arrivals depend on completions, so batch formation is interleaved with
    serving: a pending-arrivals heap seeds each batch, the batch fills under
    the same size/linger cutoffs as the open-loop batcher, and every served
    (or shed) request schedules its client's next arrival one think time
    after the response.  At most ``closed_loop_clients`` requests are in
    flight at any simulated instant, by construction.

    Device accounting follows ``config.device`` exactly like the open-loop
    path; ``"legacy"`` charges each batch's total misses to a single
    1-device bank (the same arithmetic as the legacy accountant).
    """
    n = len(requests)
    population = ClosedLoopPopulation(
        config.closed_loop_clients, config.closed_loop_think_s, ensure_rng(seed)
    )
    bank = _build_bank(store, config, model)
    split_tables = config.device.accounting != "legacy"
    stats_before = store.aggregate_stats()

    pending: List[float] = []
    issued = 0
    for _ in range(min(population.num_clients, n)):
        heapq.heappush(pending, population.initial_arrival_us())
        issued += 1

    arrival_list = np.empty(n, dtype=np.float64)
    latencies = np.empty(n, dtype=np.float64)
    batch_sizes: List[int] = []
    requests_shed = 0
    last_completion_us = 0.0
    next_index = 0
    while next_index < n:
        seed_arrival_us = heapq.heappop(pending)
        deadline_us = seed_arrival_us + config.max_linger_us
        member_arrivals = [seed_arrival_us]
        while (
            len(member_arrivals) < config.max_batch_requests
            and pending
            and pending[0] <= deadline_us
        ):
            member_arrivals.append(heapq.heappop(pending))
        if len(member_arrivals) == config.max_batch_requests:
            dispatch_us = member_arrivals[-1]
        else:
            dispatch_us = deadline_us
        start = next_index
        members = list(range(start, start + len(member_arrivals)))
        next_index = start + len(member_arrivals)
        for i, arrival in zip(members, member_arrivals):
            arrival_list[i] = arrival
        b = len(batch_sizes)
        batch_sizes.append(len(members))

        served, shed = _split_shed(bank, requests, members, dispatch_us, config)
        requests_shed += len(shed)
        completion_us, records = _lookup_and_charge(
            store, requests, served, dispatch_us, bank, split_tables=split_tables
        )
        last_completion_us = max(last_completion_us, completion_us)
        responses: List[Tuple[int, float]] = []
        for i in shed:
            response_us = dispatch_us + config.request_overhead_us
            latencies[i] = response_us - arrival_list[i]
            responses.append((i, response_us))
            _emit_shed_spans(
                tracer,
                i,
                float(arrival_list[i]),
                b,
                len(members),
                dispatch_us,
                config.request_overhead_us,
                bank.queue_wait_us(dispatch_us),
            )
        for i in served:
            response_us = completion_us + config.request_overhead_us
            latencies[i] = response_us - arrival_list[i]
            responses.append((i, response_us))
            if tracer.enabled:
                _emit_request_spans(
                    tracer,
                    i,
                    float(arrival_list[i]),
                    b,
                    len(members),
                    dispatch_us,
                    records,
                    completion_us,
                    config.request_overhead_us,
                )
        # Closed loop: each member's client thinks, then issues the next
        # request — the feedback that caps concurrency at the population.
        for _, response_us in responses:
            if issued < n:
                heapq.heappush(pending, population.next_arrival_us(response_us))
                issued += 1

    stats_after = store.aggregate_stats()
    return _assemble_report(
        store=store,
        model=model,
        config=config,
        n=n,
        num_batches=len(batch_sizes),
        offered_rate_rps=population.nominal_rate_rps,
        latencies=latencies,
        batch_sizes=np.asarray(batch_sizes, dtype=np.int64),
        first_arrival_us=float(arrival_list[0]) if n else 0.0,
        last_completion_us=last_completion_us,
        records=bank.records(),
        lookups=int(stats_after.lookups - stats_before.lookups),
        hits=int(stats_after.hits - stats_before.hits),
        blocks_read=int(stats_after.misses - stats_before.misses),
        requests_shed=requests_shed,
        device_bank=bank.snapshot(),
        tracer=tracer,
    )


# ------------------------------------------------------------------- helpers
def _build_bank(
    store: BandanaStore, config: ServingConfig, model: NVMLatencyModel
) -> NVMDeviceBank:
    """The host's device bank under ``config.device`` (see DeviceBankConfig)."""
    table_names = list(store.tables)
    if config.device.accounting == "per-table":
        num_devices = max(1, len(table_names))
    elif config.device.accounting == "shared":
        num_devices = config.device.devices_per_host
    else:  # "legacy": one clock, whole-batch charging (closed-loop path).
        num_devices = 1
    return NVMDeviceBank(
        num_devices=num_devices,
        latency_model=model,
        block_bytes=store.config.block_bytes,
        max_queue_depth=config.max_device_queue_depth,
        throughput_window_s=config.throughput_window_s,
        tables=table_names,
    )


def _split_shed(
    bank: NVMDeviceBank,
    requests: List[Dict[str, np.ndarray]],
    members: List[int],
    dispatch_us: float,
    config: ServingConfig,
) -> Tuple[List[int], List[int]]:
    """Partition a batch's members into (served, shed) at dispatch time.

    A request is shed when *any* of its tables' device backlog exceeds
    ``admission_queue_slack ×`` that table's SLO — the single-host port of
    the cluster's queue-level admission check (there per shard read, here
    per request: a single host has no other replica to serve the rest).
    """
    slack = config.admission_queue_slack
    if slack is None:
        return members, []
    served: List[int] = []
    shed: List[int] = []
    for i in members:
        if any(
            bank.queue_wait_us(dispatch_us, name) > slack * config.slo_us(name)
            for name in requests[i]
        ):
            shed.append(i)
        else:
            served.append(i)
    return served, shed


def _lookup_and_charge(
    store: BandanaStore,
    requests: List[Dict[str, np.ndarray]],
    served: List[int],
    dispatch_us: float,
    bank: NVMDeviceBank,
    split_tables: bool,
) -> Tuple[float, List[DeviceServiceRecord]]:
    """Fan a batch out through the store and charge its misses on the bank.

    ``split_tables=True`` charges each table's miss delta to that table's
    device (the batch completes at the max over its per-device records —
    per-table reads overlap across devices, serialise within one);
    ``False`` charges the batch's total misses to device 0, reproducing the
    legacy whole-batch accounting on bank plumbing.
    """
    per_table: Dict[str, List[np.ndarray]] = {}
    for i in served:
        for name, ids in requests[i].items():
            per_table.setdefault(name, []).append(ids)
    records: List[DeviceServiceRecord] = []
    completion_us = dispatch_us
    if split_tables:
        for name, queries in per_table.items():
            misses_before = store.tables[name].stats.misses
            store.lookup_batch(name, queries, gather=False)
            delta = store.tables[name].stats.misses - misses_before
            records.append(bank.serve_blocks(name, dispatch_us, delta))
    elif per_table:
        misses_before = sum(state.stats.misses for state in store.tables.values())
        for name, queries in per_table.items():
            store.lookup_batch(name, queries, gather=False)
        delta = (
            sum(state.stats.misses for state in store.tables.values())
            - misses_before
        )
        records.append(bank.devices[0].serve_blocks(dispatch_us, delta))
    for record in records:
        completion_us = max(completion_us, record.completion_us)
    return completion_us, records


def _emit_request_spans(
    tracer: Tracer,
    request_id: int,
    arrival_us: float,
    batch_index: int,
    batch_size: int,
    dispatch_us: float,
    records: List[DeviceServiceRecord],
    completion_us: float,
    overhead_us: float,
) -> None:
    """One served request's span tree (single-host paths).

    ``batcher.queue`` → per-device ``device.queue``/``device.service``
    (emitted by the shared device layer; parallel siblings when the batch
    charged several devices) → ``overhead``.  With a single charged device
    the four stages tile the latency exactly.
    """
    if not tracer.enabled:
        return
    tracer.begin_request(request_id, arrival_us)
    tracer.span(
        request_id,
        STAGE_BATCH_QUEUE,
        arrival_us,
        dispatch_us,
        batch=batch_index,
        batch_size=batch_size,
    )
    parallel = len(records) > 1
    for record in records:
        NVMDeviceBank.emit_device_spans(
            tracer, request_id, record, parallel=parallel
        )
    tracer.span(
        request_id,
        STAGE_OVERHEAD,
        completion_us,
        completion_us + overhead_us,
    )
    tracer.end_request(request_id, completion_us + overhead_us)


def _emit_shed_spans(
    tracer: Tracer,
    request_id: int,
    arrival_us: float,
    batch_index: int,
    batch_size: int,
    dispatch_us: float,
    overhead_us: float,
    queue_wait_us: float,
) -> None:
    """A shed request's span tree: batcher wait, shed marker, overhead."""
    if not tracer.enabled:
        return
    tracer.begin_request(request_id, arrival_us)
    tracer.span(
        request_id,
        STAGE_BATCH_QUEUE,
        arrival_us,
        dispatch_us,
        batch=batch_index,
        batch_size=batch_size,
    )
    tracer.span(
        request_id,
        STAGE_REQUEST_SHED,
        dispatch_us,
        dispatch_us,
        queue_wait_us=queue_wait_us,
    )
    tracer.span(
        request_id, STAGE_OVERHEAD, dispatch_us, dispatch_us + overhead_us
    )
    tracer.end_request(request_id, dispatch_us + overhead_us, degraded=True)


def _assemble_report(
    store: BandanaStore,
    model: NVMLatencyModel,
    config: ServingConfig,
    n: int,
    num_batches: int,
    offered_rate_rps: float,
    latencies: np.ndarray,
    batch_sizes: np.ndarray,
    first_arrival_us: float,
    last_completion_us: float,
    records: List[DeviceServiceRecord],
    lookups: int,
    hits: int,
    blocks_read: int,
    requests_shed: int,
    device_bank: Optional[Dict[str, object]],
    tracer: Tracer,
) -> ServingReport:
    """Condense one single-host run into a :class:`ServingReport`."""
    app_bytes = lookups * store.config.vector_bytes
    nvm_bytes = blocks_read * store.config.block_bytes
    makespan_us = last_completion_us - first_arrival_us if n else 0.0
    makespan_s = makespan_us / 1e6
    depths = np.array([r.queue_depth for r in records], dtype=np.float64)
    mbps = np.array([r.device_mbps for r in records], dtype=np.float64)

    steady_state = None
    if nvm_bytes > 0 and makespan_us > 0:
        steady_state = model.application_latency(
            app_bytes / makespan_us,  # bytes/µs == MB/s
            min(1.0, app_bytes / nvm_bytes),
            queue_depth=store.config.queue_depth,
        )

    return ServingReport(
        num_requests=n,
        num_batches=num_batches,
        offered_rate_rps=offered_rate_rps,
        throughput_rps=n / makespan_s if makespan_s > 0 else 0.0,
        makespan_s=makespan_s,
        latency=LatencySummary.from_samples(latencies),
        slo_latency_us=config.slo_latency_us,
        slo_violations=int(np.count_nonzero(latencies > config.slo_latency_us)),
        mean_batch_size=float(batch_sizes.mean()) if num_batches else 0.0,
        batch_size_hist={
            int(size): int(count)
            for size, count in zip(*np.unique(batch_sizes, return_counts=True))
        },
        mean_queue_depth=float(depths.mean()) if depths.size else 0.0,
        max_queue_depth=float(depths.max()) if depths.size else 0.0,
        queue_depth_hist=depth_histogram(depths),
        blocks_read=blocks_read,
        device_mbps_mean=float(mbps.mean()) if mbps.size else 0.0,
        device_mbps_peak=float(mbps.max()) if mbps.size else 0.0,
        lookups=lookups,
        hit_rate=hits / lookups if lookups else 0.0,
        requests_shed=requests_shed,
        device_bank=device_bank,
        steady_state=steady_state,
        trace=tracer.summary() if tracer.enabled else None,
    )


def _simulate_cluster_serving(
    cluster: "ClusterStore",
    requests: List[Dict[str, np.ndarray]],
    arrival_us: np.ndarray,
    batches: List[Batch],
    config: ServingConfig,
    tracer: Tracer = NULL_TRACER,
) -> ServingReport:
    """The cluster-routed serving path (see ``simulate_serving``'s ``cluster``).

    The batcher still gates dispatch (requests wait out the linger window),
    but timing inside the store is the cluster's: per-shard queueing on each
    node's device bank, retries, hedges and fan-in.  Device-accountant
    metrics (queue-depth histogram, steady-state cross-check) do not apply —
    each cluster node owns its devices — and are reported empty.  Tracing is
    the cluster's too: the tracer rides along on the store
    (:meth:`~repro.cluster.store.ClusterStore.set_tracer`), which roots each
    request at its *true* arrival and records the batcher wait plus the full
    fan-out span tree.
    """
    n = len(requests)
    stats_before = cluster.aggregate_stats()
    latencies = np.empty(n, dtype=np.float64)
    batch_sizes = np.empty(len(batches), dtype=np.int64)
    last_completion_us = 0.0
    cluster.set_tracer(tracer)
    try:
        for b, batch in enumerate(batches):
            for i in range(batch.start, batch.stop):
                outcome = cluster.serve_request(
                    requests[i],
                    now_us=float(batch.dispatch_us),
                    arrival_us=float(arrival_us[i]),
                )
                latencies[i] = outcome.completion_us - arrival_us[i]
                last_completion_us = max(last_completion_us, outcome.completion_us)
            batch_sizes[b] = batch.size
    finally:
        cluster.set_tracer(None)
    stats_after = cluster.aggregate_stats()
    lookups = stats_after.lookups - stats_before.lookups
    hits = stats_after.hits - stats_before.hits
    blocks_read = stats_after.misses - stats_before.misses
    makespan_us = last_completion_us - (float(arrival_us[0]) if n else 0.0)
    makespan_s = makespan_us / 1e6
    return ServingReport(
        num_requests=n,
        num_batches=len(batches),
        offered_rate_rps=config.arrival_rate_rps,
        throughput_rps=n / makespan_s if makespan_s > 0 else 0.0,
        makespan_s=makespan_s,
        latency=LatencySummary.from_samples(latencies),
        slo_latency_us=config.slo_latency_us,
        slo_violations=int(np.count_nonzero(latencies > config.slo_latency_us)),
        mean_batch_size=float(batch_sizes.mean()) if len(batches) else 0.0,
        batch_size_hist={
            int(size): int(count)
            for size, count in zip(*np.unique(batch_sizes, return_counts=True))
        },
        blocks_read=int(blocks_read),
        lookups=int(lookups),
        hit_rate=hits / lookups if lookups else 0.0,
        trace=tracer.summary() if tracer.enabled else None,
    )
