"""The event-driven serving front-end: arrivals → batcher → store → latency.

:func:`simulate_serving` is the serving-side sibling of
:func:`repro.simulation.simulate_store`: instead of replaying a trace as fast
as Python allows and reporting counters, it replays the *same* request stream
on a simulated clock under an open-loop arrival process and reports what a
user would see — end-to-end latency percentiles, sustained throughput and SLO
violations — with the device's load-feedback latency (paper Figure 5) closing
the loop.

One simulation step per dispatched batch:

1. the dynamic batcher (:mod:`repro.serving.batcher`) fixes the batch's
   membership and dispatch time from the arrival process alone,
2. the batch's requests are fanned out through the store — one
   :meth:`~repro.core.bandana.BandanaStore.lookup_batch` per touched table
   (or one :meth:`~repro.core.bandana.BandanaStore.lookup_request` for
   unbatched serving) — and the store's miss counters yield the batch's NVM
   block reads,
3. the latency accountant (:mod:`repro.serving.accountant`) prices those
   reads under the currently observed device queue depth and throughput and
   schedules the batch's completion on the FIFO device clock,
4. every request in the batch completes together; its latency is
   ``completion − arrival + request_overhead_us``.

The cache counters the store accumulates are bit-identical to a plain
:func:`~repro.simulation.simulate_store` replay of the same requests — the
front-end only re-times the exact same work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.core.bandana import BandanaStore
from repro.core.config import ServingConfig, TracingConfig
from repro.nvm.latency import NVMLatencyModel
from repro.serving.accountant import DeviceLatencyAccountant
from repro.serving.arrivals import arrival_times
from repro.serving.batcher import Batch, form_batches
from repro.serving.report import LatencySummary, ServingReport, depth_histogram
from repro.tracing.tracer import (
    NULL_TRACER,
    STAGE_BATCH_QUEUE,
    STAGE_DEVICE_QUEUE,
    STAGE_DEVICE_SERVICE,
    STAGE_OVERHEAD,
    Tracer,
    resolve_tracer,
)
from repro.workloads.trace import ModelTrace

if TYPE_CHECKING:  # repro.cluster imports this package; import only for types
    from repro.cluster.store import ClusterStore


def simulate_serving(
    store: BandanaStore,
    eval_trace: ModelTrace,
    config: Optional[ServingConfig] = None,
    num_requests: Optional[int] = None,
    reset_first: bool = True,
    latency_model: Optional[NVMLatencyModel] = None,
    cluster: Optional["ClusterStore"] = None,
    tracing: Optional["TracingConfig | Tracer"] = None,
) -> ServingReport:
    """Serve a model trace through a store under an open-loop arrival process.

    Parameters
    ----------
    store:
        A built :class:`~repro.core.bandana.BandanaStore`.
    eval_trace:
        Per-table queries, zipped into multi-table requests exactly like
        :func:`repro.simulation.interleaved.iter_store_requests` (request
        ``i`` reads every table's ``i``-th query).
    config:
        Serving knobs; defaults to ``store.config.serving``.
    num_requests:
        Optional cap on the number of requests served (the default serves
        the whole zipped stream).
    reset_first:
        Clear the store's serving state first so runs start cold and are
        reproducible, like the paper's experiments.
    latency_model:
        Latency model of the serving tier's NVM device; defaults to the
        paper-calibrated :class:`~repro.nvm.latency.NVMLatencyModel` at the
        store's block size.
    cluster:
        Optional :class:`~repro.cluster.store.ClusterStore` to route through
        instead of the single-host store.  Requests still arrive and batch
        exactly as before, but each one is served by the cluster's
        fan-out/fan-in path at its batch's dispatch time — so the reported
        p999 reflects fan-in stragglers, retries and hedges, and the
        cluster's ``request_overhead_us`` replaces the front-end's (no
        double counting).  ``store`` then only supplies defaults/seed.
    tracing:
        Per-request span tracing (:mod:`repro.tracing`): a
        :class:`~repro.core.config.TracingConfig` builds a fresh tracer
        (when enabled), an existing :class:`~repro.tracing.Tracer` is used
        as-is (tests pass one in to inspect raw spans), ``None`` defaults
        to ``store.config.tracing`` — disabled by default.  When enabled,
        every request's latency decomposes into ``batcher.queue`` →
        ``device.queue`` → ``device.service`` → ``overhead`` spans (or the
        cluster's fan-out span tree) and the report carries the tracer's
        JSON summary in ``report.trace``.  Tracing never changes behavior.
    """
    # Imported here: repro.simulation imports this package at init time, so
    # a module-level import would be circular (same pattern as bandana.py).
    from repro.simulation.interleaved import iter_store_requests

    config = config or store.config.serving
    tracer = resolve_tracer(
        tracing if tracing is not None else store.config.tracing,
        slo_latency_us=config.slo_latency_us,
    )
    if reset_first:
        if cluster is not None:
            cluster.reset_serving_state()
        else:
            store.reset_serving_state()
    requests = list(iter_store_requests(eval_trace))
    if num_requests is not None:
        requests = requests[: int(num_requests)]
    n = len(requests)

    seed = store.config.seed if config.seed is None else config.seed
    arrival_us = arrival_times(config, n, seed=seed) * 1e6
    batches = form_batches(arrival_us, config.max_batch_requests, config.max_linger_us)
    if cluster is not None:
        return _simulate_cluster_serving(
            cluster, requests, arrival_us, batches, config, tracer
        )

    model = latency_model or NVMLatencyModel(block_bytes=store.config.block_bytes)
    accountant = DeviceLatencyAccountant(
        model,
        block_bytes=store.config.block_bytes,
        max_queue_depth=config.max_device_queue_depth,
        throughput_window_s=config.throughput_window_s,
    )

    states = list(store.tables.values())
    stats_before = store.aggregate_stats()
    misses_before = sum(state.stats.misses for state in states)

    latencies = np.empty(n, dtype=np.float64)
    batch_sizes = np.empty(len(batches), dtype=np.int64)
    last_completion_us = 0.0
    for b, batch in enumerate(batches):
        # gather=False: the simulator measures load and latency, not data —
        # embedding gathers would cost per-lookup work whose result is unused.
        if batch.size == 1:
            store.lookup_request(requests[batch.start], gather=False)
        else:
            per_table: Dict[str, List[np.ndarray]] = {}
            for request in requests[batch.start : batch.stop]:
                for name, ids in request.items():
                    per_table.setdefault(name, []).append(ids)
            for name, queries in per_table.items():
                store.lookup_batch(name, queries, gather=False)
        misses_after = sum(state.stats.misses for state in states)
        record = accountant.serve_batch(batch.dispatch_us, misses_after - misses_before)
        misses_before = misses_after
        latencies[batch.start : batch.stop] = (
            record.completion_us
            - arrival_us[batch.start : batch.stop]
            + config.request_overhead_us
        )
        batch_sizes[b] = batch.size
        last_completion_us = max(last_completion_us, record.completion_us)
        if tracer.enabled:
            # Retrospective spans: the batch's timeline is fully known, and
            # the four stages tile the request's latency exactly —
            # batcher.queue + device.queue + device.service + overhead ==
            # completion - arrival + request_overhead_us.
            for i in range(batch.start, batch.stop):
                t_arrival = float(arrival_us[i])
                tracer.begin_request(i, t_arrival)
                tracer.span(
                    i,
                    STAGE_BATCH_QUEUE,
                    t_arrival,
                    batch.dispatch_us,
                    batch=b,
                    batch_size=batch.size,
                )
                tracer.span(
                    i, STAGE_DEVICE_QUEUE, batch.dispatch_us, record.start_us
                )
                tracer.span(
                    i,
                    STAGE_DEVICE_SERVICE,
                    record.start_us,
                    record.completion_us,
                    block_reads=record.block_reads,
                    queue_depth=record.queue_depth,
                    read_latency_us=record.read_latency_us,
                )
                tracer.span(
                    i,
                    STAGE_OVERHEAD,
                    record.completion_us,
                    record.completion_us + config.request_overhead_us,
                )
                tracer.end_request(
                    i, record.completion_us + config.request_overhead_us
                )

    stats_after = store.aggregate_stats()
    lookups = stats_after.lookups - stats_before.lookups
    hits = stats_after.hits - stats_before.hits
    blocks_read = stats_after.misses - stats_before.misses
    app_bytes = lookups * store.config.vector_bytes
    nvm_bytes = blocks_read * store.config.block_bytes

    makespan_us = last_completion_us - (float(arrival_us[0]) if n else 0.0)
    makespan_s = makespan_us / 1e6
    depths = np.array([r.queue_depth for r in accountant.records], dtype=np.float64)
    mbps = np.array([r.device_mbps for r in accountant.records], dtype=np.float64)

    steady_state = None
    if nvm_bytes > 0 and makespan_us > 0:
        steady_state = model.application_latency(
            app_bytes / makespan_us,  # bytes/µs == MB/s
            min(1.0, app_bytes / nvm_bytes),
            queue_depth=store.config.queue_depth,
        )

    return ServingReport(
        num_requests=n,
        num_batches=len(batches),
        offered_rate_rps=config.arrival_rate_rps,
        throughput_rps=n / makespan_s if makespan_s > 0 else 0.0,
        makespan_s=makespan_s,
        latency=LatencySummary.from_samples(latencies),
        slo_latency_us=config.slo_latency_us,
        slo_violations=int(np.count_nonzero(latencies > config.slo_latency_us)),
        mean_batch_size=float(batch_sizes.mean()) if len(batches) else 0.0,
        batch_size_hist={
            int(size): int(count)
            for size, count in zip(*np.unique(batch_sizes, return_counts=True))
        },
        mean_queue_depth=float(depths.mean()) if depths.size else 0.0,
        max_queue_depth=float(depths.max()) if depths.size else 0.0,
        queue_depth_hist=depth_histogram(depths),
        blocks_read=int(blocks_read),
        device_mbps_mean=float(mbps.mean()) if mbps.size else 0.0,
        device_mbps_peak=float(mbps.max()) if mbps.size else 0.0,
        lookups=int(lookups),
        hit_rate=hits / lookups if lookups else 0.0,
        steady_state=steady_state,
        trace=tracer.summary() if tracer.enabled else None,
    )


def _simulate_cluster_serving(
    cluster: "ClusterStore",
    requests: List[Dict[str, np.ndarray]],
    arrival_us: np.ndarray,
    batches: List[Batch],
    config: ServingConfig,
    tracer: Tracer = NULL_TRACER,
) -> ServingReport:
    """The cluster-routed serving path (see ``simulate_serving``'s ``cluster``).

    The batcher still gates dispatch (requests wait out the linger window),
    but timing inside the store is the cluster's: per-shard queueing on each
    node's FIFO clock, retries, hedges and fan-in.  Device-accountant
    metrics (queue-depth histogram, steady-state cross-check) do not apply —
    each cluster node owns its device — and are reported empty.  Tracing is
    the cluster's too: the tracer rides along on the store
    (:meth:`~repro.cluster.store.ClusterStore.set_tracer`), which roots each
    request at its *true* arrival and records the batcher wait plus the full
    fan-out span tree.
    """
    n = len(requests)
    stats_before = cluster.aggregate_stats()
    latencies = np.empty(n, dtype=np.float64)
    batch_sizes = np.empty(len(batches), dtype=np.int64)
    last_completion_us = 0.0
    cluster.set_tracer(tracer)
    try:
        for b, batch in enumerate(batches):
            for i in range(batch.start, batch.stop):
                outcome = cluster.serve_request(
                    requests[i],
                    now_us=float(batch.dispatch_us),
                    arrival_us=float(arrival_us[i]),
                )
                latencies[i] = outcome.completion_us - arrival_us[i]
                last_completion_us = max(last_completion_us, outcome.completion_us)
            batch_sizes[b] = batch.size
    finally:
        cluster.set_tracer(None)
    stats_after = cluster.aggregate_stats()
    lookups = stats_after.lookups - stats_before.lookups
    hits = stats_after.hits - stats_before.hits
    blocks_read = stats_after.misses - stats_before.misses
    makespan_us = last_completion_us - (float(arrival_us[0]) if n else 0.0)
    makespan_s = makespan_us / 1e6
    return ServingReport(
        num_requests=n,
        num_batches=len(batches),
        offered_rate_rps=config.arrival_rate_rps,
        throughput_rps=n / makespan_s if makespan_s > 0 else 0.0,
        makespan_s=makespan_s,
        latency=LatencySummary.from_samples(latencies),
        slo_latency_us=config.slo_latency_us,
        slo_violations=int(np.count_nonzero(latencies > config.slo_latency_us)),
        mean_batch_size=float(batch_sizes.mean()) if len(batches) else 0.0,
        batch_size_hist={
            int(size): int(count)
            for size, count in zip(*np.unique(batch_sizes, return_counts=True))
        },
        blocks_read=int(blocks_read),
        lookups=int(lookups),
        hit_rate=hits / lookups if lookups else 0.0,
        trace=tracer.summary() if tracer.enabled else None,
    )
