"""The metrics sink of the serving front-end.

:class:`ServingReport` condenses one serving simulation into the quantities
the paper argues about: end-to-end request latency percentiles (p50/p95/p99/
p999), sustained throughput, SLO violations, the batcher's behaviour (batch
size histogram), and the device-side story (queue-depth histogram, block
reads, measured throughput).  ``to_dict`` renders everything JSON-ready for
the benchmark artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.nvm.latency import LoadedLatency

#: Percentiles reported for request latency.
LATENCY_PERCENTILES = (50.0, 95.0, 99.0, 99.9)

#: Summary field per reported percentile, in :data:`LATENCY_PERCENTILES` order.
_PERCENTILE_FIELDS = ("p50_us", "p95_us", "p99_us", "p999_us")


def percentile_min_samples(percentile: float) -> int:
    """Samples needed before ``percentile`` is a measurement, not a guess.

    The rank of the p-th percentile needs at least ``100 / (100 - p)``
    samples for one sample to sit *above* it — below that, interpolation
    just quotes the max (p999 from 200 samples is the slowest request, not
    a tail estimate).
    """
    if not 0.0 <= percentile < 100.0:
        raise ValueError(f"percentile must be in [0, 100), got {percentile}")
    # Round before ceiling: 100 - 99.9 carries float noise (0.09999...),
    # and ceil would otherwise inflate p999's rank from 1000 to 1001.
    return int(np.ceil(round(100.0 / (100.0 - percentile), 6)))


@dataclass(frozen=True)
class LatencySummary:
    """Request-latency distribution summary, in microseconds.

    ``samples`` is the number of latency samples behind the percentiles;
    consumers should check :meth:`unsupported_percentiles` before quoting
    tails (the benchmarks flag them in their artifacts).
    """

    p50_us: float
    p95_us: float
    p99_us: float
    p999_us: float
    mean_us: float
    max_us: float
    samples: int = 0

    @classmethod
    def from_samples(cls, latencies_us: np.ndarray) -> "LatencySummary":
        latencies_us = np.asarray(latencies_us, dtype=np.float64)
        if latencies_us.size == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, samples=0)
        p50, p95, p99, p999 = np.percentile(latencies_us, LATENCY_PERCENTILES)
        return cls(
            p50_us=float(p50),
            p95_us=float(p95),
            p99_us=float(p99),
            p999_us=float(p999),
            mean_us=float(latencies_us.mean()),
            max_us=float(latencies_us.max()),
            samples=int(latencies_us.size),
        )

    def unsupported_percentiles(self) -> List[str]:
        """Summary fields whose percentile rank exceeds the sample count."""
        return [
            name
            for name, percentile in zip(_PERCENTILE_FIELDS, LATENCY_PERCENTILES)
            if self.samples < percentile_min_samples(percentile)
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "mean_us": self.mean_us,
            "max_us": self.max_us,
            "samples": self.samples,
            "unsupported_percentiles": self.unsupported_percentiles(),
        }


def depth_histogram(depths: np.ndarray) -> Dict[int, int]:
    """Power-of-two bucketed histogram of queue-depth samples.

    Keys are bucket upper edges (0, 1, 2, 4, ...): depth ``d`` lands in the
    smallest bucket with ``d <= key``.  Depths span several orders of
    magnitude once the device saturates, so exact counts would be noise —
    except the ``0`` bucket, which is exact: an idle device is a different
    fact than depth-1 occupancy and must not be clamped into it.
    """
    depths = np.asarray(depths, dtype=np.float64)
    if depths.size == 0:
        return {}
    hist: Dict[int, int] = {}
    idle = int(np.count_nonzero(depths <= 0.0))
    if idle:
        hist[0] = idle
    occupied = depths[depths > 0.0]
    if occupied.size:
        exponents = np.ceil(np.log2(np.maximum(occupied, 1.0))).astype(np.int64)
        buckets, counts = np.unique(exponents, return_counts=True)
        hist.update(
            {int(1 << int(b)): int(c) for b, c in zip(buckets, counts)}
        )
    return hist


@dataclass(frozen=True)
class ServingReport:
    """Everything one serving simulation observed.

    Latency percentiles are over *completed request* latencies (arrival to
    batch completion, plus the configured per-request overhead); device and
    cache counters are deltas over the simulated run only.
    """

    num_requests: int
    num_batches: int
    offered_rate_rps: float
    throughput_rps: float
    makespan_s: float
    latency: LatencySummary
    slo_latency_us: float
    slo_violations: int
    mean_batch_size: float
    batch_size_hist: Dict[int, int] = field(default_factory=dict)
    mean_queue_depth: float = 0.0
    max_queue_depth: float = 0.0
    queue_depth_hist: Dict[int, int] = field(default_factory=dict)
    blocks_read: int = 0
    device_mbps_mean: float = 0.0
    device_mbps_peak: float = 0.0
    lookups: int = 0
    hit_rate: float = 0.0
    #: Requests rejected by single-host admission control (fast rejections
    #: at batch dispatch, no cache or device work; see
    #: ``ServingConfig.admission_queue_slack``).  ``0`` when shedding is
    #: disabled — the default, golden-pinned path.
    requests_shed: int = 0
    #: Observability snapshot of the shared device bank
    #: (:meth:`repro.device.NVMDeviceBank.snapshot`); ``None`` on the
    #: legacy accounting path and cluster-routed runs.
    device_bank: Optional[Dict[str, object]] = None
    #: Closed-form Figure-5 cross-check: the loaded latency the device model
    #: predicts for this run's average application throughput and measured
    #: effective bandwidth (``None`` when the run never touched the device).
    steady_state: Optional[LoadedLatency] = None
    #: JSON-ready tracer summary (``repro.tracing``): per-stage latency
    #: breakdown plus the top-K slowest requests' critical paths.  ``None``
    #: unless the run was traced (``TracingConfig.enabled``).
    trace: Optional[Dict[str, object]] = None

    @property
    def slo_violation_rate(self) -> float:
        """Fraction of requests that missed the latency SLO."""
        if self.num_requests == 0:
            return 0.0
        return self.slo_violations / self.num_requests

    @property
    def shed_rate(self) -> float:
        """Fraction of requests shed by single-host admission control."""
        if self.num_requests == 0:
            return 0.0
        return self.requests_shed / self.num_requests

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (used by the benchmark artifacts)."""
        return {
            "num_requests": self.num_requests,
            "num_batches": self.num_batches,
            "offered_rate_rps": self.offered_rate_rps,
            "throughput_rps": self.throughput_rps,
            "makespan_s": self.makespan_s,
            "latency": self.latency.to_dict(),
            "slo_latency_us": self.slo_latency_us,
            "slo_violations": self.slo_violations,
            "slo_violation_rate": self.slo_violation_rate,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_hist": {str(k): v for k, v in self.batch_size_hist.items()},
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "queue_depth_hist": {str(k): v for k, v in self.queue_depth_hist.items()},
            "blocks_read": self.blocks_read,
            "device_mbps_mean": self.device_mbps_mean,
            "device_mbps_peak": self.device_mbps_peak,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "requests_shed": self.requests_shed,
            "shed_rate": self.shed_rate,
            "device_bank": self.device_bank,
            "steady_state": (
                None
                if self.steady_state is None
                else {
                    "mean_us": self.steady_state.mean_us,
                    "p99_us": self.steady_state.p99_us,
                }
            ),
            "trace": self.trace,
        }
