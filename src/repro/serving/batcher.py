"""Request queue and dynamic batcher.

The front-end queues arriving requests and dispatches them in *dynamic
batches* under the two standard cutoffs:

* **size** — a batch is dispatched the instant it reaches
  ``max_batch_requests`` (its dispatch time is the arrival time of the
  request that filled it);
* **linger** — an incomplete batch is dispatched once its oldest request has
  waited ``max_linger_us`` (its dispatch time is that deadline).

Batch formation depends only on the arrival timestamps and the two cutoffs —
not on how long the device takes to serve earlier batches — so it is a pure,
deterministic function: the front-end thread always drains its queue on time,
and any backlog shows up downstream as device queueing (handled by the
latency accountant), not as altered batch composition.  Dispatch times are
non-decreasing in batch order, which the accountant's FIFO device relies on.

``max_batch_requests=1`` degenerates to unbatched serving: every request is
dispatched at its own arrival time and the linger cutoff never applies.

When tracing is enabled (:mod:`repro.tracing`), the interval a request
spends here — its arrival to its batch's dispatch, i.e. queue wait plus any
linger — is recorded as its ``batcher.queue`` span, attributed with the
batch id and size; a request that filled its batch has a zero-length span
(it never waited), which is exactly the batching-cost signal a p999
investigation needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Batch:
    """One dispatched batch of requests.

    Attributes
    ----------
    start:
        Index (into the arrival-ordered request stream) of the first request.
    stop:
        One past the index of the last request (``stop - start`` is the size).
    dispatch_us:
        Simulated-clock dispatch time in microseconds.
    """

    start: int
    stop: int
    dispatch_us: float

    @property
    def size(self) -> int:
        return self.stop - self.start


def form_batches(
    arrival_us: np.ndarray, max_batch_requests: int, max_linger_us: float
) -> List[Batch]:
    """Group an ascending arrival-time array into dispatched batches.

    ``arrival_us`` must be sorted ascending (the arrival processes emit it
    that way); requests are batched strictly in arrival order.
    """
    check_positive(max_batch_requests, "max_batch_requests")
    if max_linger_us < 0:
        raise ValueError("max_linger_us must be >= 0")
    arrival_us = np.asarray(arrival_us, dtype=np.float64)
    n = int(arrival_us.size)
    batches: List[Batch] = []
    i = 0
    while i < n:
        deadline = arrival_us[i] + max_linger_us
        # Everything that arrives by the linger deadline is eligible...
        eligible = int(np.searchsorted(arrival_us, deadline, side="right"))
        stop = min(i + max_batch_requests, eligible)
        if stop - i == max_batch_requests:
            # ...but the size cutoff fires the moment the batch fills.
            dispatch = float(arrival_us[stop - 1])
        else:
            dispatch = float(deadline)
        batches.append(Batch(start=i, stop=stop, dispatch_us=dispatch))
        i = stop
    return batches
