"""Latency accountant: turns per-batch NVM block reads into request latency.

The accountant models the serving tier's NVM device as one FIFO resource and
closes the loop the paper's Figure 5 describes: the latency of a read depends
on the load the application itself puts on the device.  For every dispatched
batch it

1. observes the **queue depth** — the block reads still in flight from
   earlier batches plus this batch's own — and clamps it into the device's
   submission-slot range,
2. measures the **offered device throughput** over a trailing window of the
   simulated clock (bytes of block reads issued recently),
3. feeds both into :meth:`repro.nvm.latency.NVMLatencyModel.loaded_latency`
   to price one read under that load, and
4. charges the batch ``ceil(blocks / queue_depth)`` serial rounds at that
   price (reads at the same depth overlap, mirroring
   :meth:`repro.nvm.device.NVMDevice.read_blocks`), serialised behind any
   batch the device is still serving.

Since the shared device layer landed, all of that arithmetic lives in
:class:`repro.device.clock.DeviceClock` — the single FIFO-device
implementation both the serving tier and the cluster nodes sit on — and
this class is a thin adapter over a **1-device**
:class:`~repro.device.bank.NVMDeviceBank`-style clock.  The adapter is
bit-identical to the pre-refactor accountant (the golden serving pins
verify it); multi-device accounting is ``simulate_serving``'s shared-device
modes, which use a real bank directly.

Everything runs on the simulated clock — there are no wall-time sleeps — and
every quantity is a deterministic function of the dispatch sequence, which is
what lets the golden tests pin serving percentiles bit for bit.
"""

from __future__ import annotations

from typing import List

from repro.device.clock import DeviceClock, DeviceServiceRecord
from repro.nvm.latency import NVMLatencyModel

#: One dispatched batch's service decision.  Historical alias: the serving
#: tier predates the shared device layer; its record type is now the device
#: layer's (a strict superset — ``device_index``/``table`` ride along).
BatchServiceRecord = DeviceServiceRecord


class DeviceLatencyAccountant:
    """FIFO NVM-device clock with load-feedback latency pricing.

    Thin adapter over one :class:`repro.device.clock.DeviceClock` (see
    module docstring).

    Parameters
    ----------
    latency_model:
        The device latency/bandwidth model (paper Figure 2/5 calibration).
    block_bytes:
        Bytes physically read per block read.
    max_queue_depth:
        Cap on the queue depth fed to the latency model (device submission
        slots); backlog beyond it costs extra serial rounds instead.
    throughput_window_s:
        Trailing window over which device throughput is measured.
    """

    def __init__(
        self,
        latency_model: NVMLatencyModel,
        block_bytes: int,
        max_queue_depth: float = 64.0,
        throughput_window_s: float = 0.05,
    ) -> None:
        self.device = DeviceClock(
            latency_model,
            block_bytes=block_bytes,
            max_queue_depth=max_queue_depth,
            throughput_window_s=throughput_window_s,
        )

    # ------------------------------------------------------- adapter surface
    @property
    def latency_model(self) -> NVMLatencyModel:
        assert self.device.latency_model is not None
        return self.device.latency_model

    @property
    def block_bytes(self) -> int:
        return self.device.block_bytes

    @property
    def max_queue_depth(self) -> float:
        return self.device.max_queue_depth

    @property
    def window_us(self) -> int:
        return self.device.window_us

    @property
    def free_at_us(self) -> float:
        return self.device.free_at_us

    @property
    def records(self) -> List[BatchServiceRecord]:
        return self.device.records

    def queue_wait_us(self, at_us: float) -> float:
        """Backlog a batch dispatched at ``at_us`` would wait behind."""
        return self.device.queue_wait_us(at_us)

    # ------------------------------------------------------------------ serve
    def serve_batch(self, dispatch_us: float, block_reads: int) -> BatchServiceRecord:
        """Account one batch dispatched at ``dispatch_us`` issuing ``block_reads``.

        Returns the service record; ``completion_us`` is when every read of
        the batch has finished (requests in the batch complete together).
        A batch with zero reads (all lookups hit DRAM) never visits the
        device and completes at its dispatch time.
        """
        return self.device.serve_blocks(dispatch_us, block_reads)
