"""Latency accountant: turns per-batch NVM block reads into request latency.

The accountant models the serving tier's NVM device as one FIFO resource and
closes the loop the paper's Figure 5 describes: the latency of a read depends
on the load the application itself puts on the device.  For every dispatched
batch it

1. observes the **queue depth** — the block reads still in flight from
   earlier batches plus this batch's own — and clamps it into the device's
   submission-slot range,
2. measures the **offered device throughput** over a trailing window of the
   simulated clock (bytes of block reads issued recently),
3. feeds both into :meth:`repro.nvm.latency.NVMLatencyModel.loaded_latency`
   to price one read under that load, and
4. charges the batch ``ceil(blocks / queue_depth)`` serial rounds at that
   price (reads at the same depth overlap, mirroring
   :meth:`repro.nvm.device.NVMDevice.read_blocks`), serialised behind any
   batch the device is still serving.

Everything runs on the simulated clock — there are no wall-time sleeps — and
every quantity is a deterministic function of the dispatch sequence, which is
what lets the golden tests pin serving percentiles bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.nvm.latency import NVMLatencyModel
from repro.utils.units import s_to_us


@dataclass(frozen=True)
class BatchServiceRecord:
    """What the accountant decided for one dispatched batch.

    ``start_us`` is when the device actually began this batch's reads —
    ``completion_us - start_us`` is pure service time and
    ``start_us - dispatch_us`` is FIFO queue wait behind earlier batches,
    the split the tracer records as ``device.queue`` vs ``device.service``.
    """

    dispatch_us: float
    start_us: float
    completion_us: float
    block_reads: int
    queue_depth: float
    device_mbps: float
    read_latency_us: float


class DeviceLatencyAccountant:
    """FIFO NVM-device clock with load-feedback latency pricing.

    Parameters
    ----------
    latency_model:
        The device latency/bandwidth model (paper Figure 2/5 calibration).
    block_bytes:
        Bytes physically read per block read.
    max_queue_depth:
        Cap on the queue depth fed to the latency model (device submission
        slots); backlog beyond it costs extra serial rounds instead.
    throughput_window_s:
        Trailing window over which device throughput is measured.
    """

    def __init__(
        self,
        latency_model: NVMLatencyModel,
        block_bytes: int,
        max_queue_depth: float = 64.0,
        throughput_window_s: float = 0.05,
    ) -> None:
        self.latency_model = latency_model
        self.block_bytes = int(block_bytes)
        self.max_queue_depth = float(max_queue_depth)
        # Normalised to *integer* µs at the boundary: 0.05 * 1e6 is
        # 50000.000000000007 in floats, and window pruning must not depend
        # on that representation noise.
        self.window_us = s_to_us(throughput_window_s)
        self.free_at_us = 0.0
        self.records: List[BatchServiceRecord] = []
        # Issue log for the trailing-window throughput measurement and the
        # in-flight scan; dispatches are non-decreasing, so both prune with
        # a monotone pointer (amortised O(1) per batch).
        self._issue_us: List[float] = []
        self._issue_blocks: List[int] = []
        self._completion_us: List[float] = []
        self._window_start = 0
        self._window_blocks = 0
        self._inflight_start = 0
        self._inflight_blocks = 0

    # ------------------------------------------------------------------ serve
    def serve_batch(self, dispatch_us: float, block_reads: int) -> BatchServiceRecord:
        """Account one batch dispatched at ``dispatch_us`` issuing ``block_reads``.

        Returns the service record; ``completion_us`` is when every read of
        the batch has finished (requests in the batch complete together).
        A batch with zero reads (all lookups hit DRAM) never visits the
        device and completes at its dispatch time.
        """
        if block_reads < 0:
            raise ValueError("block_reads must be >= 0")
        self._prune(dispatch_us)
        outstanding = self._inflight_blocks + block_reads
        queue_depth = min(max(float(outstanding), 1.0), self.max_queue_depth)
        mbps = self._throughput_mbps(dispatch_us, block_reads)
        if block_reads == 0:
            # No device visit: record the depth actually observed (possibly
            # 0, an idle device) rather than the >=1 clamp the latency model
            # needs — the model is never consulted on this branch.
            record = BatchServiceRecord(
                dispatch_us=dispatch_us,
                start_us=dispatch_us,
                completion_us=dispatch_us,
                block_reads=0,
                queue_depth=min(float(self._inflight_blocks), self.max_queue_depth),
                device_mbps=mbps,
                read_latency_us=0.0,
            )
            self.records.append(record)
            return record
        read_latency = self.latency_model.loaded_latency(
            mbps, queue_depth=queue_depth
        ).mean_us
        rounds = math.ceil(block_reads / queue_depth)
        start_us = max(dispatch_us, self.free_at_us)
        completion_us = start_us + rounds * read_latency
        self.free_at_us = completion_us
        self._issue_us.append(dispatch_us)
        self._issue_blocks.append(block_reads)
        self._completion_us.append(completion_us)
        self._window_blocks += block_reads
        self._inflight_blocks += block_reads
        record = BatchServiceRecord(
            dispatch_us=dispatch_us,
            start_us=start_us,
            completion_us=completion_us,
            block_reads=block_reads,
            queue_depth=queue_depth,
            device_mbps=mbps,
            read_latency_us=read_latency,
        )
        self.records.append(record)
        return record

    # ---------------------------------------------------------------- private
    def _prune(self, now_us: float) -> None:
        while (
            self._window_start < len(self._issue_us)
            and self._issue_us[self._window_start] <= now_us - self.window_us
        ):
            self._window_blocks -= self._issue_blocks[self._window_start]
            self._window_start += 1
        while (
            self._inflight_start < len(self._completion_us)
            and self._completion_us[self._inflight_start] <= now_us
        ):
            self._inflight_blocks -= self._issue_blocks[self._inflight_start]
            self._inflight_start += 1

    def _throughput_mbps(self, now_us: float, new_blocks: int) -> float:
        """Device throughput over the trailing window, including this batch."""
        blocks = self._window_blocks + new_blocks
        return blocks * self.block_bytes / self.window_us  # bytes/µs == MB/s
