"""Arrival processes for the serving front-end: open loop and closed loop.

The front-end's default is an *open* system: requests arrive on their own
clock whether or not the store has finished the previous ones, which is what
makes device saturation visible as unbounded queueing delay.  Two open-loop
processes are provided:

* **Poisson** — memoryless arrivals at a constant rate, the standard model
  for large independent user populations ("millions of users" aggregate to
  Poisson regardless of per-user behaviour).
* **MMPP** — a two-state Markov-modulated Poisson process: a quiet state and
  a bursty state, each with exponentially distributed dwell times, arrivals
  Poisson within a state.  Its stationary mean rate equals the configured
  ``arrival_rate_rps`` exactly, so batched-vs-unbatched and load sweeps
  compare like against like; only the burstiness changes.

The open-loop generators are driven by a seeded
:class:`numpy.random.Generator` and produce a plain array of arrival
timestamps, so a simulation is a pure function of (trace, config, seed) —
the property the golden serving tests pin.

**Closed-loop** arrivals (:class:`ClosedLoopPopulation`) model RPC fan-in: a
fixed population of clients, each with at most one request in flight,
issuing its next request one exponential think time after the previous
response.  Concurrency is capped at the population size by construction, so
saturation slows the clients down (throughput plateaus at
``clients / (think + response)``) instead of growing the queue without
bound.  A closed loop's arrival times depend on *completions*, so they
cannot be precomputed as an array — the serving loop
(:func:`repro.serving.frontend.simulate_serving`) draws them incrementally
from the population object, still deterministically from the seed.

Each arrival timestamp is also where a request's trace begins: when tracing
is enabled (:mod:`repro.tracing`), the front-end roots request ``i``'s
``"request"`` span at ``arrival_us[i]``, and everything between arrival and
batch dispatch is the ``batcher.queue`` span.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import ServingConfig
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive


def poisson_arrival_times(
    num_requests: int, rate_rps: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival timestamps (seconds, ascending from ~0) of a Poisson process."""
    check_positive(rate_rps, "rate_rps")
    if num_requests <= 0:
        return np.empty(0, dtype=np.float64)
    gaps = rng.exponential(1.0 / rate_rps, size=num_requests)
    return np.cumsum(gaps)


def mmpp_arrival_times(
    num_requests: int,
    rate_rps: float,
    burst_factor: float,
    burst_fraction: float,
    mean_dwell_s: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival timestamps of a two-state Markov-modulated Poisson process.

    Parameters
    ----------
    rate_rps:
        Stationary mean arrival rate.  The quiet-state rate is derived as
        ``rate / (1 - f + f * b)`` so that the time-weighted average over the
        two states is exactly ``rate_rps``.
    burst_factor:
        Bursty-state rate as a multiple of the quiet-state rate (``b``).
    burst_fraction:
        Stationary fraction of time in the bursty state (``f``).
    mean_dwell_s:
        Mean sojourn of one bursty-state visit; the quiet state's mean dwell
        is ``mean_dwell_s * (1 - f) / f``, which yields the stationary
        fraction ``f``.
    """
    check_positive(rate_rps, "rate_rps")
    check_positive(burst_factor, "burst_factor")
    check_positive(mean_dwell_s, "mean_dwell_s")
    if not 0 < burst_fraction < 1:
        raise ValueError("burst_fraction must lie strictly between 0 and 1")
    if num_requests <= 0:
        return np.empty(0, dtype=np.float64)

    quiet_rate = rate_rps / (1.0 - burst_fraction + burst_fraction * burst_factor)
    rates = (quiet_rate, quiet_rate * burst_factor)
    dwells = (mean_dwell_s * (1.0 - burst_fraction) / burst_fraction, mean_dwell_s)

    # Start in the stationary distribution so short runs are not biased
    # towards either state.
    state = int(rng.random() < burst_fraction)
    t = 0.0
    chunks = []
    produced = 0
    while produced < num_requests:
        dwell = rng.exponential(dwells[state])
        # Conditioned on the dwell, arrivals within it are a Poisson count
        # placed uniformly — the standard construction, one vectorized draw
        # per state visit.
        count = int(rng.poisson(rates[state] * dwell))
        if count:
            arrivals = t + np.sort(rng.random(count)) * dwell
            chunks.append(arrivals)
            produced += count
        t += dwell
        state ^= 1
    return np.concatenate(chunks)[:num_requests]


class ClosedLoopPopulation:
    """A fixed population of think-time clients (closed-loop arrivals).

    Each client holds at most one request in flight: it issues a request,
    waits for the response, thinks for an exponentially distributed time
    with mean ``think_time_s``, and issues the next.  The population size is
    therefore a hard concurrency cap, and the *nominal* offered rate —
    what the clients would offer against an infinitely fast server — is
    ``num_clients / think_time_s``.

    The object is a small draw server for the serving loop: each client's
    first arrival is one think time from ``t = 0`` (a staggered start, not
    a synchronized burst), and :meth:`next_arrival_us` turns a completion
    into that client's next arrival.  All draws come from the one seeded
    generator, in simulation order, so runs stay deterministic.
    """

    def __init__(
        self,
        num_clients: int,
        think_time_s: float,
        rng: np.random.Generator,
    ) -> None:
        check_positive(think_time_s, "think_time_s")
        if num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        self.num_clients = int(num_clients)
        self.think_mean_us = float(think_time_s) * 1e6
        self._rng = rng

    @property
    def nominal_rate_rps(self) -> float:
        """Offered rate against a zero-latency server (``N / think``)."""
        return self.num_clients / (self.think_mean_us / 1e6)

    def initial_arrival_us(self) -> float:
        """One client's first arrival: a think time after the run starts."""
        return float(self._rng.exponential(self.think_mean_us))

    def next_arrival_us(self, completion_us: float) -> float:
        """A client's next arrival, one think time after its response."""
        return completion_us + float(self._rng.exponential(self.think_mean_us))


def arrival_times(
    config: ServingConfig,
    num_requests: int,
    seed: SeedLike = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Arrival timestamps for ``num_requests`` under ``config`` (seconds).

    The process is driven by ``rng`` when given (callers composing several
    stochastic components around one shared generator), else by a fresh
    generator from ``seed`` — which itself may be an integer or an existing
    :class:`numpy.random.Generator` (see :func:`repro.utils.rng.ensure_rng`).
    """
    rng = rng if rng is not None else ensure_rng(seed)
    if config.arrival_process == "closed-loop":
        raise ValueError(
            "closed-loop arrivals depend on completions and cannot be "
            "precomputed; the serving loop draws them from a "
            "ClosedLoopPopulation instead"
        )
    if config.arrival_process == "mmpp":
        return mmpp_arrival_times(
            num_requests,
            config.arrival_rate_rps,
            config.mmpp_burst_factor,
            config.mmpp_burst_fraction,
            config.mmpp_mean_dwell_s,
            rng,
        )
    return poisson_arrival_times(num_requests, config.arrival_rate_rps, rng)
