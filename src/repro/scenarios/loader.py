"""Streaming external-trace loader, normalised into the dense-id contract.

Two public cache-trace layouts are understood (:data:`~repro.scenarios.config.TRACE_FORMATS`):

* ``"twitter"`` — the Twitter production cache-trace CSV layout
  (``timestamp,key,key_size,value_size,client_id,operation,ttl``).  Keys are
  anonymised tokens; each is mapped to a stable 63-bit id (numeric keys map
  to themselves, others through a vectorisable FNV-1a hash), and consecutive
  kept rows sharing ``(timestamp, client_id)`` form one multi-get query.
  With ``get_only`` (the default) mutations are dropped, matching how a
  read-path store sees the trace.
* ``"columnar"`` — a generic two-column ``query_id,key`` CSV; consecutive
  rows sharing a ``query_id`` form one query.

Loading is **two-pass streaming** so arbitrarily large traces fit in bounded
memory:

1. pass 1 streams the queries and folds their ids into a running sorted-
   unique set (:func:`build_remapper`), producing the
   :class:`~repro.workloads.remap.IdRemapper` over the *whole* universe;
2. pass 2 streams the queries again and maps each through that remapper
   (:func:`iter_dense_chunks`), yielding dense-id
   :class:`~repro.workloads.trace.Trace` chunks of ``chunk_queries`` each.

Because the remapper's sparse→dense mapping is the sorted rank over the full
universe — independent of arrival order — the chunked stream and the
whole-file load (:func:`load_trace`) produce bit-identical queries for every
chunk size; ``tests/test_trace_loader.py`` pins that equivalence through a
full cache replay.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.scenarios.config import TraceLoaderConfig
from repro.workloads.characterization import TableCharacterization, characterize_table
from repro.workloads.remap import IdRemapper
from repro.workloads.tables_spec import PAPER_TABLE_SPECS
from repro.workloads.trace import Trace

#: Twitter-trace operations that read (everything else is a mutation).
READ_OPERATIONS = frozenset({"get", "gets"})

#: Ids folded into the running unique set per pass-1 batch (memory bound).
_UNIQUE_FOLD_IDS = 1 << 16

# FNV-1a 64-bit constants (stable, dependency-free string hashing).
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def hash_key(key: str) -> int:
    """Stable non-negative 63-bit id of one trace key.

    Numeric keys map to themselves (so integer universes round-trip through
    the loader); other keys go through FNV-1a.  Deterministic across runs
    and platforms — unlike the salted builtin ``hash``.
    """
    try:
        value = int(key)
    except ValueError:
        value = _FNV_OFFSET
        for byte in key.encode("utf-8"):
            value ^= byte
            value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value & 0x7FFFFFFFFFFFFFFF


@dataclass
class LoadedTrace:
    """An external trace after normalisation into the dense-id contract."""

    trace: Trace
    remapper: IdRemapper
    config: TraceLoaderConfig
    source_rows: int
    dropped_rows: int


def _iter_parsed(
    config: TraceLoaderConfig, counters: Optional[Dict[str, int]] = None
) -> Iterator[Tuple[str, int]]:
    """Yield ``(group_key, sparse_id)`` per kept row, streaming the file.

    ``counters`` (when given) accumulates ``"rows"`` (data rows seen) and
    ``"dropped"`` (rows discarded by the read-only filter or as malformed).
    A header line is recognised by its non-numeric leading field and is not
    counted as a row.
    """
    if not os.path.exists(config.path):
        raise FileNotFoundError(config.path)
    with open(config.path, "r", encoding="utf-8") as handle:
        for line_index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            fields = line.split(",")
            if config.format == "twitter":
                if len(fields) < 6:
                    if line_index == 0:
                        continue  # short header
                    if counters is not None:
                        counters["rows"] = counters.get("rows", 0) + 1
                        counters["dropped"] = counters.get("dropped", 0) + 1
                    continue
                timestamp, key, _key_size, _value_size, client, operation = fields[:6]
                if line_index == 0 and not timestamp.isdigit():
                    continue  # header line
                if counters is not None:
                    counters["rows"] = counters.get("rows", 0) + 1
                if config.get_only and operation not in READ_OPERATIONS:
                    if counters is not None:
                        counters["dropped"] = counters.get("dropped", 0) + 1
                    continue
                yield f"{timestamp},{client}", hash_key(key)
            else:  # columnar: query_id,key
                if len(fields) < 2:
                    continue
                query_id, key = fields[0], fields[1]
                if line_index == 0 and not query_id.lstrip("-").isdigit():
                    continue  # header line
                if counters is not None:
                    counters["rows"] = counters.get("rows", 0) + 1
                yield query_id, hash_key(key)


def iter_sparse_queries(
    config: TraceLoaderConfig, counters: Optional[Dict[str, int]] = None
) -> Iterator[np.ndarray]:
    """Stream the trace's queries with their original (sparse) ids.

    Consecutive kept rows sharing a group key form one query; a change of
    key closes the query.  Honour's the config's ``max_queries`` cap.
    """
    pending_key: Optional[str] = None
    pending: List[int] = []
    emitted = 0
    for group_key, sparse_id in _iter_parsed(config, counters):
        if pending and group_key != pending_key:
            yield np.asarray(pending, dtype=np.int64)
            emitted += 1
            pending = []
            if config.max_queries is not None and emitted >= config.max_queries:
                return
        pending_key = group_key
        pending.append(sparse_id)
    if pending and (config.max_queries is None or emitted < config.max_queries):
        yield np.asarray(pending, dtype=np.int64)


def build_remapper(config: TraceLoaderConfig) -> IdRemapper:
    """Pass 1: the id remapper over the trace's whole key universe.

    Streams the file once, folding ids into a running sorted-unique array
    every :data:`_UNIQUE_FOLD_IDS` ids, so memory stays proportional to the
    number of *distinct* keys, never the trace length.
    """
    unique = np.empty(0, dtype=np.int64)
    buffered: List[np.ndarray] = []
    buffered_ids = 0
    for query in iter_sparse_queries(config):
        buffered.append(query)
        buffered_ids += query.size
        if buffered_ids >= _UNIQUE_FOLD_IDS:
            unique = np.union1d(unique, np.concatenate(buffered))
            buffered = []
            buffered_ids = 0
    if buffered:
        unique = np.union1d(unique, np.concatenate(buffered))
    return IdRemapper(unique)


def iter_dense_chunks(
    config: TraceLoaderConfig,
    remapper: Optional[IdRemapper] = None,
    counters: Optional[Dict[str, int]] = None,
) -> Iterator[Trace]:
    """Pass 2: stream the trace as dense-id chunks of ``chunk_queries``.

    Every chunk is a :class:`~repro.workloads.trace.Trace` over the full
    dense universe (``num_vectors = remapper.num_ids``), so chunks replay
    directly against one store.  Builds the remapper (pass 1) when not
    given one.
    """
    if remapper is None:
        remapper = build_remapper(config)
    chunk: List[np.ndarray] = []
    for query in iter_sparse_queries(config, counters):
        chunk.append(remapper.to_dense(query))
        if len(chunk) >= config.chunk_queries:
            yield Trace(chunk, num_vectors=remapper.num_ids)
            chunk = []
    if chunk:
        yield Trace(chunk, num_vectors=remapper.num_ids)


def load_trace(config: TraceLoaderConfig) -> LoadedTrace:
    """Load the whole trace through the two-pass pipeline.

    Equivalent to concatenating every chunk of :func:`iter_dense_chunks`
    (bit-identical queries — the equivalence the tests pin).
    """
    remapper = build_remapper(config)
    counters: Dict[str, int] = {}
    queries: List[np.ndarray] = []
    for chunk in iter_dense_chunks(config, remapper, counters):
        queries.extend(chunk.queries)
    return LoadedTrace(
        trace=Trace(queries, num_vectors=remapper.num_ids),
        remapper=remapper,
        config=config,
        source_rows=counters.get("rows", 0),
        dropped_rows=counters.get("dropped", 0),
    )


def _characterization_fields(row: TableCharacterization) -> Dict[str, object]:
    """One characterisation as the paper's Table 1 columns."""
    return {
        "name": row.name,
        "num_vectors": int(row.num_vectors),
        "avg_lookups_per_query": round(row.avg_lookups_per_query, 4),
        "lookup_share": round(row.lookup_share, 6),
        "compulsory_miss_rate": round(row.compulsory_miss_rate, 6),
        "unique_vectors_accessed": int(row.unique_vectors_accessed),
    }


def characterization_report(
    loaded: LoadedTrace, name: str = "loaded"
) -> Dict[str, object]:
    """Machine-readable side-by-side of the loaded trace vs paper Table 1.

    The ``measured`` entry is the loaded trace characterised by the same
    code path as the paper's synthetic tables
    (:func:`repro.workloads.characterization.characterize_table`); the
    ``paper_table1`` entries are the paper's eight production rows, column
    for column, so the loaded trace renders directly against Table 1.
    """
    measured = characterize_table(name, loaded.trace)
    return {
        "measured": {
            **_characterization_fields(measured),
            "num_queries": int(measured.num_queries),
            "num_lookups": int(measured.num_lookups),
            "source_rows": int(loaded.source_rows),
            "dropped_rows": int(loaded.dropped_rows),
            "format": loaded.config.format,
        },
        "paper_table1": [
            {
                "name": spec.name,
                "num_vectors": int(spec.num_vectors),
                "avg_lookups_per_query": float(spec.avg_lookups_per_query),
                "lookup_share": float(spec.lookup_share),
                "compulsory_miss_rate": float(spec.compulsory_miss_rate),
            }
            for spec in PAPER_TABLE_SPECS.values()
        ],
    }
