"""Adversarial scenario trace generators.

Each generator produces a plain :class:`~repro.workloads.trace.Trace` over a
dense id universe, so scenarios compose with everything downstream —
:meth:`BandanaStore.build <repro.core.bandana.BandanaStore.build>`, the
windowed replay of :func:`repro.scenarios.runner.run_workload_scenario` and
the event-driven :func:`repro.serving.simulate_serving`.

The three kinds stress the three assumptions Bandana's offline pipeline
bakes in at build time:

* **drift** attacks the *placement*: lookups follow a Zipf law over a ranked
  permutation of the ids, and every ``drift_epoch_queries`` queries the
  ranking rotates by ``drift_rotation_per_epoch × num_vectors`` positions.
  A placement trained on the first epochs packs the then-hot ids into a few
  blocks; as the ranking rotates, the hot set migrates onto ids that SHP
  scattered across cold blocks, and the prefetch hit rate decays.
* **flash-crowd** attacks the *admission policy and the tail*: during the
  flash window, ``flash_traffic_share`` of the lookups converge on a handful
  of previously-cold ids (the bottom of the ranking).  Those ids have low
  training-trace access counts, so the tuned threshold refuses to prefetch
  their block neighbours right when locality spikes — and the miss burst is
  what the serving-latency leg's p999 measures.
* **diurnal** attacks nothing in the id law at all — the stationary trace is
  the control — but drives the *arrival rate* through the two-state MMPP
  process (:func:`scenario_serving_config`), with long dwells acting as day
  and night phases.  It answers how a device provisioned for the mean copes
  with the daily peak.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

import numpy as np

from repro.core.config import ServingConfig
from repro.scenarios.config import ScenarioConfig
from repro.utils.rng import ensure_rng
from repro.utils.sampling import zipf_probabilities
from repro.workloads.trace import Trace


def _query_sizes(config: ScenarioConfig, rng: np.random.Generator) -> np.ndarray:
    """Poisson query sizes, at least one lookup each."""
    sizes = rng.poisson(lam=config.avg_lookups_per_query, size=config.num_queries)
    return np.maximum(sizes, 1)


def _dedupe(ids: np.ndarray) -> np.ndarray:
    """Keep each id's first occurrence, preserving draw order."""
    _, first_positions = np.unique(ids, return_index=True)
    return ids[np.sort(first_positions)]


class _QueryLaw:
    """The per-query sampling law over one (rotatable) popularity ranking.

    Each query focuses on one *community* — a contiguous ``community_size``
    span of the ranking, chosen by a Zipf law over community rank — and
    draws ``query_locality`` of its lookups from that community, the rest
    from a global Zipf law over the ranked ids.  Communities are what give
    SHP block-level structure to discover: co-accessed ids live in the same
    rank span, so a good placement packs them into the same 4 KB blocks.
    Rotating the ranking (drift) migrates every community's membership,
    which is precisely the structure a stale placement loses.
    """

    def __init__(self, config: ScenarioConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.ranking = rng.permutation(config.num_vectors).astype(np.int64)
        self.rank_probabilities = zipf_probabilities(
            config.num_vectors, config.zipf_alpha
        )
        num_communities = max(1, config.num_vectors // config.community_size)
        self.num_communities = num_communities
        self.community_probabilities = zipf_probabilities(
            num_communities, config.zipf_alpha
        )

    def rotate(self, shift: int) -> None:
        """Rotate: every id climbs ``shift`` ranks, the hottest ids wrap to
        the cold end — previously-cold ids steadily become hot."""
        self.ranking = np.roll(self.ranking, -shift)

    def coldest_ids(self, count: int) -> np.ndarray:
        """The ``count`` least-popular ids of the current ranking."""
        return self.ranking[-count:]

    def draw_query(self, size: int) -> np.ndarray:
        """One query: community-focused plus global Zipf draws, de-duplicated
        in draw order (a request reads each id at most once)."""
        config, rng = self.config, self.rng
        within = int(round(size * config.query_locality))
        parts: List[np.ndarray] = []
        if within:
            community = int(
                rng.choice(self.num_communities, p=self.community_probabilities)
            )
            lo = community * config.community_size
            members = self.ranking[lo : lo + config.community_size]
            parts.append(members[rng.integers(members.size, size=within)])
        rest = size - within
        if rest:
            draw = max(rest + 2, int(round(rest * 1.2)))
            ranks = rng.choice(self.ranking.size, size=draw, p=self.rank_probabilities)
            parts.append(self.ranking[ranks])
        ids = _dedupe(np.concatenate(parts))[:size]
        return ids.astype(np.int64)


def _drift_trace(config: ScenarioConfig, rng: np.random.Generator) -> Trace:
    """Popularity drift: the Zipf ranking rotates at every epoch boundary."""
    law = _QueryLaw(config, rng)
    shift = int(round(config.drift_rotation_per_epoch * config.num_vectors))
    start = int(round(config.drift_start_fraction * config.num_queries))
    queries: List[np.ndarray] = []
    for index, size in enumerate(_query_sizes(config, rng)):
        if index and index >= start and index % config.drift_epoch_queries == 0 and shift:
            law.rotate(shift)
        queries.append(law.draw_query(int(size)))
    return Trace(queries, num_vectors=config.num_vectors)


def _flash_crowd_trace(config: ScenarioConfig, rng: np.random.Generator) -> Trace:
    """A sudden spike concentrating traffic on previously-cold ids."""
    law = _QueryLaw(config, rng)
    # The crowd converges on the coldest ids of the baseline law.
    crowd = law.coldest_ids(config.flash_crowd_ids)
    start = int(round(config.flash_start_fraction * config.num_queries))
    end = start + int(round(config.flash_duration_fraction * config.num_queries))
    queries: List[np.ndarray] = []
    for index, size in enumerate(_query_sizes(config, rng)):
        ids = law.draw_query(int(size))
        if start <= index < end and config.flash_traffic_share > 0:
            diverted = rng.random(ids.size) < config.flash_traffic_share
            if diverted.any():
                replacements = crowd[
                    rng.integers(crowd.size, size=int(diverted.sum()))
                ]
                ids = ids.copy()
                ids[diverted] = replacements
                # Re-de-duplicate after the diversion (keep first occurrences).
                ids = _dedupe(ids)
        queries.append(ids)
    return Trace(queries, num_vectors=config.num_vectors)


def _diurnal_trace(config: ScenarioConfig, rng: np.random.Generator) -> Trace:
    """Diurnal load: a stationary id law — the day/night curve lives in the
    arrival process (:func:`scenario_serving_config`), not the ids."""
    law = _QueryLaw(config, rng)
    queries = [law.draw_query(int(size)) for size in _query_sizes(config, rng)]
    return Trace(queries, num_vectors=config.num_vectors)


def generate_scenario_trace(config: ScenarioConfig) -> Trace:
    """Generate the access trace of one scenario (deterministic in the seed)."""
    rng = ensure_rng(config.seed)
    if config.kind == "drift":
        return _drift_trace(config, rng)
    if config.kind == "flash-crowd":
        return _flash_crowd_trace(config, rng)
    return _diurnal_trace(config, rng)


def scenario_serving_config(
    config: ScenarioConfig, base: ServingConfig = ServingConfig()
) -> ServingConfig:
    """The serving front-end configuration a scenario implies.

    For ``"diurnal"`` scenarios this turns the base config's arrival process
    into the two-state MMPP with day/night dwells: the bursty state is the
    day (rate ``diurnal_burst_factor ×`` the night's), occupying
    ``diurnal_day_fraction`` of the time, with mean day length
    ``diurnal_period_s`` — the stationary mean rate stays the base config's
    ``arrival_rate_rps``, so diurnal and flat runs offer the same average
    load.  Other kinds return ``base`` unchanged (their adversarial content
    is in the ids, not the arrivals).
    """
    if config.kind != "diurnal":
        return base
    return replace(
        base,
        arrival_process="mmpp",
        mmpp_burst_factor=config.diurnal_burst_factor,
        mmpp_burst_fraction=config.diurnal_day_fraction,
        mmpp_mean_dwell_s=config.diurnal_period_s,
    )
