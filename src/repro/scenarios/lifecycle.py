"""The online re-partitioning lifecycle: retrain the placement, swap it live.

Bandana's placement is trained once, offline, on historical accesses — the
paper never measures what happens when the access distribution moves out
from under it.  :class:`RepartitionManager` makes that measurable: it keeps
a trailing window of served queries, periodically retrains the configured
partitioner on the window, and swaps the table's
:class:`~repro.nvm.block.BlockLayout` into the live store after a
configurable blackout (the simulated cost of the asynchronous retrain).

What a swap does — and costs — inside :class:`~repro.core.bandana.BandanaStore`:

* The placement lands through :meth:`BandanaStore.swap_layout
  <repro.core.bandana.BandanaStore.swap_layout>`: the live engine adopts the
  new id→block mapping while **sharing the table's cumulative
  ``ReplayStats``** — counters keep accumulating across swaps.
* With ``retain_cache`` (the default) DRAM residency survives: cache
  entries are keyed by vector id, which re-laying-out the NVM blocks does
  not invalidate — only prefetch behaviour changes.  With
  ``retain_cache=False`` every swap pays a cold-cache transient instead,
  modelling a system that flushes DRAM on re-layout; comparing the two arms
  is part of the answer to "when does retraining pay?".
* With ``refresh_access_counts``, the admission policy's per-vector counts
  are refreshed in place from the trailing window (scaled to the original
  counts' total, so the tuned threshold keeps its selectivity on the new
  distribution).

The manager also measures *placement churn* per swap — the fraction of
vectors whose block changed — and the staleness (queries since last swap),
so "hit-rate decay vs partition age" becomes a reportable curve
(:mod:`repro.scenarios.runner`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.core.bandana import BandanaStore, BandanaTableState
from repro.nvm.block import BlockLayout
from repro.partitioning.base import Partitioner
from repro.partitioning.frequency import FrequencyPartitioner
from repro.partitioning.identity import IdentityPartitioner
from repro.partitioning.shp import SHPPartitioner
from repro.scenarios.config import RepartitionConfig
from repro.workloads.characterization import access_counts
from repro.workloads.trace import Trace


def layout_churn(old: BlockLayout, new: BlockLayout) -> float:
    """Fraction of vectors whose block assignment changed between layouts."""
    if old.num_vectors != new.num_vectors:
        raise ValueError(
            f"layouts cover different universes ({old.num_vectors} vs "
            f"{new.num_vectors} vectors)"
        )
    ids = np.arange(old.num_vectors, dtype=np.int64)
    return float(np.mean(old.block_of(ids) != new.block_of(ids)))


class RepartitionManager:
    """Periodically retrain one table's placement on a trailing window.

    Drive it by calling :meth:`observe` once per served query (after the
    store has served it); the manager decides when to retrain and when the
    trained placement lands, according to its
    :class:`~repro.scenarios.config.RepartitionConfig`.
    """

    def __init__(
        self, store: BandanaStore, table_name: str, config: RepartitionConfig
    ) -> None:
        self.store = store
        self.table_name = table_name
        self.config = config
        self._state: BandanaTableState = store.tables[table_name]
        self._window: Deque[np.ndarray] = deque(maxlen=config.window_queries)
        self._queries_seen = 0
        self._pending_layout: Optional[BlockLayout] = None
        self._pending_counts: Optional[np.ndarray] = None
        self._blackout_remaining = 0
        self._last_swap_query = 0
        # ---- lifecycle metrics -------------------------------------------
        self.retrains = 0
        self.swaps: List[int] = []
        self.churn: List[float] = []
        self.retrain_runtime_seconds = 0.0

    # ------------------------------------------------------------------ drive
    def observe(self, query: np.ndarray) -> bool:
        """Record one served query; returns ``True`` when a swap landed."""
        self._window.append(np.asarray(query, dtype=np.int64))
        self._queries_seen += 1
        if self._pending_layout is not None:
            self._blackout_remaining -= 1
            if self._blackout_remaining <= 0:
                self._apply_swap()
                return True
            return False
        due = self._queries_seen % self.config.cadence_queries == 0
        if due and len(self._window) >= self.config.min_window_queries:
            self._retrain()
            if self._blackout_remaining <= 0:
                self._apply_swap()
                return True
        return False

    @property
    def partition_age_queries(self) -> int:
        """Queries served since the live placement last changed."""
        return self._queries_seen - self._last_swap_query

    def summary(self) -> Dict[str, object]:
        """Lifecycle metrics for reports and benchmark artifacts."""
        return {
            "retrains": self.retrains,
            "swaps": list(self.swaps),
            "churn": [round(value, 4) for value in self.churn],
            "queries_seen": self._queries_seen,
            "final_partition_age_queries": self.partition_age_queries,
            "retrain_runtime_seconds": round(self.retrain_runtime_seconds, 4),
        }

    # ---------------------------------------------------------------- private
    def _make_partitioner(self) -> Partitioner:
        config = self.config
        if config.partitioner == "shp":
            return SHPPartitioner(
                vectors_per_block=self.store.config.vectors_per_block,
                num_iterations=config.shp_iterations,
                seed=config.seed,
            )
        if config.partitioner == "frequency":
            return FrequencyPartitioner()
        return IdentityPartitioner()

    def _retrain(self) -> None:
        """Train a fresh placement on the trailing window (stage the swap)."""
        state = self._state
        window_trace = Trace(list(self._window), num_vectors=state.layout.num_vectors)
        result = self._make_partitioner().partition(
            state.layout.num_vectors, trace=window_trace
        )
        self.retrains += 1
        self.retrain_runtime_seconds += result.runtime_seconds
        self._pending_layout = result.layout(self.store.config.vectors_per_block)
        if self.config.refresh_access_counts:
            window_counts = access_counts(window_trace).astype(np.float64)
            window_total = window_counts.sum()
            original_total = float(state.access_counts.sum())
            if window_total > 0 and original_total > 0:
                scale = original_total / window_total
                self._pending_counts = np.round(window_counts * scale).astype(np.int64)
            else:
                self._pending_counts = None
        self._blackout_remaining = self.config.blackout_queries

    def _apply_swap(self) -> None:
        """Land the staged placement in the live store."""
        state = self._state
        assert self._pending_layout is not None
        self.churn.append(layout_churn(state.layout, self._pending_layout))
        if self._pending_counts is not None:
            # In place: the admission policy aliases this array, so the
            # refreshed counts steer admissions without rebuilding the policy.
            state.access_counts[:] = self._pending_counts
        self.store.swap_layout(
            self.table_name,
            self._pending_layout,
            retain_cache=self.config.retain_cache,
        )
        self._pending_layout = None
        self._pending_counts = None
        self._blackout_remaining = 0
        self._last_swap_query = self._queries_seen
        self.swaps.append(self._queries_seen)
