"""The result object of one scenario run, JSON-ready for benchmark artifacts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass
class ScenarioReport:
    """Everything one windowed scenario replay observed.

    The replay serves the evaluation split query by query and closes a
    measurement window every ``window_queries`` queries; each window's DRAM
    hit rate is the delta of the table's cumulative counters over that
    window, so the series directly renders "hit rate vs time" — the decay
    curve a stale placement produces under drift, and the recovery the
    re-partitioning lifecycle buys back.
    """

    table_name: str
    num_train_queries: int
    num_eval_queries: int
    window_queries: int
    window_hit_rates: List[float] = field(default_factory=list)
    #: Queries served since the live placement last changed, sampled at each
    #: window close (monotone without a lifecycle; saw-toothed with one).
    window_partition_age: List[int] = field(default_factory=list)
    overall_hit_rate: float = 0.0
    #: Mean hit rate over the first quarter of windows (the placement still
    #: matches its training distribution here).
    early_hit_rate: float = 0.0
    #: Mean hit rate over the last quarter of windows (maximum staleness).
    late_hit_rate: float = 0.0
    repartition: Optional[Dict[str, object]] = None
    serving: Optional[Dict[str, object]] = None

    @property
    def hit_rate_decay(self) -> float:
        """Early-minus-late hit rate: how much the run lost to staleness."""
        return self.early_hit_rate - self.late_hit_rate

    @classmethod
    def quarter_means(cls, windows: List[float]) -> Tuple[float, float]:
        """(early, late) means over the first and last quarter of windows."""
        span = max(1, len(windows) // 4)
        return _mean(windows[:span]), _mean(windows[-span:])

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (rounded — these land in committed artifacts)."""
        payload: Dict[str, object] = {
            "table_name": self.table_name,
            "num_train_queries": self.num_train_queries,
            "num_eval_queries": self.num_eval_queries,
            "window_queries": self.window_queries,
            "window_hit_rates": [round(rate, 6) for rate in self.window_hit_rates],
            "window_partition_age": list(self.window_partition_age),
            "overall_hit_rate": round(self.overall_hit_rate, 6),
            "early_hit_rate": round(self.early_hit_rate, 6),
            "late_hit_rate": round(self.late_hit_rate, 6),
            "hit_rate_decay": round(self.hit_rate_decay, 6),
        }
        if self.repartition is not None:
            payload["repartition"] = self.repartition
        if self.serving is not None:
            payload["serving"] = self.serving
        return payload
