"""Windowed scenario replay: build on the past, serve the (shifted) future.

:func:`run_workload_scenario` is the subsystem's orchestrator.  It splits a
scenario trace into a training prefix and an evaluation suffix, builds a
:class:`~repro.core.bandana.BandanaStore` on the prefix exactly as the
offline pipeline would, then serves the suffix query by query — optionally
feeding the queries to a :class:`~repro.scenarios.lifecycle.RepartitionManager`
so the placement can be retrained online — and closes a measurement window
every ``window_queries`` queries.  The windowed hit-rate series is the
experiment's primary output: flat for a stationary workload, decaying under
drift with a stale placement, and saw-toothed (decay, swap, recover) with
the lifecycle enabled.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.bandana import BandanaStore
from repro.core.config import BandanaConfig, ServingConfig
from repro.scenarios.config import RepartitionConfig
from repro.scenarios.lifecycle import RepartitionManager
from repro.scenarios.report import ScenarioReport
from repro.serving import simulate_serving
from repro.serving.report import ServingReport
from repro.utils.validation import check_fraction, check_int_at_least
from repro.workloads.trace import ModelTrace, Trace


def serving_summary(report: ServingReport) -> Dict[str, object]:
    """Compact JSON-ready slice of a :class:`~repro.serving.report.ServingReport`."""
    latency = report.latency
    return {
        "num_requests": int(report.num_requests),
        "throughput_rps": round(float(report.throughput_rps), 2),
        "p50_us": round(float(latency.p50_us), 2),
        "p95_us": round(float(latency.p95_us), 2),
        "p99_us": round(float(latency.p99_us), 2),
        "p999_us": round(float(latency.p999_us), 2),
        "mean_us": round(float(latency.mean_us), 2),
        "slo_violations": int(report.slo_violations),
        "hit_rate": round(float(report.hit_rate), 6),
    }


def run_workload_scenario(
    trace: Trace,
    *,
    config: Optional[BandanaConfig] = None,
    train_fraction: float = 0.5,
    repartition: Optional[RepartitionConfig] = None,
    window_queries: int = 100,
    warmup_queries: int = 0,
    table_name: str = "scenario",
    serving: Optional[ServingConfig] = None,
    serving_requests: Optional[int] = None,
) -> ScenarioReport:
    """Replay one scenario end to end and report the windowed hit-rate curve.

    Parameters
    ----------
    trace:
        The scenario's full access trace
        (:func:`repro.scenarios.generators.generate_scenario_trace` or a
        loaded external trace).
    config:
        Store configuration for the offline build; defaults to
        :class:`~repro.core.config.BandanaConfig`'s defaults (SHP placement,
        tuned admission threshold).
    train_fraction:
        Leading fraction of the trace the offline pipeline trains on; the
        remainder is served.  Under drift, a larger training split means a
        *staler* placement by the end of the evaluation split.
    repartition:
        When given, an online re-partitioning lifecycle observes every
        served query and retrains/swaps the placement per its cadence.
    window_queries:
        Queries per measurement window of the hit-rate series.
    warmup_queries:
        Serve this many of the *training split's last* queries through the
        store before measurement begins, so the DRAM cache starts warm on
        the trained distribution and the first windows measure the fresh
        placement at steady state instead of cold-start misses.  Warmup
        queries are excluded from every reported counter and are not fed to
        the lifecycle.
    table_name:
        Name of the single table the scenario exercises.
    serving:
        When given, an event-driven serving simulation
        (:func:`repro.serving.simulate_serving`) runs over the evaluation
        split *after* the windowed replay — on the placement that replay
        left live — and its latency tail lands in ``report.serving``.
    serving_requests:
        Optional request cap of the serving leg.
    """
    check_fraction(train_fraction, "train_fraction")
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must lie strictly between 0 and 1")
    check_int_at_least(window_queries, 1, "window_queries")
    check_int_at_least(warmup_queries, 0, "warmup_queries")

    train, evaluation = trace.split(train_fraction)
    if not train.queries or not evaluation.queries:
        raise ValueError(
            "train_fraction leaves an empty split "
            f"({len(train.queries)} train / {len(evaluation.queries)} eval queries)"
        )
    store = BandanaStore.build(ModelTrace({table_name: train}), config)
    state = store.tables[table_name]
    for query in train.queries[-warmup_queries:] if warmup_queries else []:
        store.lookup(table_name, query, gather=False)
    manager = (
        RepartitionManager(store, table_name, repartition)
        if repartition is not None
        else None
    )

    report = ScenarioReport(
        table_name=table_name,
        num_train_queries=len(train.queries),
        num_eval_queries=len(evaluation.queries),
        window_queries=window_queries,
    )
    start_hits, start_lookups = state.stats.hits, state.stats.lookups
    window_hits, window_lookups = start_hits, start_lookups
    queries_since_swap = 0
    for index, query in enumerate(evaluation.queries, start=1):
        store.lookup(table_name, query, gather=False)
        if manager is not None:
            manager.observe(query)
        else:
            queries_since_swap += 1
        if index % window_queries == 0 or index == len(evaluation.queries):
            hits, lookups = state.stats.hits, state.stats.lookups
            delta_lookups = lookups - window_lookups
            rate = (hits - window_hits) / delta_lookups if delta_lookups else 0.0
            report.window_hit_rates.append(rate)
            report.window_partition_age.append(
                manager.partition_age_queries if manager is not None else queries_since_swap
            )
            window_hits, window_lookups = hits, lookups

    total_lookups = state.stats.lookups - start_lookups
    if total_lookups:
        report.overall_hit_rate = (state.stats.hits - start_hits) / total_lookups
    report.early_hit_rate, report.late_hit_rate = ScenarioReport.quarter_means(
        report.window_hit_rates
    )
    if manager is not None:
        report.repartition = manager.summary()
    if serving is not None:
        serving_report = simulate_serving(
            store,
            ModelTrace({table_name: evaluation}),
            serving,
            num_requests=serving_requests,
            reset_first=True,
        )
        report.serving = serving_summary(serving_report)
    return report
