"""Configuration dataclasses of the adversarial-workload subsystem.

Three validated, frozen configs — the same idiom as :mod:`repro.core.config`
(every knob checked at construction, enforced by repro-lint rule R4):

* :class:`ScenarioConfig` — one adversarial access pattern (popularity
  *drift*, a *flash crowd* on previously-cold ids, or a *diurnal* load curve
  riding the MMPP arrival process).
* :class:`TraceLoaderConfig` — a streaming external-trace source (the
  Twitter production cache-trace CSV layout, or a generic columnar
  ``query_id,key`` format) normalised into the engine's dense-id contract.
* :class:`RepartitionConfig` — the online re-partitioning lifecycle that
  periodically retrains the placement on a trailing access window and swaps
  it live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.validation import (
    check_bool,
    check_fraction,
    check_int_at_least,
    check_positive,
    check_seed,
)

#: Adversarial access patterns the scenario generator can produce.
SCENARIO_KINDS = ("drift", "flash-crowd", "diurnal")

#: External trace formats the streaming loader understands.
TRACE_FORMATS = ("twitter", "columnar")

#: Placement algorithms the re-partitioning lifecycle can retrain.
REPARTITION_PARTITIONERS = ("shp", "frequency", "identity")


@dataclass(frozen=True)
class ScenarioConfig:
    """One adversarial workload scenario for a single embedding table.

    Attributes
    ----------
    kind:
        ``"drift"`` (the Zipf-popular id ranking rotates over time, so the
        hot set a placement was trained on slides out from under it),
        ``"flash-crowd"`` (a sudden traffic spike concentrated on
        previously-cold ids) or ``"diurnal"`` (a stationary id law whose
        *arrival rate* follows a day/night curve through the MMPP arrival
        process — see :func:`repro.scenarios.generators.scenario_serving_config`).
    num_queries:
        Queries in the generated trace.
    avg_lookups_per_query:
        Mean ids per query (Poisson-sized, at least one).
    num_vectors:
        Size of the table's id universe.
    zipf_alpha:
        Skew of the popularity law over the ranked ids (and over the
        community ranking).
    community_size:
        Ids per co-access community.  Communities are contiguous spans of
        the popularity ranking; a query focuses on one Zipf-chosen
        community, giving SHP real block-level structure to discover —
        exactly the structure drift destroys.
    query_locality:
        Fraction of each query's lookups drawn from its focus community;
        the rest are independent draws from the global popularity law
        (``0`` disables community structure entirely).
    drift_rotation_per_epoch:
        Fraction of the id ranking rotated at every epoch boundary
        (``0`` freezes the ranking — the stationary control arm).
    drift_epoch_queries:
        Queries per drift epoch; the ranking rotates between epochs.
    drift_start_fraction:
        Fraction of the trace before the first rotation.  Setting it to the
        training split's ``train_fraction`` models the canonical failure:
        a stationary history that starts drifting right after the offline
        pipeline trained on it (``0`` drifts from the very first epoch).
    flash_start_fraction / flash_duration_fraction:
        Where the flash crowd begins and how long it lasts, as fractions of
        the trace (``start + duration <= 1``).
    flash_crowd_ids:
        How many previously-cold ids (the bottom of the popularity ranking)
        the crowd converges on.
    flash_traffic_share:
        Fraction of in-flash lookups diverted to the crowd ids.
    diurnal_burst_factor:
        Day-rate over night-rate ratio of the diurnal arrival curve.
    diurnal_day_fraction:
        Stationary fraction of time spent in the high-rate ("day") phase.
    diurnal_period_s:
        Mean dwell of one day phase, in (simulated) seconds.
    seed:
        Seed of the generator's private random stream.
    """

    kind: str = "drift"
    num_queries: int = 2000
    avg_lookups_per_query: float = 24.0
    num_vectors: int = 4096
    zipf_alpha: float = 0.9
    community_size: int = 64
    query_locality: float = 0.8
    drift_rotation_per_epoch: float = 0.05
    drift_epoch_queries: int = 250
    drift_start_fraction: float = 0.0
    flash_start_fraction: float = 0.5
    flash_duration_fraction: float = 0.2
    flash_crowd_ids: int = 64
    flash_traffic_share: float = 0.7
    diurnal_burst_factor: float = 4.0
    diurnal_day_fraction: float = 0.5
    diurnal_period_s: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(
                f"kind must be one of {SCENARIO_KINDS}, got {self.kind!r}"
            )
        check_int_at_least(self.num_queries, 1, "num_queries")
        check_positive(self.avg_lookups_per_query, "avg_lookups_per_query")
        check_int_at_least(self.num_vectors, 2, "num_vectors")
        check_positive(self.zipf_alpha, "zipf_alpha")
        check_int_at_least(self.community_size, 1, "community_size")
        if self.community_size > self.num_vectors:
            raise ValueError(
                f"community_size ({self.community_size}) cannot exceed "
                f"num_vectors ({self.num_vectors})"
            )
        check_fraction(self.query_locality, "query_locality")
        check_fraction(self.drift_rotation_per_epoch, "drift_rotation_per_epoch")
        check_int_at_least(self.drift_epoch_queries, 1, "drift_epoch_queries")
        check_fraction(self.drift_start_fraction, "drift_start_fraction")
        check_fraction(self.flash_start_fraction, "flash_start_fraction")
        check_fraction(self.flash_duration_fraction, "flash_duration_fraction")
        if self.flash_start_fraction + self.flash_duration_fraction > 1.0:
            raise ValueError(
                "flash_start_fraction + flash_duration_fraction must be <= 1, got "
                f"{self.flash_start_fraction} + {self.flash_duration_fraction}"
            )
        check_int_at_least(self.flash_crowd_ids, 1, "flash_crowd_ids")
        if self.flash_crowd_ids > self.num_vectors:
            raise ValueError(
                f"flash_crowd_ids ({self.flash_crowd_ids}) cannot exceed "
                f"num_vectors ({self.num_vectors})"
            )
        check_fraction(self.flash_traffic_share, "flash_traffic_share")
        check_positive(self.diurnal_burst_factor, "diurnal_burst_factor")
        check_fraction(self.diurnal_day_fraction, "diurnal_day_fraction")
        if self.kind == "diurnal" and not 0 < self.diurnal_day_fraction < 1:
            raise ValueError(
                "diurnal_day_fraction must lie strictly between 0 and 1"
            )
        check_positive(self.diurnal_period_s, "diurnal_period_s")
        check_seed(self.seed, "seed")


@dataclass(frozen=True)
class TraceLoaderConfig:
    """A streaming external cache-trace source.

    Attributes
    ----------
    path:
        Path of the trace file (plain CSV; no network access).
    format:
        ``"twitter"`` — the Twitter production cache-trace CSV layout
        (``timestamp,key,key_size,value_size,client_id,operation,ttl``),
        where consecutive rows sharing ``(timestamp, client_id)`` form one
        multi-get query; or ``"columnar"`` — a generic two-column
        ``query_id,key`` layout, where consecutive rows sharing a
        ``query_id`` form one query.
    chunk_queries:
        Queries per streamed chunk (the chunked and whole-file paths are
        bit-identical for every value — pinned by the equivalence test).
    max_queries:
        Optional cap on the number of queries loaded.
    get_only:
        Twitter format only: keep ``get``/``gets`` rows and drop mutations
        (``set``, ``add``, ``delete``, ...), matching how a read-path store
        sees the trace.
    """

    path: str
    format: str = "twitter"
    chunk_queries: int = 1024
    max_queries: Optional[int] = None
    get_only: bool = True

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("path must be a non-empty file path")
        if self.format not in TRACE_FORMATS:
            raise ValueError(
                f"format must be one of {TRACE_FORMATS}, got {self.format!r}"
            )
        check_int_at_least(self.chunk_queries, 1, "chunk_queries")
        if self.max_queries is not None:
            check_int_at_least(self.max_queries, 1, "max_queries")
        check_bool(self.get_only, "get_only")


@dataclass(frozen=True)
class RepartitionConfig:
    """The online re-partitioning lifecycle.

    Attributes
    ----------
    cadence_queries:
        A retrain is triggered every ``cadence_queries`` served queries.
    window_queries:
        Trailing access window the retrain sees (most recent queries).
    min_window_queries:
        A trigger with fewer observed queries than this is skipped (too
        little signal to retrain on).
    blackout_queries:
        Simulated retrain cost: the freshly trained placement is swapped in
        only after this many further queries have been served on the stale
        placement (an asynchronous retrain that takes time to land).
    partitioner:
        Placement algorithm retrained at each trigger
        (:data:`REPARTITION_PARTITIONERS`).
    shp_iterations:
        Refinement iterations per SHP bisection when retraining SHP.
    refresh_access_counts:
        Also refresh the admission policy's per-vector access counts from
        the trailing window at each swap (scaled to the original counts'
        total so the tuned threshold keeps its selectivity).
    retain_cache:
        Keep DRAM residency across a swap (the default: cache entries are
        keyed by vector id, which re-laying-out NVM blocks does not
        invalidate).  ``False`` restarts the cache cold at each swap, for
        modelling systems that flush DRAM on re-layout.
    seed:
        Seed of the retrained partitioner.
    """

    cadence_queries: int = 500
    window_queries: int = 1000
    min_window_queries: int = 64
    blackout_queries: int = 0
    partitioner: str = "shp"
    shp_iterations: int = 8
    refresh_access_counts: bool = True
    retain_cache: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        check_int_at_least(self.cadence_queries, 1, "cadence_queries")
        check_int_at_least(self.window_queries, 1, "window_queries")
        check_int_at_least(self.min_window_queries, 1, "min_window_queries")
        check_int_at_least(self.blackout_queries, 0, "blackout_queries")
        if self.partitioner not in REPARTITION_PARTITIONERS:
            raise ValueError(
                f"partitioner must be one of {REPARTITION_PARTITIONERS}, "
                f"got {self.partitioner!r}"
            )
        check_int_at_least(self.shp_iterations, 1, "shp_iterations")
        check_bool(self.refresh_access_counts, "refresh_access_counts")
        check_bool(self.retain_cache, "retain_cache")
        check_seed(self.seed, "seed")
