"""Adversarial workload subsystem: traces the offline pipeline never saw.

Bandana (Eisenman et al., MLSys'19) trains everything offline — the SHP
placement, the admission thresholds, the DRAM split — on a historical trace,
and then serves a workload assumed to look like that history.  This package
supplies the workloads that *break* the assumption, plus the online
re-partitioning lifecycle that repairs it:

* :mod:`repro.scenarios.generators` — synthetic adversaries: popularity
  **drift**, **flash crowds** on cold ids, **diurnal** load curves.
* :mod:`repro.scenarios.loader` — a two-pass streaming loader for external
  cache traces (Twitter CSV layout and a generic columnar format),
  normalised into the dense-id contract and characterised against the
  paper's Table 1.
* :mod:`repro.scenarios.lifecycle` — :class:`RepartitionManager`, which
  retrains the placement on a trailing window and swaps it live.
* :mod:`repro.scenarios.runner` — :func:`run_workload_scenario`, the
  windowed replay tying it together.

Worked example — drift breaks SHP, the lifecycle buys it back::

    from repro.scenarios import (
        RepartitionConfig, ScenarioConfig,
        generate_scenario_trace, run_workload_scenario,
    )

    # A Zipf workload whose popularity ranking rotates 8% every 200 queries.
    config = ScenarioConfig(
        kind="drift", num_queries=3000, num_vectors=2048,
        drift_rotation_per_epoch=0.08, drift_epoch_queries=200, seed=7,
    )
    trace = generate_scenario_trace(config)

    # Offline-only Bandana: train SHP on the first half, serve the second.
    stale = run_workload_scenario(trace, train_fraction=0.5)
    # The placement was trained on epochs whose hot set has since rotated
    # away: the windowed hit-rate series decays, and
    # stale.hit_rate_decay (early minus late window hit rate) is large.

    # Same trace, with the lifecycle retraining SHP every 400 queries on a
    # trailing 800-query window.
    repaired = run_workload_scenario(
        trace, train_fraction=0.5,
        repartition=RepartitionConfig(cadence_queries=400, window_queries=800),
    )
    # repaired.late_hit_rate recovers most of the stale run's loss;
    # repaired.repartition["churn"] shows how much placement each swap moved.

Determinism: every run is a pure function of (trace, config, seed) — the
golden pins in ``tests/test_scenarios.py`` and the perf-track gate on
``BENCH_scenarios.json`` rely on it.
"""

from repro.scenarios.config import (
    REPARTITION_PARTITIONERS,
    SCENARIO_KINDS,
    TRACE_FORMATS,
    RepartitionConfig,
    ScenarioConfig,
    TraceLoaderConfig,
)
from repro.scenarios.generators import generate_scenario_trace, scenario_serving_config
from repro.scenarios.lifecycle import RepartitionManager, layout_churn
from repro.scenarios.loader import (
    LoadedTrace,
    build_remapper,
    characterization_report,
    hash_key,
    iter_dense_chunks,
    iter_sparse_queries,
    load_trace,
)
from repro.scenarios.report import ScenarioReport
from repro.scenarios.runner import run_workload_scenario, serving_summary

__all__ = [
    "SCENARIO_KINDS",
    "TRACE_FORMATS",
    "REPARTITION_PARTITIONERS",
    "ScenarioConfig",
    "TraceLoaderConfig",
    "RepartitionConfig",
    "generate_scenario_trace",
    "scenario_serving_config",
    "RepartitionManager",
    "layout_churn",
    "LoadedTrace",
    "build_remapper",
    "characterization_report",
    "hash_key",
    "iter_dense_chunks",
    "iter_sparse_queries",
    "load_trace",
    "ScenarioReport",
    "run_workload_scenario",
    "serving_summary",
]
