"""Miniature-cache simulation for choosing the prefetch-admission threshold.

The optimal access threshold ``t`` of the paper's admission policy varies with
the table and the cache size (Figure 12), so Bandana picks it *per table, per
cache size* by simulating several small caches (Section 4.3.3, following
Waldspurger et al., ATC'17):

1. spatially hash-sample the request stream at rate ``1/N`` (the same vector
   id is always either sampled or not),
2. scale the cache down by the same factor,
3. replay the sampled stream through the scaled cache once per candidate
   threshold, and
4. pick the threshold whose miniature simulation reads the fewest NVM blocks.

Because the miniature caches store only ids and see only ``1/N`` of the
traffic, the whole search costs a small fraction of serving the real traffic.
:class:`MiniatureCacheTuner` implements the search;
:meth:`MiniatureCacheTuner.select_threshold` reproduces the paper's Table 2.

By default the search runs in *single-pass multi-threshold* mode on the
vectorized batch engine (:mod:`repro.caching.engine`): the sampled stream is
walked once, feeding the no-prefetch baseline and every candidate threshold's
miniature cache simultaneously, instead of one full replay per threshold.
The counters are bit-identical to per-threshold reference replays
(``use_batched_engine=False`` restores the reference loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.caching.policies import AccessThresholdPolicy, NoPrefetchPolicy
from repro.caching.replay import ReplayStats, effective_bandwidth_increase, replay_table_cache
from repro.nvm.block import BlockLayout
from repro.utils.sampling import sample_queries_spatially
from repro.utils.validation import check_fraction, check_positive
from repro.workloads.trace import Trace

#: Candidate thresholds the paper sweeps in Figure 12 / Table 2.
DEFAULT_THRESHOLDS = (0, 5, 10, 15, 20)


@dataclass
class ThresholdSelection:
    """Result of a miniature-cache threshold search for one table/cache size.

    Attributes
    ----------
    threshold:
        The selected admission threshold ``t``.
    sampling_rate:
        The sampling rate the decision was made at (1.0 = full cache oracle).
    miniature_cache_size:
        Capacity (in vectors) of the miniature cache that was simulated.
    gains:
        Effective-bandwidth increase measured in the miniature simulation for
        every candidate threshold (relative to the miniature no-prefetch
        baseline).
    baseline_stats / per_threshold_stats:
        Raw replay statistics, kept for inspection and reporting.
    """

    threshold: float
    sampling_rate: float
    miniature_cache_size: int
    gains: Dict[float, float] = field(default_factory=dict)
    baseline_stats: Optional[ReplayStats] = None
    per_threshold_stats: Dict[float, ReplayStats] = field(default_factory=dict)


class MiniatureCacheTuner:
    """Selects prefetch-admission thresholds by simulating miniature caches.

    Parameters
    ----------
    sampling_rate:
        Fraction of vector ids (spatially sampled) included in the miniature
        simulation.  The paper finds 0.001 (0.1 %) is sufficient.
    seed:
        Seed of the sampling hash.
    thresholds:
        Candidate thresholds to evaluate; defaults to the paper's sweep.
    vector_bytes:
        Bytes per vector, used only for bandwidth bookkeeping.
    use_batched_engine:
        Evaluate all thresholds in one pass over the sampled stream with the
        vectorized batch engine (default).  ``False`` replays the reference
        loop once per threshold; the resulting statistics are identical.
    """

    def __init__(
        self,
        sampling_rate: float = 0.001,
        seed: int = 0,
        thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
        vector_bytes: int = 128,
        use_batched_engine: bool = True,
    ) -> None:
        check_fraction(sampling_rate, "sampling_rate")
        if sampling_rate <= 0:
            raise ValueError("sampling_rate must be > 0")
        check_positive(vector_bytes, "vector_bytes")
        if not len(thresholds):
            raise ValueError("thresholds must not be empty")
        self.sampling_rate = float(sampling_rate)
        self.seed = int(seed)
        self.thresholds = tuple(float(t) for t in thresholds)
        self.vector_bytes = int(vector_bytes)
        self.use_batched_engine = bool(use_batched_engine)

    def select_threshold(
        self,
        trace: Trace,
        layout: BlockLayout,
        access_counts: np.ndarray,
        cache_size: int,
    ) -> ThresholdSelection:
        """Pick the admission threshold for one table at one cache size.

        Parameters
        ----------
        trace:
            The tuning trace (in production this is a sampled slice of live
            traffic; the benchmarks use a slice of the training trace).
        layout:
            The table's block layout (typically produced by SHP).
        access_counts:
            Per-vector access counts from the SHP training run — the statistic
            the admission policy thresholds on.
        cache_size:
            The *real* cache size in vectors; the miniature cache is scaled by
            the sampling rate.
        """
        check_positive(cache_size, "cache_size")
        access_counts = np.asarray(access_counts, dtype=np.int64)
        sampled_queries = self._sample(trace)
        return self._select_from_sampled(
            sampled_queries, layout, access_counts, int(cache_size)
        )

    def select_thresholds_for_sizes(
        self,
        trace: Trace,
        layout: BlockLayout,
        access_counts: np.ndarray,
        cache_sizes: Sequence[int],
    ) -> Dict[int, ThresholdSelection]:
        """Run the threshold search for several cache sizes (Table 2 rows).

        The spatial sampling of the trace does not depend on the cache size,
        so the stream is sampled once and reused across all sizes.
        """
        for size in cache_sizes:
            check_positive(int(size), "cache_size")
        access_counts = np.asarray(access_counts, dtype=np.int64)
        sampled_queries = self._sample(trace)
        return {
            int(size): self._select_from_sampled(
                sampled_queries, layout, access_counts, int(size)
            )
            for size in cache_sizes
        }

    # ----------------------------------------------------------------- private
    def _sample(self, trace: Trace) -> List[np.ndarray]:
        """Spatially sample the tuning stream (shared across cache sizes)."""
        if self.sampling_rate >= 1.0:
            return list(trace.queries)
        return sample_queries_spatially(
            trace.queries, self.sampling_rate, seed=self.seed
        )

    def _mini_cache_size(self, cache_size: int) -> int:
        if self.sampling_rate >= 1.0:
            return int(cache_size)
        return max(1, int(round(cache_size * self.sampling_rate)))

    def _select_from_sampled(
        self,
        sampled_queries: List[np.ndarray],
        layout: BlockLayout,
        access_counts: np.ndarray,
        cache_size: int,
    ) -> ThresholdSelection:
        mini_cache_size = self._mini_cache_size(cache_size)
        policies = [NoPrefetchPolicy()] + [
            AccessThresholdPolicy(access_counts, threshold)
            for threshold in self.thresholds
        ]
        if self.use_batched_engine:
            from repro.caching.engine import replay_table_cache_multi

            all_stats = replay_table_cache_multi(
                sampled_queries,
                layout,
                policies,
                cache_sizes=[mini_cache_size] * len(policies),
                vector_bytes=self.vector_bytes,
            )
        else:
            all_stats = [
                replay_table_cache(
                    sampled_queries,
                    layout,
                    policy,
                    cache_size=mini_cache_size,
                    vector_bytes=self.vector_bytes,
                )
                for policy in policies
            ]
        baseline = all_stats[0]

        gains: Dict[float, float] = {}
        per_threshold: Dict[float, ReplayStats] = {}
        best_threshold = self.thresholds[0]
        best_gain = -np.inf
        for threshold, stats in zip(self.thresholds, all_stats[1:]):
            gain = effective_bandwidth_increase(baseline, stats)
            gains[threshold] = gain
            per_threshold[threshold] = stats
            if gain > best_gain:
                best_gain = gain
                best_threshold = threshold

        return ThresholdSelection(
            threshold=best_threshold,
            sampling_rate=self.sampling_rate,
            miniature_cache_size=mini_cache_size,
            gains=gains,
            baseline_stats=baseline,
            per_threshold_stats=per_threshold,
        )
