"""Vectorized batch replay engine: the array-native fast path of the cache stack.

Reference-vs-fast-path contract
-------------------------------
:func:`repro.caching.replay.replay_table_cache` is the *reference model*: a
pure-Python per-vector loop over a dict+heap :class:`~repro.caching.lru.LRUCache`
that mirrors the paper's prose one statement at a time.  It stays the source
of truth for what every counter means.  This module is the *fast path*: the
same simulation recast as batched NumPy kernels.  The contract between the two
is strict — for any trace, layout, policy and cache size, the fast path must
produce **bit-identical** :class:`~repro.caching.replay.ReplayStats` counters
(``lookups``, ``hits``, ``misses``, ``prefetch_admitted``, ``prefetch_hits``,
``prefetch_evicted_unused``, ``evictions``, ``total_latency_us``).  Speed must
never silently change the modeled numbers; ``tests/test_engine_equivalence.py``
enforces the contract on randomized traces across all policies and cache sizes.

How the vectorization works
---------------------------
* :class:`ArrayLRUCache` replaces the dict+heap cache with flat NumPy arrays
  indexed by vector id — a ``float64`` recency-priority array and a boolean
  residency array — plus the same lazy-deletion eviction heap as the
  reference, so eviction order (including priority ties, which the heap breaks
  by id) is reproduced exactly.  Bulk top-of-queue stamps append to the heap
  in one call: because freshly stamped priorities exceed everything already
  stored, appending them in increasing order preserves the heap invariant.
* :class:`BatchReplayEngine` walks each query as alternating segments: a
  maximal *run of hits* (classified in one residency-array gather) is counted,
  recorded with the policy and promoted in bulk; the following *demand miss*
  reads its block and offers the non-resident co-residents to the policy
  through the vectorized ``admit_batch`` API in one call.
* When no eviction can occur (the common case for adequately sized and
  unlimited caches) the admitted vectors are stamped in bulk, with insertion
  priorities computed by the same float expression the reference uses so the
  bits match.  When an eviction *could* occur — or an insertion priority would
  dip below the current queue bottom, where sequencing matters — the engine
  falls back to an exact per-vector path over the same array cache.

The engine requires ``admit`` to be a pure function of the candidate id and
the policy's current state (true for all six built-in policies): it may be
called for candidates the reference loop would have skipped as
already-resident.  Stateful ``record_access`` is fully supported and is
invoked in exactly the reference order.

Multi-cache replay
------------------
:func:`replay_table_cache_multi` replays one stream through many independent
caches/policies in a single pass, sharing the per-query id/block gathers.
:class:`~repro.caching.miniature.MiniatureCacheTuner` uses it to evaluate all
candidate admission thresholds with one walk over the sampled stream.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.caching.policies import PrefetchPolicy
from repro.caching.replay import ReplayStats
from repro.nvm.block import BlockLayout
from repro.nvm.device import NVMDevice
from repro.utils.validation import check_non_negative, check_positive


class ArrayLRUCache:
    """Array-backed positional-insertion LRU over a bounded id universe.

    Semantically equivalent to :class:`~repro.caching.lru.LRUCache` for keys
    in ``[0, num_slots)``, but stores recency priorities in flat NumPy arrays
    indexed by key so that membership tests, promotions and top-of-queue
    insertions can be executed for whole batches of keys at once.  Eviction
    uses the same lazy-deletion heap (with the same ``(priority, key)``
    tie-breaking) as the reference cache, compacted whenever stale entries
    outnumber live ones.

    Parameters
    ----------
    capacity:
        Maximum number of resident keys (0 stores nothing).
    num_slots:
        Size of the id universe; every key must be in ``[0, num_slots)``.
    """

    #: Compact the lazy heap only once it exceeds this many entries.
    _COMPACT_MIN = 64

    def __init__(self, capacity: int, num_slots: int) -> None:
        check_non_negative(capacity, "capacity")
        check_positive(num_slots, "num_slots")
        self.capacity = int(capacity)
        self.num_slots = int(num_slots)
        self._prio = np.zeros(self.num_slots, dtype=np.float64)
        self._resident = np.zeros(self.num_slots, dtype=bool)
        self._clock = 0.0
        self._live = 0
        self._evictions = 0
        self._heap: List[Tuple[float, int]] = []
        self._next_compact_check = self._COMPACT_MIN
        # A cache that can hold the whole id universe never evicts, so no
        # eviction order needs to be tracked at all; the heap is materialised
        # lazily (from the priority arrays) if a min-query ever happens.
        self._track_order = self.capacity < self.num_slots

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return self._live

    def __contains__(self, key: int) -> bool:
        return bool(self._resident[key])

    def peek(self, key: int) -> bool:
        """Membership test that does not change recency."""
        return bool(self._resident[key])

    @property
    def evictions(self) -> int:
        """Number of entries evicted so far."""
        return self._evictions

    def resident_mask(self, keys: np.ndarray) -> np.ndarray:
        """Boolean residency of every key in ``keys`` (one gather)."""
        return self._resident[keys]

    def keys(self) -> List[int]:
        """Resident keys ordered from most- to least-recently prioritised."""
        ids = np.flatnonzero(self._resident)
        return ids[np.argsort(-self._prio[ids], kind="stable")].tolist()

    def clear(self) -> None:
        """Drop all entries and reset the eviction counter."""
        self._resident[:] = False
        self._prio[:] = 0.0
        self._heap.clear()
        self._clock = 0.0
        self._live = 0
        self._evictions = 0
        self._next_compact_check = self._COMPACT_MIN
        self._track_order = self.capacity < self.num_slots

    # ------------------------------------------------------------------- bulk
    def promote_batch(self, keys: np.ndarray) -> None:
        """Stamp already-resident ``keys`` with fresh top priorities, in order.

        Equivalent to calling ``get`` on each key in sequence: the i-th key
        receives priority ``clock + i + 1`` and duplicate keys keep their last
        stamp.  All keys must currently be resident.
        """
        n = int(keys.size)
        if n == 0:
            return
        if not self._track_order:
            if n < 8:
                clock = self._clock
                prio = self._prio
                for key in keys.tolist():
                    clock += 1.0
                    prio[key] = clock
                self._clock = clock
            else:
                self._prio[keys] = self._clock + 1.0 + np.arange(n, dtype=np.float64)
                self._clock += float(n)
            return
        if n < 8:
            # Scalar path: numpy vector-op overhead dominates on tiny runs.
            clock = self._clock
            prio = self._prio
            append = self._heap.append
            for key in keys.tolist():
                clock += 1.0
                prio[key] = clock
                append((clock, key))
            self._clock = clock
        else:
            prios = self._clock + 1.0 + np.arange(n, dtype=np.float64)
            self._prio[keys] = prios  # duplicate keys: last assignment wins
            # Fresh top priorities exceed everything stored, so appending them
            # in increasing order preserves the heap invariant without a
            # heapify.
            self._heap.extend(zip(prios.tolist(), keys.tolist()))
            self._clock += float(n)
        if len(self._heap) >= self._next_compact_check:
            self._maybe_compact()

    def stamp_top(self, key: int) -> None:
        """Insert or promote one key at the top of the queue (no eviction)."""
        self._clock += 1.0
        if not self._resident[key]:
            self._resident[key] = True
            self._live += 1
        self._prio[key] = self._clock
        if self._track_order:
            self._heap.append((self._clock, key))
            if len(self._heap) >= self._next_compact_check:
                self._maybe_compact()

    def stamp_bulk(
        self, keys: np.ndarray, prios: Optional[np.ndarray], all_top: bool
    ) -> None:
        """Insert distinct non-resident ``keys`` with precomputed priorities.

        The caller guarantees the priorities replicate what sequential
        ``insert`` calls would have produced and that no eviction is needed.
        ``all_top`` marks priorities that are fresh clock stamps (append-safe,
        and derivable from the clock — pass ``prios=None``); interpolated
        priorities go through ``heappush`` to keep the heap valid.
        """
        n = int(keys.size)
        if n == 0:
            return
        track = self._track_order
        if all_top and n < 8:
            clock = self._clock
            prio = self._prio
            resident = self._resident
            append = self._heap.append
            for key in keys.tolist():
                clock += 1.0
                prio[key] = clock
                resident[key] = True
                if track:
                    append((clock, key))
            self._clock = clock
            self._live += n
        else:
            if prios is None:
                prios = self._clock + 1.0 + np.arange(n, dtype=np.float64)
            self._prio[keys] = prios
            self._resident[keys] = True
            self._live += n
            if track:
                if all_top:
                    self._heap.extend(zip(prios.tolist(), keys.tolist()))
                else:
                    for pair in zip(prios.tolist(), keys.tolist()):
                        heapq.heappush(self._heap, pair)
            self._clock += float(n)
        if track and len(self._heap) >= self._next_compact_check:
            self._maybe_compact()

    # ----------------------------------------------------------------- scalar
    def insert_at(self, key: int, position: float) -> Optional[int]:
        """Insert ``key`` at a queue position, exactly like ``LRUCache.insert``.

        Returns the evicted key, if any.  This is the exact sequential path;
        the float expression matches the reference implementation bit for bit.
        """
        if self.capacity == 0:
            return None
        evicted = None
        if not self._resident[key] and self._live >= self.capacity:
            evicted = self._evict_one()
        self._clock += 1.0
        top = self._clock
        if position <= 0.0 or self._live == 0:
            priority = top
        else:
            bottom = self._min_priority()
            priority = top - position * (top - bottom) - position * 1e-9
        if not self._resident[key]:
            self._resident[key] = True
            self._live += 1
        self._prio[key] = priority
        if self._track_order:
            heapq.heappush(self._heap, (priority, key))
            if len(self._heap) >= self._next_compact_check:
                self._maybe_compact()
        return evicted

    # ----------------------------------------------------------------- private
    def _min_priority(self) -> float:
        """Priority of the current LRU bottom (cleaning stale heap entries)."""
        if not self._track_order:
            self._materialise_order()
        while self._heap:
            priority, key = self._heap[0]
            if self._resident[key] and self._prio[key] == priority:
                return priority
            heapq.heappop(self._heap)
        return self._clock

    def _evict_one(self) -> Optional[int]:
        if not self._track_order:
            self._materialise_order()
        while self._heap:
            priority, key = heapq.heappop(self._heap)
            if self._resident[key] and self._prio[key] == priority:
                self._resident[key] = False
                self._live -= 1
                self._evictions += 1
                return key
        # Unreachable while every stamp is pushed to the heap; kept as a
        # safety net mirroring the reference implementation.
        if self._live:
            ids = np.flatnonzero(self._resident)
            key = int(ids[np.argmin(self._prio[ids])])
            self._resident[key] = False
            self._live -= 1
            self._evictions += 1
            return key
        return None

    def _materialise_order(self) -> None:
        """Build the eviction heap from the priority arrays on first demand."""
        ids = np.flatnonzero(self._resident)
        self._heap = list(zip(self._prio[ids].tolist(), ids.tolist()))
        heapq.heapify(self._heap)
        self._track_order = True
        self._next_compact_check = max(2 * len(self._heap), self._COMPACT_MIN)

    def _maybe_compact(self) -> None:
        if len(self._heap) > self._COMPACT_MIN and len(self._heap) > 3 * self._live:
            # Filter the heap itself (scales with the heap, not with the id
            # universe) and re-heapify the surviving valid entries.
            entries = np.array(self._heap, dtype=np.float64)
            keys = entries[:, 1].astype(np.int64)
            valid = self._resident[keys]
            valid &= self._prio[keys] == entries[:, 0]
            self._heap = list(
                zip(entries[valid, 0].tolist(), keys[valid].tolist())
            )
            heapq.heapify(self._heap)
        # Amortise the next check against the current heap size so the test
        # itself stays out of the per-stamp hot path.
        self._next_compact_check = max(2 * len(self._heap), self._COMPACT_MIN)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrayLRUCache(capacity={self.capacity}, num_slots={self.num_slots}, "
            f"live={self._live})"
        )


class BatchReplayEngine:
    """Array-native replay of lookup queries against one table's DRAM cache.

    Processes whole queries at a time and accumulates the same
    :class:`~repro.caching.replay.ReplayStats` the reference loop would.  The
    engine owns its :class:`ArrayLRUCache` and the pending-prefetch residency
    array, so it can be kept alive across calls for online serving (the role
    the ``cache=`` argument plays for the reference loop).  Unlike repeated
    reference-loop calls — which reset their function-local pending-prefetch
    set each time, losing prefetch-hit attribution — the engine carries that
    state, so serving a stream over many calls produces exactly the counters
    of one uninterrupted reference replay of the concatenated stream.

    Parameters mirror :func:`repro.caching.replay.replay_table_cache`.
    """

    def __init__(
        self,
        layout: BlockLayout,
        policy: PrefetchPolicy,
        cache_size: Optional[int] = None,
        vector_bytes: int = 128,
        device: Optional[NVMDevice] = None,
        queue_depth: float = 8.0,
        stats: Optional[ReplayStats] = None,
    ) -> None:
        check_positive(vector_bytes, "vector_bytes")
        block_bytes = layout.vectors_per_block * vector_bytes
        if stats is None:
            stats = ReplayStats(vector_bytes=vector_bytes, block_bytes=block_bytes)
        elif (stats.vector_bytes, stats.block_bytes) != (vector_bytes, block_bytes):
            raise ValueError("existing stats were created with a different geometry")
        capacity = layout.num_vectors if cache_size is None else int(cache_size)
        self.layout = layout
        self.policy = policy
        self.cache = ArrayLRUCache(capacity, layout.num_vectors)
        self.stats = stats
        self.device = device
        self.queue_depth = float(queue_depth)
        # Vectors currently resident because of a prefetch and not yet demanded.
        self._pending = np.zeros(layout.num_vectors, dtype=bool)
        self._num_pending = 0
        # Hot-path views of the layout (id -> block, physical order).
        self._block_arr = layout.block_of(np.arange(layout.num_vectors, dtype=np.int64))
        self._order = layout.order
        self._vectors_per_block = layout.vectors_per_block
        self._num_vectors = layout.num_vectors
        # Policy capabilities resolved once (see PrefetchPolicy class attrs).
        self._never_admits = bool(policy.never_admits)
        self._always_top = bool(policy.always_top_positions)
        self._skip_record = (
            type(policy).record_access is PrefetchPolicy.record_access
            and type(policy).record_access_batch is PrefetchPolicy.record_access_batch
        )
        # A policy that implements only the batch hook must still observe
        # demand misses: route them through record_access_batch.
        self._record_miss_batched = (
            type(policy).record_access is PrefetchPolicy.record_access
            and type(policy).record_access_batch is not PrefetchPolicy.record_access_batch
        )
        # Per-block admission cache for policies whose admit decisions are
        # constant over the replay: block id -> (positions, admit mask).
        self._static_admit = bool(policy.admit_is_static)
        self._block_admit: dict = {}

    # ---------------------------------------------------------------- replay
    def replay(self, queries: Iterable[np.ndarray]) -> ReplayStats:
        """Replay an iterable of id arrays and return the accumulated stats.

        Query boundaries carry no state in the replay semantics, so the whole
        stream is concatenated and processed as one array — hit runs then
        span query boundaries, which is where the bulk processing pays most.
        """
        arrays = [np.asarray(query, dtype=np.int64) for query in queries]
        if not arrays:
            return self.stats
        self.replay_query(np.concatenate(arrays) if len(arrays) > 1 else arrays[0])
        return self.stats

    def replay_query(self, ids: npt.ArrayLike, validate: bool = True) -> None:
        """Replay one query (an id array) against the cache.

        ``validate=False`` skips the per-query id range check when the caller
        (e.g. :func:`replay_table_cache_multi`) has already performed it.
        """
        ids = np.asarray(ids, dtype=np.int64)
        n = int(ids.size)
        if n == 0:
            return
        if validate and (int(ids.min()) < 0 or int(ids.max()) >= self._num_vectors):
            raise IndexError(
                f"vector ids must be in [0, {self._num_vectors}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )
        stats = self.stats
        cache = self.cache
        resident = cache._resident
        pending = self._pending
        policy = self.policy
        skip_record = self._skip_record
        # The residency gather is bounded by an adaptive window that tracks
        # the typical hit-run length: it doubles while whole windows hit and
        # halves on every miss, so miss-heavy stretches pay O(run) per scan
        # instead of O(window), and hit-heavy stretches scan in big strides.
        window = 64
        i = 0
        while i < n:
            upper = i + window
            if upper > n:
                upper = n
            tail_res = resident[ids[i:upper]]
            j_rel = int(tail_res.argmin())  # first False, or 0 if all True
            if tail_res[j_rel]:
                j = upper
                if window < 8192:
                    window <<= 1
            else:
                j = i + j_rel
                if window > 32:
                    window >>= 1
            if j > i:
                # Maximal run of hits: residency cannot change inside it, so
                # the whole run is counted, recorded and promoted in bulk.
                run = ids[i:j]
                count = j - i
                stats.lookups += count
                stats.hits += count
                if not skip_record:
                    policy.record_access_batch(run)
                if self._num_pending:
                    pend = pending[run]
                    if pend.any():
                        hit_pending = np.unique(run[pend])
                        stats.prefetch_hits += int(hit_pending.size)
                        pending[hit_pending] = False
                        self._num_pending -= int(hit_pending.size)
                cache.promote_batch(run)
                i = j
                if i >= n:
                    break
                if j == upper:
                    continue  # pure window boundary, not a classified miss
            # Demand miss: read the block holding the vector.
            vid = int(ids[i])
            stats.lookups += 1
            if not skip_record:
                if self._record_miss_batched:
                    policy.record_access_batch(ids[i : i + 1])
                else:
                    policy.record_access(vid)
            stats.misses += 1
            if self.device is not None:
                result = self.device.read_block(
                    int(self._block_arr[vid]), queue_depth=self.queue_depth
                )
                stats.total_latency_us += result.latency_us
            self._process_miss(vid)
            i += 1

    # ---------------------------------------------------------------- private
    def _process_miss(self, vid: int) -> None:
        """Insert the demanded vector and run bulk prefetch admission.

        The demand vector is inserted *first* (exactly the reference order),
        so the block-residency gather that follows sees any eviction the
        demand insert caused — an initially-resident neighbour evicted here
        re-enters the candidate set naturally, and the demand vector itself is
        excluded from the candidates by its own residency.
        """
        cache = self.cache
        stats = self.stats
        capacity = cache.capacity
        if capacity == 0:
            # Nothing is ever stored: inserts are no-ops and no admission is
            # observable (admit is pure), exactly as in the reference loop.
            return
        # Demand insertion at the top of the queue, evicting if needed.
        if cache._live >= capacity:
            evicted = cache._evict_one()
            stats.evictions += 1
            if self._pending[evicted]:
                self._pending[evicted] = False
                self._num_pending -= 1
                stats.prefetch_evicted_unused += 1
        cache.stamp_top(vid)
        if self._pending[vid]:  # defensive: pending implies resident
            self._pending[vid] = False
            self._num_pending -= 1
        if self._never_admits:
            return

        # Offer the rest of the block to the prefetch policy, in slot order.
        # The demand vector is resident now, so its own residency excludes it
        # from the candidates (matching the reference loop's explicit check).
        bid = int(self._block_arr[vid])
        start = bid * self._vectors_per_block
        neighbours = self._order[start : start + self._vectors_per_block]
        if self._static_admit:
            entry = self._block_admit.get(bid)
            if entry is None:
                positions = np.asarray(self.policy.admit_batch(neighbours), dtype=np.float64)
                admit_ok = ~np.isnan(positions)
                entry = (positions, admit_ok, bool(admit_ok.any()))
                self._block_admit[bid] = entry
            positions, admit_ok, any_admits = entry
            if not any_admits:
                return
        else:
            positions = np.asarray(self.policy.admit_batch(neighbours), dtype=np.float64)
            admit_ok = ~np.isnan(positions)
        res_mask = cache._resident[neighbours]
        adm_mask = admit_ok > res_mask  # admit_ok & ~res_mask in one ufunc
        admitted = neighbours[adm_mask]
        m = int(admitted.size)
        if m == 0:
            return
        live = cache._live
        excess = live + m - capacity
        all_top = self._always_top
        if not all_top:
            pos = positions[adm_mask]
            all_top = not bool(np.any(pos != 0.0))

        if excess <= 0:
            # No eviction can occur in the admission sweep: stamp in bulk.
            if all_top:
                prios = None
            else:
                bottom = cache._min_priority()
                tops = cache._clock + 1.0 + np.arange(m, dtype=np.float64)
                # Same expression (and float op order) as LRUCache.insert.
                prios = tops - pos * (tops - bottom) - pos * 1e-9
                if not bool(np.all(prios > bottom)):
                    # A priority would land at or below the current queue
                    # bottom, so later insertions would see a different
                    # bottom: sequencing matters — take the exact path.
                    self._admit_sequential(vid, neighbours, positions)
                    return
            cache.stamp_bulk(admitted, prios, all_top=all_top)
            stats.prefetch_admitted += m
            self._pending[admitted] = True
            self._num_pending += m
            return

        if not all_top:
            # Interpolated insertions with evictions interact through the
            # moving queue bottom: take the exact sequential path.
            self._admit_sequential(vid, neighbours, positions)
            return

        self._admit_bulk_evicting(vid, neighbours, res_mask, adm_mask, admitted, positions, excess)

    def _admit_bulk_evicting(
        self,
        vid: int,
        neighbours: np.ndarray,
        res_mask: np.ndarray,
        adm_mask: np.ndarray,
        admitted: np.ndarray,
        positions: np.ndarray,
        excess: int,
    ) -> None:
        """Top-of-queue admission sweep when evictions are required.

        All insertions stamp fresh (maximal) priorities, so the evicted set is
        the ``excess`` smallest priorities of the union of the old entries and
        the new stamps — old entries in priority order first, then the new
        stamps in insertion order.  The one way sequencing can still leak into
        the result is the *flip* hazard: an eviction may remove an
        initially-resident block neighbour before the reference loop would
        have examined it, turning a skip into an admission.  The old evicted
        entries are therefore popped (non-destructively for residency) and
        checked first; a detected flip pushes them back and defers to the
        exact sequential path.
        """
        cache = self.cache
        stats = self.stats
        pending = self._pending
        m = int(admitted.size)
        live = cache._live
        heap = cache._heap
        resident = cache._resident
        prio = cache._prio

        # Pop the old entries that will be evicted (skipping stale entries,
        # which is unobservable). Valid entries exist for every resident key.
        num_old = excess if excess < live else live
        old_evicted: List[Tuple[float, int]] = []
        heappop = heapq.heappop
        for _ in range(num_old):
            while True:
                entry = heappop(heap)
                key = entry[1]
                if resident[key] and prio[key] == entry[0]:
                    old_evicted.append(entry)
                    break

        # Flip detection: admission j evicts once live + j reaches capacity,
        # so the k-th eviction happens while examination stands at the block
        # slot of admission first + k; an initially-resident neighbour at a
        # later slot that gets evicted here would be re-examined (and possibly
        # admitted) by the reference loop.  The popped priorities are the
        # globally smallest, so comparing against the youngest of them rules
        # out any overlap with the block's residents in one vector op.
        if old_evicted and bool(res_mask.any()):
            res_nb = neighbours[res_mask]
            if old_evicted[-1][0] >= float(prio[res_nb].min()):
                rpos = {
                    int(key): int(index)
                    for index, key in zip(np.flatnonzero(res_mask), res_nb)
                    if key != vid
                }
                if rpos:
                    apos = np.flatnonzero(adm_mask)
                    first = cache.capacity - live
                    if first < 0:
                        first = 0
                    admit = self.policy.admit
                    for k, (_, key) in enumerate(old_evicted):
                        px = rpos.get(key)
                        if px is None:
                            continue
                        if px > int(apos[first + k]) and admit(key) is not None:
                            # Genuine flip: the reference loop would have
                            # admitted this neighbour after its eviction.
                            # Restore and replay the admission sweep exactly.
                            for entry in old_evicted:
                                heapq.heappush(heap, entry)
                            self._admit_sequential(vid, neighbours, positions)
                            return

        # Commit the old evictions.
        for _, key in old_evicted:
            resident[key] = False
            cache._evictions += 1
            stats.evictions += 1
            if pending[key]:
                pending[key] = False
                self._num_pending -= 1
                stats.prefetch_evicted_unused += 1
        cache._live = live - num_old

        # Stamp the admitted neighbours in one batch.
        prios = cache._clock + 1.0 + np.arange(m, dtype=np.float64)
        prio[admitted] = prios
        resident[admitted] = True
        heap.extend(zip(prios.tolist(), admitted.tolist()))
        cache._clock += float(m)
        cache._live += m
        stats.prefetch_admitted += m
        pending[admitted] = True
        self._num_pending += m

        # Remaining evictions fall on the admissions themselves (cache-all
        # churn with a cache smaller than a block): once every older entry is
        # gone, the pops would return the admissions in insertion order, so
        # they are applied directly without touching the heap (their heap
        # entries go stale and are skipped later).  Each was pending, so each
        # counts as an unused prefetch eviction.
        extra = excess - num_old
        if extra > 0:
            evicted_new = admitted[:extra]
            resident[evicted_new] = False
            pending[evicted_new] = False
            cache._evictions += extra
            cache._live -= extra
            stats.evictions += extra
            self._num_pending -= extra
            stats.prefetch_evicted_unused += extra
        if len(heap) >= cache._next_compact_check:
            cache._maybe_compact()

    def _admit_sequential(
        self, vid: int, neighbours: np.ndarray, positions: np.ndarray
    ) -> None:
        """Per-vector admission over the array cache, in slot order.

        Admission positions were precomputed in one ``admit_batch`` call
        (``admit`` is pure, so the extra calls for vectors that turn out to be
        resident are unobservable); residency is rechecked per vector because
        evictions triggered by earlier insertions can change it mid-block.
        """
        cache = self.cache
        stats = self.stats
        for nb, position in zip(neighbours.tolist(), positions.tolist()):
            if nb == vid or cache._resident[nb]:
                continue
            if position != position:  # NaN: rejected
                continue
            evicted = cache.insert_at(nb, position)
            stats.prefetch_admitted += 1
            self._pending[nb] = True
            self._num_pending += 1
            if evicted is not None:
                stats.evictions += 1
                if self._pending[evicted]:
                    self._pending[evicted] = False
                    self._num_pending -= 1
                    stats.prefetch_evicted_unused += 1

    def reset(self) -> None:
        """Clear the cache and pending-prefetch state (stats are kept)."""
        self.cache.clear()
        self._pending[:] = False
        self._num_pending = 0

    def swap_layout(self, layout: BlockLayout) -> None:
        """Adopt a new block placement without disturbing cache residency.

        Models an online re-partition: the NVM blocks are rewritten in the
        new order, but DRAM cache entries are keyed by vector id and stay
        valid, so residency, LRU order, pending-prefetch attribution and the
        cumulative stats all carry over.  Only the placement-derived state
        (id→block mapping, physical order, per-block admission cache) is
        rebuilt.  The new layout must cover the same vector universe with
        the same block geometry.
        """
        if (layout.num_vectors, layout.vectors_per_block) != (
            self._num_vectors,
            self._vectors_per_block,
        ):
            raise ValueError(
                "swap_layout requires identical geometry: "
                f"({layout.num_vectors} vectors, {layout.vectors_per_block}/block) "
                f"vs ({self._num_vectors}, {self._vectors_per_block})"
            )
        self.layout = layout
        self._block_arr = layout.block_of(np.arange(layout.num_vectors, dtype=np.int64))
        self._order = layout.order
        self._block_admit = {}


def replay_table_cache_batched(
    queries: Iterable[np.ndarray],
    layout: BlockLayout,
    policy: PrefetchPolicy,
    engine: Optional[BatchReplayEngine] = None,
    cache_size: Optional[int] = None,
    vector_bytes: int = 128,
    device: Optional[NVMDevice] = None,
    queue_depth: float = 8.0,
    stats: Optional[ReplayStats] = None,
) -> ReplayStats:
    """Batched drop-in for :func:`repro.caching.replay.replay_table_cache`.

    Produces bit-identical :class:`~repro.caching.replay.ReplayStats` to the
    reference loop.  Pass an existing ``engine`` to keep serving across calls
    (the batched analogue of the reference loop's ``cache=`` argument).
    """
    if engine is None:
        engine = BatchReplayEngine(
            layout,
            policy,
            cache_size=cache_size,
            vector_bytes=vector_bytes,
            device=device,
            queue_depth=queue_depth,
            stats=stats,
        )
    elif stats is not None and stats is not engine.stats:
        raise ValueError("pass stats either to the engine or to this call, not both")
    return engine.replay(queries)


def replay_table_cache_multi(
    queries: Iterable[np.ndarray],
    layout: BlockLayout,
    policies: Sequence[PrefetchPolicy],
    cache_sizes: Sequence[Optional[int]],
    vector_bytes: int = 128,
) -> List[ReplayStats]:
    """Replay one stream through several independent caches in a single pass.

    The i-th result is bit-identical to replaying ``queries`` through policy
    ``policies[i]`` with cache size ``cache_sizes[i]`` on its own, but the
    stream is walked once and the per-query id conversion and block gather are
    shared across all caches.  This is the kernel behind the miniature-cache
    tuner's single-pass multi-threshold mode.
    """
    if len(policies) != len(cache_sizes):
        raise ValueError("policies and cache_sizes must have the same length")
    engines = [
        BatchReplayEngine(layout, policy, cache_size=size, vector_bytes=vector_bytes)
        for policy, size in zip(policies, cache_sizes)
    ]
    arrays = [np.asarray(query, dtype=np.int64) for query in queries]
    if not arrays:
        return [engine.stats for engine in engines]
    ids = np.concatenate(arrays) if len(arrays) > 1 else arrays[0]
    if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= layout.num_vectors):
        raise IndexError(
            f"vector ids must be in [0, {layout.num_vectors}), got range "
            f"[{ids.min()}, {ids.max()}]"
        )
    for engine in engines:
        engine.replay_query(ids, validate=False)
    return [engine.stats for engine in engines]
