"""Splitting the DRAM budget across embedding tables.

Bandana's miniature caches produce a hit-rate curve per table.  Because the
curves are convex (the paper checks this for its workload), a greedy marginal
allocation — repeatedly giving the next chunk of DRAM to the table whose hit
count grows the most — is optimal, and matches the Dynacache-style static
assignment the paper uses (Section 4.3.3, "we statically assigned the amount
of DRAM to assign to each table with the goal of optimizing the total hit
rate").
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.caching.stack_distance import HitRateCurve
from repro.utils.validation import check_positive


def allocate_dram_budget(
    curves: Mapping[str, HitRateCurve],
    total_vectors: int,
    chunk_vectors: Optional[int] = None,
    min_per_table: int = 0,
) -> Dict[str, int]:
    """Split a DRAM budget (in vectors) across tables to maximise total hits.

    Parameters
    ----------
    curves:
        Per-table hit-rate curves.  ``HitRateCurve.hits_at`` converts a cache
        size into an expected absolute hit count, so tables serving more
        lookups naturally attract more DRAM.
    total_vectors:
        Total DRAM budget, expressed in cached vectors.  (Vector sizes are
        uniform across the paper's tables, so vectors are a faithful budget
        unit; callers with heterogeneous vector sizes should convert to the
        smallest common unit first.)
    chunk_vectors:
        Granularity of the greedy allocation; defaults to 1 % of the budget.
    min_per_table:
        Optional floor given to every table before the greedy phase.

    Returns
    -------
    dict mapping table name to its allocated number of cached vectors.  The
    allocations sum to at most ``total_vectors``.
    """
    check_positive(total_vectors, "total_vectors")
    if min_per_table < 0:
        raise ValueError("min_per_table must be >= 0")
    if not curves:
        raise ValueError("curves must not be empty")
    if min_per_table * len(curves) > total_vectors:
        raise ValueError(
            "min_per_table × number of tables exceeds the total DRAM budget"
        )
    if chunk_vectors is None:
        chunk_vectors = max(1, total_vectors // 100)
    check_positive(chunk_vectors, "chunk_vectors")

    allocation = {name: int(min_per_table) for name in curves}
    remaining = total_vectors - min_per_table * len(curves)

    while remaining > 0:
        chunk = min(chunk_vectors, remaining)
        best_name = None
        best_gain = 0.0
        for name, curve in curves.items():
            current = allocation[name]
            gain = curve.hits_at(current + chunk) - curve.hits_at(current)
            if gain > best_gain:
                best_gain = gain
                best_name = name
        if best_name is None:
            # No table benefits from more DRAM (all curves saturated): spread
            # the remainder evenly so the budget is still honoured.
            for name in allocation:
                allocation[name] += remaining // len(allocation)
            break
        allocation[best_name] += chunk
        remaining -= chunk
    return allocation
