"""The per-table cache replay engine.

Every cache experiment in the paper — unlimited-cache placement studies
(Figures 6, 8, 9), limited-cache policy studies (Figures 10–12), the miniature
caches (Table 2, Figure 14) and the end-to-end evaluation (Figures 13–16) —
boils down to the same loop: replay a trace of lookup queries against one
table's DRAM cache, reading a 4 KB block from NVM on every demand miss and
letting a prefetch policy decide what else from that block enters the cache.
:func:`replay_table_cache` is that loop; everything else in the library is a
wrapper around it.

This module is the *reference model*: a deliberately plain per-vector loop
that transcribes the paper's behaviour one statement at a time.  Serving,
tuning and simulation run on the vectorized fast path in
:mod:`repro.caching.engine`, which is required (and tested) to reproduce this
loop's :class:`ReplayStats` counters bit for bit — keep the two in sync when
changing replay semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Set

import numpy as np

from repro.caching.lru import LRUCache
from repro.caching.policies import PrefetchPolicy
from repro.nvm.block import BlockLayout
from repro.nvm.device import NVMDevice
from repro.utils.validation import check_positive


@dataclass
class ReplayStats:
    """Counters accumulated while replaying a trace against one table's cache.

    ``block_reads`` equals ``misses``: each demand miss triggers exactly one
    block read (the block holding the requested vector).  Effective bandwidth
    is the ratio of application-requested bytes to bytes physically read from
    NVM; comparisons against the no-prefetch baseline are computed by the
    callers, which run the baseline separately.
    """

    vector_bytes: int = 128
    block_bytes: int = 4096
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    prefetch_admitted: int = 0
    prefetch_hits: int = 0
    prefetch_evicted_unused: int = 0
    evictions: int = 0
    total_latency_us: float = 0.0

    # ------------------------------------------------------------- derived
    @property
    def block_reads(self) -> int:
        """Number of NVM block reads issued (one per demand miss)."""
        return self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from DRAM."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def app_bytes(self) -> int:
        """Bytes the application asked for (lookups × vector size)."""
        return self.lookups * self.vector_bytes

    @property
    def nvm_bytes(self) -> int:
        """Bytes physically read from the NVM device."""
        return self.block_reads * self.block_bytes

    @property
    def effective_bandwidth(self) -> float:
        """Application bytes per NVM byte read (∞-free: 0 when nothing was read).

        Values above 1.0 are possible because cache hits serve application
        bytes without any NVM read.
        """
        if self.nvm_bytes == 0:
            return 0.0
        return self.app_bytes / self.nvm_bytes

    def counters(self, include_latency: bool = False) -> tuple:
        """The counter fields as one comparable tuple.

        This is the tuple every equivalence check in the repository (tests
        and benchmarks) compares, so a counter added to this class is
        picked up by all of them at once.  ``include_latency`` appends
        ``total_latency_us`` for comparisons where both sides model the
        same device.
        """
        values = (
            self.lookups,
            self.hits,
            self.misses,
            self.prefetch_admitted,
            self.prefetch_hits,
            self.prefetch_evicted_unused,
            self.evictions,
        )
        if include_latency:
            values += (self.total_latency_us,)
        return values

    def merge(self, other: "ReplayStats") -> "ReplayStats":
        """Return the element-wise sum of two stats objects (same geometry)."""
        if (self.vector_bytes, self.block_bytes) != (other.vector_bytes, other.block_bytes):
            raise ValueError("cannot merge stats with different vector/block sizes")
        return ReplayStats(
            vector_bytes=self.vector_bytes,
            block_bytes=self.block_bytes,
            lookups=self.lookups + other.lookups,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            prefetch_admitted=self.prefetch_admitted + other.prefetch_admitted,
            prefetch_hits=self.prefetch_hits + other.prefetch_hits,
            prefetch_evicted_unused=self.prefetch_evicted_unused
            + other.prefetch_evicted_unused,
            evictions=self.evictions + other.evictions,
            total_latency_us=self.total_latency_us + other.total_latency_us,
        )


def effective_bandwidth_increase(baseline: ReplayStats, candidate: ReplayStats) -> float:
    """The paper's headline metric: relative reduction in NVM block reads.

    A value of ``0.0`` means the candidate reads exactly as many blocks as the
    baseline; ``1.0`` means it reads half as many (a 100 % effective-bandwidth
    increase); negative values mean the candidate is worse than the baseline.
    """
    if candidate.block_reads == 0:
        return 0.0 if baseline.block_reads == 0 else float("inf")
    return baseline.block_reads / candidate.block_reads - 1.0


def replay_table_cache(
    queries: Iterable[np.ndarray],
    layout: BlockLayout,
    policy: PrefetchPolicy,
    cache: Optional[LRUCache] = None,
    cache_size: Optional[int] = None,
    vector_bytes: int = 128,
    device: Optional[NVMDevice] = None,
    queue_depth: float = 8.0,
    stats: Optional[ReplayStats] = None,
) -> ReplayStats:
    """Replay lookup queries against one table's DRAM cache.

    Parameters
    ----------
    queries:
        Iterable of id arrays (e.g. ``Trace.queries``).
    layout:
        Physical placement of the table's vectors into NVM blocks.
    policy:
        Prefetch-admission policy applied to the non-requested vectors of each
        fetched block.
    cache:
        An existing cache to keep using (for online serving across calls).
        When omitted, a fresh :class:`LRUCache` is created.
    cache_size:
        Capacity (in vectors) of the fresh cache.  ``None`` means *unlimited*
        (capacity equal to the table size), reproducing the paper's
        infinite-cache placement studies.
    vector_bytes:
        Bytes per embedding vector (128 in the paper).
    device:
        Optional :class:`~repro.nvm.device.NVMDevice`; when provided, every
        block read is issued to it so latency and endurance are accounted.
    queue_depth:
        Queue depth used for the device latency model.
    stats:
        Optional existing stats object to continue accumulating into.

    Returns
    -------
    ReplayStats
    """
    check_positive(vector_bytes, "vector_bytes")
    block_bytes = layout.vectors_per_block * vector_bytes
    if cache is None:
        capacity = layout.num_vectors if cache_size is None else int(cache_size)
        cache = LRUCache(capacity)
    if stats is None:
        stats = ReplayStats(vector_bytes=vector_bytes, block_bytes=block_bytes)
    elif (stats.vector_bytes, stats.block_bytes) != (vector_bytes, block_bytes):
        raise ValueError("existing stats were created with a different geometry")

    # Vectors currently resident because of a prefetch and not yet demanded.
    pending_prefetches: Set[int] = set()

    block_of = layout.block_of
    vectors_in_block = layout.vectors_in_block

    for query in queries:
        ids = np.asarray(query, dtype=np.int64)
        if ids.size == 0:
            continue
        blocks = block_of(ids)
        for vector_id, block_id in zip(ids.tolist(), blocks.tolist()):
            stats.lookups += 1
            policy.record_access(vector_id)
            if cache.get(vector_id):
                stats.hits += 1
                if vector_id in pending_prefetches:
                    stats.prefetch_hits += 1
                    pending_prefetches.discard(vector_id)
                continue

            # Demand miss: read the block holding the vector.
            stats.misses += 1
            if device is not None:
                result = device.read_block(block_id, queue_depth=queue_depth)
                stats.total_latency_us += result.latency_us

            evicted = cache.insert(vector_id, position=0.0)
            pending_prefetches.discard(vector_id)
            if evicted is not None:
                stats.evictions += 1
                if evicted in pending_prefetches:
                    pending_prefetches.discard(evicted)
                    stats.prefetch_evicted_unused += 1

            # Offer the rest of the block to the prefetch policy.
            for neighbour in vectors_in_block(block_id).tolist():
                if neighbour == vector_id or cache.peek(neighbour):
                    continue
                position = policy.admit(neighbour)
                if position is None:
                    continue
                evicted = cache.insert(neighbour, position=position)
                if neighbour in cache:
                    stats.prefetch_admitted += 1
                    pending_prefetches.add(neighbour)
                if evicted is not None:
                    stats.evictions += 1
                    if evicted in pending_prefetches and evicted != neighbour:
                        pending_prefetches.discard(evicted)
                        stats.prefetch_evicted_unused += 1
    return stats
