"""The DRAM cache stack (the paper's Section 4.3).

Bandana keeps a small per-table LRU cache in DRAM in front of the NVM device.
The interesting policy question is what to do with the 31 *other* vectors that
arrive with every 4 KB block read.  This package implements every variant the
paper examines:

* :class:`LRUCache` — an LRU queue supporting insertion at an arbitrary
  position (needed for Figure 11a/11c),
* :class:`ShadowCache` — an id-only LRU used as an admission filter
  (Figure 11b),
* :mod:`repro.caching.policies` — the prefetch-admission policies
  (cache-all, insert-at-position, shadow admission, combined, and the
  access-threshold policy Bandana adopts),
* :mod:`repro.caching.replay` — the per-table cache replay engine used by all
  cache experiments,
* :mod:`repro.caching.engine` — the vectorized *batch* replay engine: an
  array-backed LRU plus batched kernels that reproduce the reference loop's
  counters bit for bit at a multiple of its throughput,
* :mod:`repro.caching.stack_distance` — Mattson stack distances and hit-rate
  curves (Figure 3),
* :mod:`repro.caching.miniature` — miniature-cache simulation for picking the
  admission threshold per table and cache size (Table 2, Figure 14),
* :mod:`repro.caching.allocation` — splitting a DRAM budget across tables
  from their hit-rate curves.

Reference vs. fast path
-----------------------
The package deliberately keeps two implementations of the replay semantics.
:func:`replay_table_cache` (and the dict+heap :class:`LRUCache` under it) is
the *reference model*: a readable, per-vector transcription of the paper used
to define what every counter means.  :func:`replay_table_cache_batched` (and
:class:`~repro.caching.engine.ArrayLRUCache`) is the *fast path* used by
serving, tuning and simulation.  The contract — enforced by the equivalence
test suite — is that both produce bit-identical
:class:`~repro.caching.replay.ReplayStats` for any trace, policy and cache
size, so performance work can never silently change the modeled numbers.
"""

from repro.caching.lru import LRUCache
from repro.caching.shadow import ShadowCache
from repro.caching.policies import (
    PrefetchPolicy,
    NoPrefetchPolicy,
    CacheAllBlockPolicy,
    InsertAtPositionPolicy,
    ShadowAdmissionPolicy,
    CombinedPolicy,
    AccessThresholdPolicy,
    make_policy,
)
from repro.caching.replay import ReplayStats, replay_table_cache
from repro.caching.engine import (
    ArrayLRUCache,
    BatchReplayEngine,
    replay_table_cache_batched,
    replay_table_cache_multi,
)
from repro.caching.stack_distance import (
    HitRateCurve,
    compute_stack_distances,
    compute_stack_distances_chunked,
    hit_rate_curve,
)
from repro.caching.miniature import MiniatureCacheTuner, ThresholdSelection
from repro.caching.allocation import allocate_dram_budget

__all__ = [
    "LRUCache",
    "ShadowCache",
    "PrefetchPolicy",
    "NoPrefetchPolicy",
    "CacheAllBlockPolicy",
    "InsertAtPositionPolicy",
    "ShadowAdmissionPolicy",
    "CombinedPolicy",
    "AccessThresholdPolicy",
    "make_policy",
    "ReplayStats",
    "replay_table_cache",
    "ArrayLRUCache",
    "BatchReplayEngine",
    "replay_table_cache_batched",
    "replay_table_cache_multi",
    "HitRateCurve",
    "compute_stack_distances",
    "compute_stack_distances_chunked",
    "hit_rate_curve",
    "MiniatureCacheTuner",
    "ThresholdSelection",
    "allocate_dram_budget",
]
