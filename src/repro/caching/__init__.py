"""The DRAM cache stack (the paper's Section 4.3).

Bandana keeps a small per-table LRU cache in DRAM in front of the NVM device.
The interesting policy question is what to do with the 31 *other* vectors that
arrive with every 4 KB block read.  This package implements every variant the
paper examines:

* :class:`LRUCache` — an LRU queue supporting insertion at an arbitrary
  position (needed for Figure 11a/11c),
* :class:`ShadowCache` — an id-only LRU used as an admission filter
  (Figure 11b),
* :mod:`repro.caching.policies` — the prefetch-admission policies
  (cache-all, insert-at-position, shadow admission, combined, and the
  access-threshold policy Bandana adopts),
* :mod:`repro.caching.replay` — the per-table cache replay engine used by all
  cache experiments,
* :mod:`repro.caching.stack_distance` — Mattson stack distances and hit-rate
  curves (Figure 3),
* :mod:`repro.caching.miniature` — miniature-cache simulation for picking the
  admission threshold per table and cache size (Table 2, Figure 14),
* :mod:`repro.caching.allocation` — splitting a DRAM budget across tables
  from their hit-rate curves.
"""

from repro.caching.lru import LRUCache
from repro.caching.shadow import ShadowCache
from repro.caching.policies import (
    PrefetchPolicy,
    NoPrefetchPolicy,
    CacheAllBlockPolicy,
    InsertAtPositionPolicy,
    ShadowAdmissionPolicy,
    CombinedPolicy,
    AccessThresholdPolicy,
    make_policy,
)
from repro.caching.replay import ReplayStats, replay_table_cache
from repro.caching.stack_distance import (
    HitRateCurve,
    compute_stack_distances,
    hit_rate_curve,
)
from repro.caching.miniature import MiniatureCacheTuner, ThresholdSelection
from repro.caching.allocation import allocate_dram_budget

__all__ = [
    "LRUCache",
    "ShadowCache",
    "PrefetchPolicy",
    "NoPrefetchPolicy",
    "CacheAllBlockPolicy",
    "InsertAtPositionPolicy",
    "ShadowAdmissionPolicy",
    "CombinedPolicy",
    "AccessThresholdPolicy",
    "make_policy",
    "ReplayStats",
    "replay_table_cache",
    "HitRateCurve",
    "compute_stack_distances",
    "hit_rate_curve",
    "MiniatureCacheTuner",
    "ThresholdSelection",
    "allocate_dram_budget",
]
