"""An LRU cache that supports insertion at an arbitrary queue position.

The paper's Figure 11a experiments with inserting prefetched vectors not at
the top (MRU end) of the eviction queue but part-way down, so they age out
quickly unless they are actually used.  A textbook ``OrderedDict`` LRU cannot
do that cheaply, so this implementation keys every resident entry with a
*recency priority*: an access stamps the entry with a fresh maximal priority,
while an insertion at position ``p`` (0 = MRU top, 1 = LRU bottom) receives a
priority interpolated between the current top and bottom of the queue.
Eviction removes the minimum-priority entry using a lazy-deletion heap, so all
operations are ``O(log n)`` amortised.  Stale heap entries (left behind by
re-stamping) are compacted away once they outnumber the live entries, so the
heap's memory stays proportional to the number of resident keys even over
arbitrarily long replays.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

from repro.utils.validation import check_fraction, check_non_negative


class LRUCache:
    """Bounded mapping of keys to recency priorities with positional insertion.

    Only keys are stored — Bandana's caches never need the vector payloads to
    make decisions, and the replay engine tracks bytes separately — which is
    also what makes miniature caches cheap.

    Parameters
    ----------
    capacity:
        Maximum number of resident keys.  A capacity of zero is allowed and
        produces a cache that never stores anything (useful for degenerate
        sweeps).
    """

    def __init__(self, capacity: int) -> None:
        check_non_negative(capacity, "capacity")
        self.capacity = int(capacity)
        self._priority: Dict[int, float] = {}
        self._heap: List[Tuple[float, int]] = []
        self._clock: float = 0.0
        self._evictions = 0

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return len(self._priority)

    def __contains__(self, key: int) -> bool:
        return key in self._priority

    def __iter__(self) -> Iterator[int]:
        return iter(self._priority)

    @property
    def evictions(self) -> int:
        """Number of entries evicted so far."""
        return self._evictions

    # ----------------------------------------------------------------- access
    def get(self, key: int) -> bool:
        """Look up ``key``; on a hit it is promoted to the top of the queue."""
        if key in self._priority:
            self._stamp(key, self._next_priority())
            return True
        return False

    def touch(self, key: int) -> bool:
        """Alias of :meth:`get` (promote on hit), kept for readability."""
        return self.get(key)

    def peek(self, key: int) -> bool:
        """Membership test that does *not* change recency."""
        return key in self._priority

    # ------------------------------------------------------------------ insert
    def insert(self, key: int, position: float = 0.0) -> Optional[int]:
        """Insert ``key`` at the given queue position, evicting if needed.

        ``position`` is the fractional distance from the top of the eviction
        queue: ``0.0`` inserts at the MRU top (a normal LRU insertion) and
        ``1.0`` at the LRU bottom (next in line for eviction).  If the key is
        already resident its position is updated.  Returns the evicted key, if
        any.
        """
        check_fraction(position, "position")
        if self.capacity == 0:
            return None
        evicted = None
        if key not in self._priority and len(self._priority) >= self.capacity:
            evicted = self._evict_one()
        self._stamp(key, self._priority_for_position(position))
        return evicted

    def remove(self, key: int) -> bool:
        """Remove ``key`` if present (stale heap entries are cleaned lazily)."""
        if key in self._priority:
            del self._priority[key]
            return True
        return False

    def clear(self) -> None:
        """Drop all entries and reset the eviction counter."""
        self._priority.clear()
        self._heap.clear()
        self._clock = 0.0
        self._evictions = 0

    def keys(self) -> List[int]:
        """Resident keys ordered from most- to least-recently prioritised."""
        return sorted(self._priority, key=lambda k: -self._priority[k])

    # ----------------------------------------------------------------- private
    def _next_priority(self) -> float:
        self._clock += 1.0
        return self._clock

    def _min_priority(self) -> float:
        """Priority of the current LRU bottom (cleaning stale heap entries)."""
        while self._heap:
            priority, key = self._heap[0]
            if self._priority.get(key) == priority:
                return priority
            heapq.heappop(self._heap)
        return self._clock

    def _priority_for_position(self, position: float) -> float:
        top = self._next_priority()
        if position <= 0.0 or not self._priority:
            return top
        bottom = self._min_priority()
        # The small extra term keeps a full-bottom insertion strictly below the
        # current LRU entry (ties would otherwise be broken by key order).
        return top - position * (top - bottom) - position * 1e-9

    #: Compact the lazy heap only once it exceeds this many entries.
    _COMPACT_MIN = 64

    def _stamp(self, key: int, priority: float) -> None:
        self._priority[key] = priority
        heapq.heappush(self._heap, (priority, key))
        # Heavy re-stamping (every hit promotes) leaves stale entries behind;
        # without compaction the heap grows without bound on long replays.
        if len(self._heap) > self._COMPACT_MIN and len(self._heap) > 2 * len(self._priority):
            self._heap = [(p, k) for k, p in self._priority.items()]
            heapq.heapify(self._heap)

    def _evict_one(self) -> Optional[int]:
        while self._heap:
            priority, key = heapq.heappop(self._heap)
            if self._priority.get(key) == priority:
                del self._priority[key]
                self._evictions += 1
                return key
        # Heap exhausted by stale entries: rebuild from the live mapping.
        if self._priority:
            key = min(self._priority, key=lambda k: self._priority[k])
            del self._priority[key]
            self._evictions += 1
            return key
        return None
