"""Mattson stack distances and LRU hit-rate curves (the paper's Figure 3).

The stack distance of an access is the number of *distinct* vectors referenced
since the previous access to the same vector — equivalently its rank from the
top of an infinite LRU queue at the moment of the access.  Because LRU has the
inclusion property, a single pass computing stack distances yields the hit
rate of *every* cache size at once: an access hits in a cache of ``c`` vectors
iff its stack distance is ``≤ c``.

The implementation uses the classic Fenwick-tree (binary indexed tree)
algorithm: O(N log N) over a stream of N lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.workloads.trace import Trace

#: Marker used for compulsory (first-time) accesses, which hit in no finite cache.
COLD_MISS = -1


class _FenwickTree:
    """A Fenwick tree over positions 1..n supporting point update / prefix sum."""

    def __init__(self, size: int):
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return int(total)


def compute_stack_distances(id_stream: Union[np.ndarray, Sequence[int]]) -> np.ndarray:
    """Stack distance of every access in an id stream.

    Returns an int64 array the same length as the stream; compulsory (first)
    accesses are marked :data:`COLD_MISS`.  Distances are 1-based: a distance
    of 1 means the vector was the most recently used one.
    """
    stream = np.asarray(id_stream, dtype=np.int64)
    if stream.ndim != 1:
        raise ValueError("id_stream must be one-dimensional")
    num_accesses = stream.size
    distances = np.empty(num_accesses, dtype=np.int64)
    if num_accesses == 0:
        return distances

    tree = _FenwickTree(num_accesses)
    last_position: Dict[int, int] = {}
    for position, vector_id in enumerate(stream.tolist()):
        previous = last_position.get(vector_id)
        if previous is None:
            distances[position] = COLD_MISS
        else:
            # Number of distinct ids accessed strictly after `previous`:
            # each distinct id keeps exactly one marker (at its latest access).
            distances[position] = tree.prefix_sum(position - 1) - tree.prefix_sum(previous)
            distances[position] += 1  # rank is 1-based (top of stack = 1)
            tree.add(previous, -1)
        tree.add(position, +1)
        last_position[vector_id] = position
    return distances


@dataclass(frozen=True)
class HitRateCurve:
    """Hit rate as a function of cache size (in vectors) for one table.

    Attributes
    ----------
    cache_sizes:
        Monotonically increasing cache sizes.
    hit_rates:
        Hit rate achieved at each size.
    total_lookups:
        Number of lookups the curve was measured over; used to convert rates
        into absolute hit counts when splitting a DRAM budget across tables.
    """

    cache_sizes: np.ndarray
    hit_rates: np.ndarray
    total_lookups: int

    def __post_init__(self) -> None:
        sizes = np.asarray(self.cache_sizes, dtype=np.int64)
        rates = np.asarray(self.hit_rates, dtype=np.float64)
        if sizes.shape != rates.shape or sizes.ndim != 1:
            raise ValueError("cache_sizes and hit_rates must be 1-D arrays of equal length")
        if sizes.size and np.any(np.diff(sizes) < 0):
            raise ValueError("cache_sizes must be non-decreasing")
        object.__setattr__(self, "cache_sizes", sizes)
        object.__setattr__(self, "hit_rates", rates)

    def hit_rate_at(self, cache_size: float) -> float:
        """Interpolated hit rate at an arbitrary cache size."""
        if self.cache_sizes.size == 0:
            return 0.0
        return float(
            np.interp(cache_size, self.cache_sizes, self.hit_rates, left=0.0)
        )

    def hits_at(self, cache_size: float) -> float:
        """Expected absolute number of hits at the given cache size."""
        return self.hit_rate_at(cache_size) * self.total_lookups


def hit_rate_curve(
    source: Union[Trace, np.ndarray, Sequence[int]],
    cache_sizes: Optional[Sequence[int]] = None,
    num_points: int = 50,
) -> HitRateCurve:
    """Compute the LRU hit-rate curve of a trace or raw id stream.

    Parameters
    ----------
    source:
        Either a :class:`~repro.workloads.trace.Trace` (its lookups are
        flattened in request order) or a 1-D id stream.
    cache_sizes:
        Cache sizes (in vectors) at which to evaluate the curve.  Defaults to
        ``num_points`` sizes spread geometrically up to the number of distinct
        vectors in the stream.
    num_points:
        Number of default evaluation points when ``cache_sizes`` is omitted.
    """
    if isinstance(source, Trace):
        stream = source.flatten()
    else:
        stream = np.asarray(source, dtype=np.int64)
    total = stream.size
    if total == 0:
        sizes = np.asarray(cache_sizes if cache_sizes is not None else [0], dtype=np.int64)
        return HitRateCurve(sizes, np.zeros(sizes.size), total_lookups=0)

    distances = compute_stack_distances(stream)
    finite = distances[distances != COLD_MISS]

    if cache_sizes is None:
        max_size = max(1, int(np.unique(stream).size))
        sizes = np.unique(
            np.geomspace(1, max_size, num=num_points).astype(np.int64)
        )
    else:
        sizes = np.asarray(sorted(cache_sizes), dtype=np.int64)

    if finite.size:
        sorted_distances = np.sort(finite)
        hits = np.searchsorted(sorted_distances, sizes, side="right")
    else:
        hits = np.zeros(sizes.size, dtype=np.int64)
    rates = hits / total
    return HitRateCurve(sizes, rates, total_lookups=int(total))
