"""Mattson stack distances and LRU hit-rate curves (the paper's Figure 3).

The stack distance of an access is the number of *distinct* vectors referenced
since the previous access to the same vector — equivalently its rank from the
top of an infinite LRU queue at the moment of the access.  Because LRU has the
inclusion property, a single pass computing stack distances yields the hit
rate of *every* cache size at once: an access hits in a cache of ``c`` vectors
iff its stack distance is ``≤ c``.

The implementation uses the classic Fenwick-tree (binary indexed tree)
algorithm: O(N log N) over a stream of N lookups.

Two implementations are provided under the same reference-vs-fast-path
contract as the cache replay engine (:mod:`repro.caching.engine`):
:func:`compute_stack_distances` is the readable per-access reference — two
Python-level tree walks per access — while
:func:`compute_stack_distances_chunked` processes the stream in fixed-size
chunks, batching the Fenwick prefix-sum and update walks into ``O(log N)``
vectorized array operations per chunk and correcting for intra-chunk updates
with a closed-form dominance count.  Both return bit-identical distances;
:func:`hit_rate_curve` uses the chunked kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.workloads.trace import Trace

#: Marker used for compulsory (first-time) accesses, which hit in no finite cache.
COLD_MISS = -1


class _FenwickTree:
    """A Fenwick tree over positions 1..n supporting point update / prefix sum."""

    def __init__(self, size: int) -> None:
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return int(total)


def compute_stack_distances(id_stream: Union[np.ndarray, Sequence[int]]) -> np.ndarray:
    """Stack distance of every access in an id stream.

    Returns an int64 array the same length as the stream; compulsory (first)
    accesses are marked :data:`COLD_MISS`.  Distances are 1-based: a distance
    of 1 means the vector was the most recently used one.
    """
    stream = np.asarray(id_stream, dtype=np.int64)
    if stream.ndim != 1:
        raise ValueError("id_stream must be one-dimensional")
    num_accesses = stream.size
    distances = np.empty(num_accesses, dtype=np.int64)
    if num_accesses == 0:
        return distances

    tree = _FenwickTree(num_accesses)
    last_position: Dict[int, int] = {}
    for position, vector_id in enumerate(stream.tolist()):
        previous = last_position.get(vector_id)
        if previous is None:
            distances[position] = COLD_MISS
        else:
            # Number of distinct ids accessed strictly after `previous`:
            # each distinct id keeps exactly one marker (at its latest access).
            distances[position] = tree.prefix_sum(position - 1) - tree.prefix_sum(previous)
            distances[position] += 1  # rank is 1-based (top of stack = 1)
            tree.add(previous, -1)
        tree.add(position, +1)
        last_position[vector_id] = position
    return distances


def _previous_occurrences(stream: np.ndarray) -> np.ndarray:
    """Index of the previous access to the same id, or ``-1`` (vectorized)."""
    n = stream.size
    prev = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return prev
    order = np.argsort(stream, kind="stable")
    sorted_ids = stream[order]
    same = sorted_ids[1:] == sorted_ids[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _prefix_sum_batch(tree: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Fenwick prefix sums for a batch of 0-based indices (-1 yields 0)."""
    idx = indices + 1
    totals = np.zeros(idx.shape, dtype=np.int64)
    while True:
        active = idx > 0
        if not active.any():
            return totals
        current = idx[active]
        totals[active] += tree[current]
        idx[active] = current - (current & -current)


def _add_batch(tree: np.ndarray, indices: np.ndarray, deltas: np.ndarray) -> None:
    """Fenwick point updates for a batch of 0-based indices."""
    size = tree.size - 1
    idx = indices + 1
    deltas = deltas.copy()
    while True:
        active = idx <= size
        if not active.any():
            return
        current = idx[active]
        np.add.at(tree, current, deltas[active])
        idx = current + (current & -current)
        deltas = deltas[active]


def compute_stack_distances_chunked(
    id_stream: Union[np.ndarray, Sequence[int]], chunk_size: int = 512
) -> np.ndarray:
    """Chunked, array-native equivalent of :func:`compute_stack_distances`.

    The stream is processed ``chunk_size`` accesses at a time.  Within a
    chunk, all prefix sums are taken against the Fenwick tree *frozen* at the
    chunk start — a batch of tree walks vectorized across the chunk — and the
    contribution of the chunk's own earlier accesses is reconstructed in
    closed form: each earlier access adds one marker below the query point and
    removes one at its previous occurrence, so the correction reduces to
    counting earlier in-chunk accesses and a pairwise dominance count over
    their previous-occurrence indices.  All arithmetic is integral, so the
    result is bit-identical to the reference implementation.
    """
    stream = np.asarray(id_stream, dtype=np.int64)
    if stream.ndim != 1:
        raise ValueError("id_stream must be one-dimensional")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    n = stream.size
    distances = np.empty(n, dtype=np.int64)
    if n == 0:
        return distances

    prev = _previous_occurrences(stream)
    tree = np.zeros(n + 1, dtype=np.int64)
    tri = np.tril(np.ones((min(chunk_size, n),) * 2, dtype=bool), -1)
    ones = np.ones(min(chunk_size, n), dtype=np.int64)

    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        k = stop - start
        pos = np.arange(start, stop, dtype=np.int64)
        prev_c = prev[start:stop]
        noncold = prev_c >= 0

        # Prefix sums against the frozen tree.
        ps_hi = _prefix_sum_batch(tree, pos - 1)
        ps_lo = _prefix_sum_batch(tree, prev_c[noncold])

        # Corrections for the chunk's own earlier accesses: access a < p adds
        # +1 at a (always <= p-1) and -1 at prev_a (also < p), so the true
        # prefix sums differ from the frozen ones by simple counts.
        offsets = pos - start                       # accesses before p in chunk
        n_prev = np.cumsum(noncold) - noncold       # non-cold ones among them
        true_hi = ps_hi + offsets - n_prev

        # For the lower bound: +1 markers at a <= prev_p, and -1 markers at
        # prev_a <= prev_p (the pairwise dominance count D).
        plus_lo = np.maximum(0, prev_c[noncold] - start + 1)
        dominated = (prev_c[None, :] <= prev_c[:, None]) & noncold[None, :] & tri[:k, :k]
        d_count = dominated.sum(axis=1)[noncold]
        true_lo = ps_lo + plus_lo - d_count

        out = distances[start:stop]
        out[~noncold] = COLD_MISS
        out[noncold] = true_hi[noncold] - true_lo + 1

        # Apply the whole chunk's tree updates in bulk.
        _add_batch(
            tree,
            np.concatenate([pos, prev_c[noncold]]),
            np.concatenate([ones[:k], -ones[: int(noncold.sum())]]),
        )
    return distances


@dataclass(frozen=True)
class HitRateCurve:
    """Hit rate as a function of cache size (in vectors) for one table.

    Attributes
    ----------
    cache_sizes:
        Monotonically increasing cache sizes.
    hit_rates:
        Hit rate achieved at each size.
    total_lookups:
        Number of lookups the curve was measured over; used to convert rates
        into absolute hit counts when splitting a DRAM budget across tables.
    """

    cache_sizes: np.ndarray
    hit_rates: np.ndarray
    total_lookups: int

    def __post_init__(self) -> None:
        sizes = np.asarray(self.cache_sizes, dtype=np.int64)
        rates = np.asarray(self.hit_rates, dtype=np.float64)
        if sizes.shape != rates.shape or sizes.ndim != 1:
            raise ValueError("cache_sizes and hit_rates must be 1-D arrays of equal length")
        if sizes.size and np.any(np.diff(sizes) < 0):
            raise ValueError("cache_sizes must be non-decreasing")
        object.__setattr__(self, "cache_sizes", sizes)
        object.__setattr__(self, "hit_rates", rates)

    def hit_rate_at(self, cache_size: float) -> float:
        """Interpolated hit rate at an arbitrary cache size."""
        if self.cache_sizes.size == 0:
            return 0.0
        return float(
            np.interp(cache_size, self.cache_sizes, self.hit_rates, left=0.0)
        )

    def hits_at(self, cache_size: float) -> float:
        """Expected absolute number of hits at the given cache size."""
        return self.hit_rate_at(cache_size) * self.total_lookups


def hit_rate_curve(
    source: Union[Trace, np.ndarray, Sequence[int]],
    cache_sizes: Optional[Sequence[int]] = None,
    num_points: int = 50,
) -> HitRateCurve:
    """Compute the LRU hit-rate curve of a trace or raw id stream.

    Parameters
    ----------
    source:
        Either a :class:`~repro.workloads.trace.Trace` (its lookups are
        flattened in request order) or a 1-D id stream.
    cache_sizes:
        Cache sizes (in vectors) at which to evaluate the curve.  Defaults to
        ``num_points`` sizes spread geometrically up to the number of distinct
        vectors in the stream.
    num_points:
        Number of default evaluation points when ``cache_sizes`` is omitted.
    """
    if isinstance(source, Trace):
        stream = source.flatten()
    else:
        stream = np.asarray(source, dtype=np.int64)
    total = stream.size
    if total == 0:
        sizes = np.asarray(cache_sizes if cache_sizes is not None else [0], dtype=np.int64)
        return HitRateCurve(sizes, np.zeros(sizes.size), total_lookups=0)

    distances = compute_stack_distances_chunked(stream)
    finite = distances[distances != COLD_MISS]

    if cache_sizes is None:
        max_size = max(1, int(np.unique(stream).size))
        sizes = np.unique(
            np.geomspace(1, max_size, num=num_points).astype(np.int64)
        )
    else:
        sizes = np.asarray(sorted(cache_sizes), dtype=np.int64)

    if finite.size:
        sorted_distances = np.sort(finite)
        hits = np.searchsorted(sorted_distances, sizes, side="right")
    else:
        hits = np.zeros(sizes.size, dtype=np.int64)
    rates = hits / total
    return HitRateCurve(sizes, rates, total_lookups=int(total))
