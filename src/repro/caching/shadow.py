"""The shadow cache: an id-only LRU used as a prefetch-admission filter.

Section 4.3.1 of the paper evaluates admitting a prefetched vector only if it
already appears in a *shadow cache* — a separate LRU list that records only
the ids of vectors the application explicitly requested, so it simulates what
a cache with no prefetching would contain.  The shadow cache is typically
sized as a multiplier (1×–2×) of the real cache.
"""

from __future__ import annotations

import numpy as np

from repro.caching.lru import LRUCache
from repro.utils.validation import check_non_negative, check_positive


class ShadowCache:
    """An LRU of vector ids tracking what a no-prefetch cache would hold.

    Parameters
    ----------
    real_cache_size:
        Size of the real (value-holding) cache, in vectors.
    multiplier:
        Shadow size as a multiple of the real cache (the x-axis of the
        paper's Figure 11b).
    """

    def __init__(self, real_cache_size: int, multiplier: float = 1.0) -> None:
        check_non_negative(real_cache_size, "real_cache_size")
        check_positive(multiplier, "multiplier")
        self.multiplier = float(multiplier)
        self._cache = LRUCache(int(round(real_cache_size * multiplier)))

    @property
    def capacity(self) -> int:
        """Maximum number of ids tracked."""
        return self._cache.capacity

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, key: int) -> bool:
        return key in self._cache

    def record_access(self, key: int) -> None:
        """Record an application (demand) access to ``key``.

        Mirrors exactly what a no-prefetch LRU would do: promote on hit,
        insert at the top on miss.
        """
        if not self._cache.get(key):
            self._cache.insert(key, position=0.0)

    def record_access_batch(self, keys: np.ndarray) -> None:
        """Record a batch of demand accesses, in stream order.

        Exactly equivalent to calling :meth:`record_access` per key; kept as a
        loop because the shadow cache is dict-backed (batch callers such as the
        vectorized replay engine stay correct either way).
        """
        get = self._cache.get
        insert = self._cache.insert
        for key in np.asarray(keys).tolist():
            if not get(key):
                insert(key, position=0.0)

    def contains(self, key: int) -> bool:
        """Whether ``key`` is in the shadow cache (without changing recency)."""
        return self._cache.peek(key)

    def contains_batch(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership array for ``keys`` (no recency change)."""
        peek = self._cache.peek
        return np.fromiter(
            (peek(key) for key in np.asarray(keys).tolist()),
            dtype=bool,
            count=len(keys),
        )

    def clear(self) -> None:
        """Drop all tracked ids."""
        self._cache.clear()
