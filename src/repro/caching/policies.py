"""Prefetch-admission policies (the paper's Section 4.3).

When a demand miss pulls a 4 KB block from NVM, the block carries up to 31
other vectors.  A *prefetch policy* decides, for each of those co-resident
vectors, whether it enters the DRAM cache and at which queue position.  The
paper walks through a series of policies, each implemented here:

====================  ==========================================================
Policy                 Paper experiment
====================  ==========================================================
``NoPrefetchPolicy``   the baseline: cache only the requested vector
``CacheAllBlockPolicy``  Figure 10: admit all 31 neighbours at the top
``InsertAtPositionPolicy``  Figure 11a: admit all, but lower in the queue
``ShadowAdmissionPolicy``   Figure 11b: admit only vectors present in a shadow cache
``CombinedPolicy``          Figure 11c: shadow hit → top, otherwise → position
``AccessThresholdPolicy``   Figure 12: admit only vectors seen > t times during
                            the SHP training run (Bandana's final choice)
====================  ==========================================================

A policy exposes two hooks: :meth:`PrefetchPolicy.record_access` is called for
every application-requested id (hit or miss) so stateful policies can track
demand traffic, and :meth:`PrefetchPolicy.admit` is called for each prefetch
candidate and returns the insertion position or ``None`` to reject it.

Both hooks also exist in batched form for the vectorized replay engine
(:mod:`repro.caching.engine`): :meth:`PrefetchPolicy.record_access_batch`
observes a whole id array in stream order, and :meth:`PrefetchPolicy.admit_batch`
maps an id array to a ``float64`` position array where ``NaN`` marks a
rejected candidate.  Every built-in policy implements the batched hooks with
NumPy; the scalar hooks remain the reference semantics, and the base class
provides loop fallbacks so third-party scalar-only policies keep working with
the batched engine.  ``admit`` must be a pure function of the candidate id and
the policy's current state — the batched engine may evaluate it for candidates
the reference loop would have skipped.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Type

import numpy as np

from repro.caching.shadow import ShadowCache
from repro.utils.validation import check_fraction, check_non_negative


class PrefetchPolicy(abc.ABC):
    """Decides whether (and where) a prefetched vector enters the cache."""

    #: Name used in reports, benchmark output and the policy factory.
    name: str = "policy"

    #: True when :meth:`admit` rejects every candidate unconditionally; lets
    #: the batched engine skip the admission sweep on every miss.
    never_admits: bool = False

    #: True when :meth:`admit` is a constant function of the id for the whole
    #: replay (no evolving state), letting the batched engine cache admission
    #: decisions per block.
    admit_is_static: bool = False

    #: True when every admitted candidate enters at position 0.0 (the top of
    #: the queue), the case the batched engine can always process in bulk.
    always_top_positions: bool = False

    def record_access(self, vector_id: int) -> None:
        """Observe an application (demand) access.  Stateless policies ignore it."""

    @abc.abstractmethod
    def admit(self, vector_id: int) -> Optional[float]:
        """Return the insertion position for a prefetched vector, or ``None``.

        Position ``0.0`` is the top (MRU end) of the eviction queue, ``1.0``
        the bottom.  ``None`` rejects the prefetch entirely.
        """

    def record_access_batch(self, vector_ids: np.ndarray) -> None:
        """Observe a batch of demand accesses, in stream order.

        The default recognises policies that never overrode the scalar hook
        (nothing to record) and otherwise falls back to a sequential loop so
        stateful scalar-only policies stay exactly equivalent.
        """
        if type(self).record_access is PrefetchPolicy.record_access:
            return
        for vector_id in np.asarray(vector_ids).tolist():
            self.record_access(vector_id)

    def admit_batch(self, vector_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`admit`: a position per id, ``NaN`` = reject.

        The default loops over the scalar hook; built-in policies override it
        with pure NumPy implementations.
        """
        positions = np.empty(len(vector_ids), dtype=np.float64)
        for index, vector_id in enumerate(np.asarray(vector_ids).tolist()):
            position = self.admit(vector_id)
            positions[index] = np.nan if position is None else position
        return positions

    def reset(self) -> None:
        """Clear any internal state (e.g. between replay runs)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class NoPrefetchPolicy(PrefetchPolicy):
    """The baseline policy: only the explicitly requested vector is cached."""

    name = "no-prefetch"
    never_admits = True
    admit_is_static = True

    def admit(self, vector_id: int) -> Optional[float]:
        return None

    def admit_batch(self, vector_ids: np.ndarray) -> np.ndarray:
        return np.full(len(vector_ids), np.nan)


class CacheAllBlockPolicy(PrefetchPolicy):
    """Admit every vector of the fetched block at the top of the queue (Fig. 10)."""

    name = "cache-all-block"
    admit_is_static = True
    always_top_positions = True

    def admit(self, vector_id: int) -> Optional[float]:
        return 0.0

    def admit_batch(self, vector_ids: np.ndarray) -> np.ndarray:
        return np.zeros(len(vector_ids))


class InsertAtPositionPolicy(PrefetchPolicy):
    """Admit every prefetched vector at a fixed lower queue position (Fig. 11a)."""

    name = "insert-at-position"
    admit_is_static = True

    def __init__(self, position: float = 0.5) -> None:
        check_fraction(position, "position")
        self.position = float(position)
        self.always_top_positions = self.position == 0.0

    def admit(self, vector_id: int) -> Optional[float]:
        return self.position

    def admit_batch(self, vector_ids: np.ndarray) -> np.ndarray:
        return np.full(len(vector_ids), self.position)

    def __repr__(self) -> str:  # pragma: no cover
        return f"InsertAtPositionPolicy(position={self.position})"


class ShadowAdmissionPolicy(PrefetchPolicy):
    """Admit a prefetched vector only if it appears in the shadow cache (Fig. 11b).

    The shadow cache tracks demand accesses only, so it approximates the
    content of a no-prefetch cache of ``multiplier ×`` the real size.
    """

    name = "shadow-admission"
    always_top_positions = True

    def __init__(self, real_cache_size: int, multiplier: float = 1.0) -> None:
        self.real_cache_size = int(real_cache_size)
        self.multiplier = float(multiplier)
        self.shadow = ShadowCache(real_cache_size, multiplier)

    def record_access(self, vector_id: int) -> None:
        self.shadow.record_access(vector_id)

    def record_access_batch(self, vector_ids: np.ndarray) -> None:
        self.shadow.record_access_batch(vector_ids)

    def admit(self, vector_id: int) -> Optional[float]:
        return 0.0 if self.shadow.contains(vector_id) else None

    def admit_batch(self, vector_ids: np.ndarray) -> np.ndarray:
        return np.where(self.shadow.contains_batch(vector_ids), 0.0, np.nan)

    def reset(self) -> None:
        self.shadow.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ShadowAdmissionPolicy(real_cache_size={self.real_cache_size}, "
            f"multiplier={self.multiplier})"
        )


class CombinedPolicy(PrefetchPolicy):
    """Shadow hit → top of the queue; shadow miss → lower position (Fig. 11c)."""

    name = "combined"

    def __init__(
        self,
        real_cache_size: int,
        position: float = 0.5,
        multiplier: float = 1.0,
    ) -> None:
        check_fraction(position, "position")
        self.position = float(position)
        self.always_top_positions = self.position == 0.0
        self.multiplier = float(multiplier)
        self.real_cache_size = int(real_cache_size)
        self.shadow = ShadowCache(real_cache_size, multiplier)

    def record_access(self, vector_id: int) -> None:
        self.shadow.record_access(vector_id)

    def record_access_batch(self, vector_ids: np.ndarray) -> None:
        self.shadow.record_access_batch(vector_ids)

    def admit(self, vector_id: int) -> Optional[float]:
        if self.shadow.contains(vector_id):
            return 0.0
        return self.position

    def admit_batch(self, vector_ids: np.ndarray) -> np.ndarray:
        return np.where(self.shadow.contains_batch(vector_ids), 0.0, self.position)

    def reset(self) -> None:
        self.shadow.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CombinedPolicy(position={self.position}, multiplier={self.multiplier})"
        )


class AccessThresholdPolicy(PrefetchPolicy):
    """Admit a prefetched vector only if its SHP-run access count exceeds ``t``.

    This is the policy Bandana deploys (Section 4.3.2): the number of training
    queries that contained a vector correlates with how much confidence SHP
    had when placing it, and hence with how useful it is as a prefetch.
    ``threshold`` is the paper's ``t``; the optimal value depends on the cache
    size and is chosen by the miniature-cache tuner.
    """

    name = "access-threshold"
    admit_is_static = True
    always_top_positions = True

    def __init__(self, access_counts: np.ndarray, threshold: float) -> None:
        check_non_negative(threshold, "threshold")
        self.access_counts = np.asarray(access_counts, dtype=np.int64)
        if self.access_counts.ndim != 1:
            raise ValueError("access_counts must be one-dimensional")
        self.threshold = float(threshold)

    def admit(self, vector_id: int) -> Optional[float]:
        if vector_id >= self.access_counts.size:
            return None
        return 0.0 if self.access_counts[vector_id] > self.threshold else None

    def admit_batch(self, vector_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(vector_ids, dtype=np.int64)
        known = ids < self.access_counts.size
        counts = self.access_counts[np.where(known, ids, 0)]
        return np.where(known & (counts > self.threshold), 0.0, np.nan)

    def __repr__(self) -> str:  # pragma: no cover
        return f"AccessThresholdPolicy(threshold={self.threshold})"


_POLICY_REGISTRY: Dict[str, Type[PrefetchPolicy]] = {
    NoPrefetchPolicy.name: NoPrefetchPolicy,
    CacheAllBlockPolicy.name: CacheAllBlockPolicy,
    InsertAtPositionPolicy.name: InsertAtPositionPolicy,
    ShadowAdmissionPolicy.name: ShadowAdmissionPolicy,
    CombinedPolicy.name: CombinedPolicy,
    AccessThresholdPolicy.name: AccessThresholdPolicy,
}


def make_policy(name: str, **kwargs: object) -> PrefetchPolicy:
    """Instantiate a policy by its registered name.

    Examples
    --------
    >>> make_policy("no-prefetch")
    NoPrefetchPolicy()
    >>> make_policy("insert-at-position", position=0.7)
    InsertAtPositionPolicy(position=0.7)
    """
    try:
        policy_cls = _POLICY_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(_POLICY_REGISTRY)}"
        ) from None
    return policy_cls(**kwargs)
