"""One simulated store node: shard engines, a device bank, admission control.

A :class:`ClusterNode` owns the *node half* of the spec/state split
(:mod:`repro.core.tablespec`): for every table it serves, a
:class:`~repro.caching.engine.BatchReplayEngine` with its own DRAM cache
(sized to the node's owned share of the table's budget), its own policy
instance and its own :class:`~repro.nvm.device.NVMDevice`.  Replica caches
are fully independent — each replica's cache contents reflect exactly the
traffic *that replica* served, so retries and hedges landing on a secondary
warm the secondary, not the primary.

Time is simulated and owned by the shared device layer: the node holds a
:class:`~repro.device.NVMDeviceBank` of ``devices_per_node`` physical
devices (one by default — the node as a single FIFO resource, exactly the
old hand-rolled ``busy_until_us`` clock) with every served table pinned to
one of them.  A shard read arriving at ``t`` waits out its device's
backlog, then runs for ``(overhead + NVM read time) × slow-multiplier`` —
the *externally-priced* path: the engines price the reads, the bank
serialises them.  **Admission control** is queue-level: when the backlog a
new read would have to wait behind exceeds ``admission_queue_slack ×`` the
table's SLO, the node sheds the read immediately (a fast rejection the
router can retry on another replica) instead of queueing it unboundedly —
overload degrades, it does not melt.

A crashed node loses its DRAM on recovery: :meth:`ClusterNode.cold_restart`
rebuilds every engine cold (fresh cache, fresh policy state) while keeping
the cumulative :class:`~repro.caching.replay.ReplayStats` objects, so
availability accounting spans the crash — and re-anchors the device bank at
the restart time (:meth:`~repro.device.NVMDeviceBank.rebase`), the same
single definition of restart semantics warm-up rebase uses.

The :class:`ShardServiceResult` split — ``queue_wait_us`` (FIFO backlog on
this node's device) vs ``service_us`` (overhead + NVM read time, stretched
by any slow-node multiplier) — is what the router records as the
``node.queue``/``node.service`` spans of a traced attempt
(:mod:`repro.tracing`), and what the circuit breaker judges slowness by
(service only; backlog is overload, not brokenness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.caching.engine import BatchReplayEngine
from repro.core.tablespec import TableServingSpec
from repro.device.bank import NVMDeviceBank


@dataclass(frozen=True)
class ShardServiceResult:
    """What one executed shard read cost on the node."""

    queue_wait_us: float
    service_us: float

    @property
    def total_us(self) -> float:
        return self.queue_wait_us + self.service_us


class ClusterNode:
    """One simulated store node (see module docstring).

    Parameters
    ----------
    index:
        The node's cluster index.
    specs:
        Serving specs of the tables this node holds shards of.
    owned_blocks:
        Per-table count of blocks this node serves (over all replica slots
        it occupies); sizes the node's share of each table's cache budget.
    node_overhead_us:
        Fixed service overhead per shard read.
    devices_per_node:
        Physical NVM devices in the node's bank.  ``1`` (the default) keeps
        the node one FIFO resource — the pre-bank semantics, bit-identical;
        more devices spread the node's tables round-robin so shard reads of
        tables on different devices no longer queue behind each other.
    """

    def __init__(
        self,
        index: int,
        specs: Mapping[str, TableServingSpec],
        owned_blocks: Mapping[str, int],
        node_overhead_us: float = 5.0,
        devices_per_node: int = 1,
    ) -> None:
        self.index = index
        self.node_overhead_us = float(node_overhead_us)
        self._specs: Dict[str, TableServingSpec] = {}
        self._cache_sizes: Dict[str, int] = {}
        self.engines: Dict[str, BatchReplayEngine] = {}
        for name, spec in specs.items():
            owned = int(owned_blocks.get(name, 0))
            if owned <= 0:
                continue
            self._specs[name] = spec
            self._cache_sizes[name] = spec.scaled_cache_size(owned)
            self.engines[name] = spec.make_engine(
                cache_size_vectors=self._cache_sizes[name]
            )
        #: The node's physical devices: every served table pinned up front
        #: (round-robin in spec order), records off — long chaos runs keep
        #: only the O(1) aggregates.
        self.bank = NVMDeviceBank(
            num_devices=devices_per_node,
            tables=self.engines.keys(),
            keep_records=False,
        )
        self.cold_restarts = 0
        #: Simulated time up to which crash-recovery has been checked.
        self.last_seen_us = 0.0

    # ----------------------------------------------------------------- timing
    @property
    def busy_until_us(self) -> float:
        """When the node's *last* device frees up (max over its bank)."""
        return self.bank.free_at_us

    def queue_wait_us(self, at_us: float, table_name: Optional[str] = None) -> float:
        """Backlog a read arriving at ``at_us`` would wait behind.

        Per-table when given (that table's device — what admission control
        sheds against), else the worst backlog over the node's bank.
        """
        return self.bank.queue_wait_us(at_us, table_name)

    def rebase(self, now_us: float = 0.0) -> None:
        """Re-anchor the node's device clocks with empty backlogs."""
        self.bank.rebase(now_us)

    # ---------------------------------------------------------------- serving
    def serve(
        self,
        table_name: str,
        ids: np.ndarray,
        arrive_us: float,
        multiplier: float = 1.0,
    ) -> ShardServiceResult:
        """Execute one shard read arriving at ``arrive_us``.

        Replays the ids through the table's engine (updating cache, policy,
        device and stats exactly as single-store serving would), charges the
        resulting NVM read time plus the node overhead — stretched by the
        active slow-node ``multiplier`` — behind the table's device backlog,
        and advances that device's clock.
        """
        engine = self.engines[table_name]
        latency_before = engine.stats.total_latency_us
        device = engine.device
        blocks_before = device.blocks_read if device is not None else 0
        engine.replay_query(ids)
        device_us = engine.stats.total_latency_us - latency_before
        blocks = (device.blocks_read if device is not None else 0) - blocks_before
        service_us = (self.node_overhead_us + device_us) * float(multiplier)
        record = self.bank.serve_duration(
            table_name, arrive_us, service_us, block_reads=blocks
        )
        return ShardServiceResult(
            queue_wait_us=record.queue_wait_us, service_us=service_us
        )

    def serves_table(self, table_name: str) -> bool:
        """Whether this node owns any shard of ``table_name``."""
        return table_name in self.engines

    # --------------------------------------------------------------- recovery
    def cold_restart(self, now_us: float) -> None:
        """Restart after a crash: cold caches, fresh policies, empty backlog.

        The cumulative stats objects are kept (availability and hit-rate
        accounting span the crash); everything else — cache contents,
        pending-prefetch state, policy state, queued work — is lost, exactly
        what a process restart costs.  Backlog loss is the device bank's
        :meth:`~repro.device.NVMDeviceBank.rebase`, defined once for every
        layer.
        """
        for name, spec in self._specs.items():
            self.engines[name] = spec.make_engine(
                cache_size_vectors=self._cache_sizes[name],
                stats=self.engines[name].stats,
            )
        self.rebase(now_us)
        self.cold_restarts += 1

    # ---------------------------------------------------------------- metrics
    def blocks_read(self) -> int:
        """NVM blocks read by this node so far (its share of cluster load)."""
        return sum(
            engine.device.blocks_read
            for engine in self.engines.values()
            if engine.device is not None
        )

    def cache_sizes(self) -> Dict[str, int]:
        """The node's per-table cache budgets (vectors)."""
        return dict(self._cache_sizes)
