"""Simulated multi-node cluster store with fault injection.

The single-host :class:`~repro.core.bandana.BandanaStore` answers the
paper's caching and device questions; this package answers the deployment
one: what does Bandana-style NVM serving look like **across nodes**, and
what does it cost when nodes fail?

Architecture
------------
* :mod:`repro.cluster.ring` — consistent-hash ring with virtual nodes.
  Each table's dense id space is partitioned at NVM-**block** granularity
  (``(table, block)`` keys), so prefetch admission stays node-local and a
  1-node ring reduces exactly to the single store.
* :mod:`repro.cluster.node` — one simulated node: per-table
  :class:`~repro.caching.engine.BatchReplayEngine` replicas (independent
  caches sized to the node's owned share), a FIFO ``busy_until`` clock, and
  queue-level admission control against per-table SLOs.
* :mod:`repro.cluster.store` — the router: fan-out/fan-in (request latency
  is the max over touched shard groups), R-way read-one replication,
  per-shard timeouts with capped exponential-backoff retries, hedged reads
  after a running p99 delay, and per-node circuit breakers.
* :mod:`repro.cluster.faults` — the fault-injection layer: declarative
  schedules of node crashes (recovering **cold**), slow nodes and degraded
  links, plus the named scenario catalog.
* :mod:`repro.cluster.scenario` — the runner: open-loop arrivals through a
  fault-injected cluster, condensed into a :class:`ClusterReport`.

Failure-scenario catalog
------------------------
``make_scenario(name, num_nodes, **overrides)`` instantiates:

========================  ====================================================
``"none"``                healthy cluster — the baseline row of every sweep
``"crash_recover"``       one node down for a window, then cold-restarts
``"slow_node"``           one node serves ``multiplier``× slower (default 20×)
``"flaky_link"``          one link adds delay and drops attempts
                          (default +200 µs, 5 % loss)
``"degraded_cluster"``    compound: a crash, a slow node and a flaky link
                          at once
========================  ====================================================

Example
-------
>>> from repro.cluster import ClusterStore, make_scenario, run_scenario
>>> from repro.core import BandanaConfig, ClusterConfig
>>> config = BandanaConfig(cluster=ClusterConfig(num_nodes=4, replication=2))
>>> # store = BandanaStore.build(config, trace); trace as in simulate_store
>>> # report = run_scenario(store, trace, scenario="crash_recover")
>>> # report.availability, report.latency.p999_us, report.counters.retries

Equivalence anchor
------------------
With ``ClusterConfig(num_nodes=1, replication=1)`` and no faults, the
cluster replays a request stream **bit-identically** to the single-host
store: one shard group per table, no retries, no hedges, no shedding, the
same engine state transitions in the same order.
``tests/test_cluster_equivalence.py`` pins this, golden counters included.

Tracing
-------
Pass ``tracing=TracingConfig(enabled=True)`` to :func:`run_scenario` (or
attach a :class:`repro.tracing.Tracer` via
:meth:`~repro.cluster.store.ClusterStore.set_tracer`) and every measured
request records its full fan-out span tree — shard groups, per-attempt
timeout/link-loss/shed/breaker-skip intervals, retry backoffs, hedges (both
attempts of a hedge-won request) and per-node queue-vs-service splits — so
a fault scenario's p999 inflation can be attributed to failover machinery
rather than guessed at.  The summary lands in ``ClusterReport.trace``; see
:mod:`repro.tracing` for the worked example.
"""

from repro.cluster.faults import (
    SCENARIOS,
    DegradedLink,
    FaultSchedule,
    NodeCrash,
    SlowNode,
    make_scenario,
)
from repro.cluster.node import ClusterNode, ShardServiceResult
from repro.cluster.ring import ConsistentHashRing, stable_hash64
from repro.cluster.scenario import ClusterReport, run_scenario, sweep_scenarios
from repro.cluster.store import ClusterCounters, ClusterStore, RequestOutcome

__all__ = [
    "SCENARIOS",
    "ClusterCounters",
    "ClusterNode",
    "ClusterReport",
    "ClusterStore",
    "ConsistentHashRing",
    "DegradedLink",
    "FaultSchedule",
    "NodeCrash",
    "RequestOutcome",
    "ShardServiceResult",
    "SlowNode",
    "make_scenario",
    "run_scenario",
    "stable_hash64",
    "sweep_scenarios",
]
