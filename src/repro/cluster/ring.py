"""Consistent-hash ring with virtual nodes and replica placement.

The cluster partitions each table's dense id space at **block granularity**:
a 4 KB NVM block is the unit of placement (prefetch admission is a
block-local decision, so keeping a block's vectors on one node preserves the
single-store cache semantics within every shard).  Each ``(table, block)``
key hashes to a point on a 64-bit ring; the node owning the first virtual
node clockwise of that point is the block's primary, and the next ``R - 1``
*distinct physical* nodes along the ring hold its replicas — the classic
consistent-hash construction (cf. the sharded KV-store exemplar in
SNIPPETS.md), which moves only ``~1/N`` of the keys when a node joins or
leaves.

Hashes come from ``blake2b`` over stable strings, so placement is a pure
function of (names, vnode count) — independent of process hash
randomisation, platform and run order.  Ownership for a whole table is
precomputed into one ``(num_blocks, R)`` integer array so routing is a
couple of numpy gathers per request.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_int_at_least

_HASH_BITS = 64


def stable_hash64(key: str) -> int:
    """A stable 64-bit hash of a string (first 8 bytes of blake2b)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """A ring of virtual nodes mapping keys to replica lists.

    Parameters
    ----------
    node_names:
        Physical node names, in cluster index order (``replicas_for``
        returns *indices* into this sequence).
    virtual_nodes:
        Virtual nodes per physical node.
    """

    def __init__(self, node_names: Sequence[str], virtual_nodes: int = 64) -> None:
        names = list(node_names)
        if not names:
            raise ValueError("the ring needs at least one node")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {sorted(names)}")
        check_int_at_least(virtual_nodes, 1, "virtual_nodes")
        self.node_names = names
        self.virtual_nodes = int(virtual_nodes)
        points: List[Tuple[int, int]] = []
        for index, name in enumerate(names):
            for v in range(self.virtual_nodes):
                points.append((stable_hash64(f"{name}#vnode{v}"), index))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [o for _, o in points]

    def __len__(self) -> int:
        return len(self.node_names)

    # ---------------------------------------------------------------- lookup
    def replicas_for(self, key: str, replication: int = 1) -> List[int]:
        """The first ``replication`` distinct node indices clockwise of ``key``.

        ``replication`` is clamped to the number of physical nodes (a 3-node
        cluster cannot hold 4 distinct copies).
        """
        check_int_at_least(replication, 1, "replication")
        replication = min(replication, len(self.node_names))
        point = stable_hash64(key)
        start = bisect.bisect_right(self._points, point) % len(self._points)
        replicas: List[int] = []
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in replicas:
                replicas.append(owner)
                if len(replicas) == replication:
                    break
        return replicas

    def block_owners(
        self, table_name: str, num_blocks: int, replication: int = 1
    ) -> np.ndarray:
        """Replica table for one embedding table.

        Returns an ``(num_blocks, R)`` int64 array: row ``b`` holds the node
        indices serving block ``b``, primary first.  ``R`` is ``replication``
        clamped to the cluster size.
        """
        check_int_at_least(num_blocks, 0, "num_blocks")
        check_int_at_least(replication, 1, "replication")
        effective = min(replication, len(self.node_names))
        owners = np.empty((num_blocks, effective), dtype=np.int64)
        for block in range(num_blocks):
            owners[block] = self.replicas_for(
                f"{table_name}:block{block}", effective
            )
        return owners

    # ------------------------------------------------------------- diagnostics
    def ownership_shares(
        self, table_name: str, num_blocks: int, replication: int = 1
    ) -> Dict[int, int]:
        """Blocks-served count per node (over all replica slots) for a table."""
        owners = self.block_owners(table_name, num_blocks, replication)
        counts = np.bincount(owners.ravel(), minlength=len(self.node_names))
        return {node: int(count) for node, count in enumerate(counts)}
