"""The cluster store: consistent-hash routing with failure-survival machinery.

:class:`ClusterStore` serves multi-table requests against a fleet of
simulated :class:`~repro.cluster.node.ClusterNode` instances.  Each request
is split into **shard groups** — maximal runs of ids sharing one replica set
on the ring — fanned out, and fanned back in: the request completes when its
slowest shard group does (latency is the max over touched shards), which is
what makes fan-in stragglers visible at p999.

Robustness machinery, in the order an attempt meets it:

1. **Circuit breaker** (per node): after ``breaker_failure_threshold``
   consecutive failures or slow responses the node is ejected — the router
   skips it without paying a timeout — until ``breaker_cooloff_s`` passes
   and a half-open probe succeeds.  The breaker never ejects the *only*
   available replica: with ``R = 1`` (or every replica open) the attempt is
   force-allowed, so conservative breakers degrade latency, not
   availability.
2. **Crash / loss timeouts with capped exponential backoff**: an attempt
   against a crashed node, or one lost on a degraded link, burns
   ``shard_timeout_us``; the retry targets the *next replica* after a
   backoff that doubles per attempt up to ``retry_backoff_cap_us``.
3. **Admission control**: an overloaded node sheds the read instantly
   (queue-level load shedding against the table's SLO — see
   :mod:`repro.cluster.node`) and the router retries another replica.
4. **Hedged reads**: when a first attempt's latency exceeds the running
   p99-based hedge delay, a duplicate read is fired at another replica and
   the earlier completion wins.  Hedges do real work — they warm the
   secondary's cache — exactly like production hedging.

A request whose shard group exhausts ``max_attempts`` is **degraded**, not
crashed: it completes with partial features and is counted against
availability.  The hard equivalence anchor: with one node, ``R = 1`` and no
faults, every request is one unhedged, unretried engine replay in arrival
order — bit-identical counters to :class:`~repro.core.bandana.BandanaStore`
(pinned in ``tests/test_cluster_equivalence.py``).

Tracing
-------
Attach a :class:`repro.tracing.Tracer` via :meth:`ClusterStore.set_tracer`
(or pass ``tracing=`` to :func:`repro.cluster.run_scenario`) and every
request records a span tree on the simulated clock: a ``"request"`` root,
a ``batcher.queue`` span when the request waited in a front-end batcher,
one ``shard_group`` span per fan-out (parallel siblings), and one span per
attempt — ``attempt.ok`` with ``node.queue``/``node.service`` children,
``attempt.timeout``/``attempt.link_loss``/``attempt.shed``/
``attempt.breaker_skip`` for the failure modes, ``backoff`` intervals
between retries, and ``hedge.won``/``hedge.lost`` for duplicate reads (a
hedge-won request shows *both* attempts; the beaten primary is flagged as a
speculative loser).  Disabled tracing is the shared no-op singleton — one
attribute load and a branch per site, no allocations, and bit-identical
behavior (golden-pinned).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.caching.replay import ReplayStats
from repro.cluster.faults import FaultSchedule
from repro.cluster.node import ClusterNode, ShardServiceResult
from repro.cluster.ring import ConsistentHashRing
from repro.core.config import ClusterConfig
from repro.core.tablespec import TableServingSpec
from repro.tracing.tracer import (
    ATTR_OVERLAP_OK,
    ATTR_PARALLEL,
    NULL_TRACER,
    STAGE_ATTEMPT_BREAKER_SKIP,
    STAGE_ATTEMPT_LINK_LOSS,
    STAGE_ATTEMPT_OK,
    STAGE_ATTEMPT_SHED,
    STAGE_ATTEMPT_TIMEOUT,
    STAGE_BACKOFF,
    STAGE_BATCH_QUEUE,
    STAGE_FANIN_OVERHEAD,
    STAGE_HEDGE_LOST,
    STAGE_HEDGE_WON,
    STAGE_NODE_QUEUE,
    STAGE_NODE_SERVICE,
    STAGE_SHARD_GROUP,
    Tracer,
)
from repro.utils.units import s_to_us
from repro.utils.rng import ensure_rng

if TYPE_CHECKING:
    from repro.core.bandana import BandanaStore

#: Size of the trailing shard-latency window behind the hedge-delay estimate.
_HEDGE_WINDOW = 512
#: How often (in samples) the hedge-delay quantile is recomputed.
_HEDGE_REFRESH = 32


@dataclass
class ClusterCounters:
    """Cumulative robustness accounting of one cluster store."""

    requests_total: int = 0
    requests_ok: int = 0
    requests_degraded: int = 0
    shard_groups: int = 0
    shard_groups_failed: int = 0
    shard_attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    link_losses: int = 0
    sheds: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    hedges_lost: int = 0
    breaker_skips: int = 0
    breaker_ejections: int = 0
    cold_restarts: int = 0

    @property
    def availability(self) -> float:
        """Fraction of requests fully served (no degraded shard groups)."""
        if self.requests_total == 0:
            return 1.0
        return self.requests_ok / self.requests_total

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests_total": self.requests_total,
            "requests_ok": self.requests_ok,
            "requests_degraded": self.requests_degraded,
            "availability": self.availability,
            "shard_groups": self.shard_groups,
            "shard_groups_failed": self.shard_groups_failed,
            "shard_attempts": self.shard_attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "link_losses": self.link_losses,
            "sheds": self.sheds,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "hedges_lost": self.hedges_lost,
            "breaker_skips": self.breaker_skips,
            "breaker_ejections": self.breaker_ejections,
            "cold_restarts": self.cold_restarts,
        }


@dataclass(frozen=True)
class RequestOutcome:
    """Fan-in result of one multi-table request."""

    arrival_us: float
    completion_us: float
    shard_groups: int
    failed_groups: int

    @property
    def ok(self) -> bool:
        """Whether every shard group was served (no degraded features)."""
        return self.failed_groups == 0

    @property
    def latency_us(self) -> float:
        return self.completion_us - self.arrival_us


@dataclass(frozen=True)
class _HedgeAttempt:
    """What one *fired* hedge did (``None`` from ``_hedge`` = never fired).

    A hedge that fired always counts as launched — even when the duplicate
    read was lost in flight or shed on arrival, the router paid for it and
    (when it completed) the secondary's cache was warmed.  ``completion_us``
    is ``None`` exactly when ``outcome`` is not ``"completed"``.
    """

    node_index: int
    start_us: float
    arrive_us: float
    outcome: str  # "completed" | "link_loss" | "shed"
    completion_us: Optional[float] = None
    queue_wait_us: float = 0.0
    service_us: float = 0.0


class _CircuitBreaker:
    """Consecutive-strike breaker for one node (see module docstring)."""

    def __init__(self, failure_threshold: int, cooloff_us: int) -> None:
        self.failure_threshold = int(failure_threshold)
        self.cooloff_us = int(cooloff_us)
        self.strikes = 0
        self.open_until_us = 0.0
        self.ejections = 0

    def allows(self, now_us: float) -> bool:
        """Closed, or open long enough that a half-open probe is due."""
        return now_us >= self.open_until_us

    def strike(self, now_us: float) -> bool:
        """Record a failure/slow response; returns True if the breaker opened."""
        self.strikes += 1
        if self.strikes >= self.failure_threshold:
            self.open_until_us = now_us + self.cooloff_us
            self.strikes = 0
            self.ejections += 1
            return True
        return False

    def succeed(self) -> None:
        self.strikes = 0


class ClusterStore:
    """A simulated multi-node, replicated embedding store (see module docstring).

    Parameters
    ----------
    specs:
        Per-table serving specs (from
        :meth:`~repro.core.bandana.BandanaStore.table_specs` or built
        directly).
    config:
        Topology and robustness knobs.
    faults:
        Optional fault schedule; ``None`` means a healthy cluster.
    """

    def __init__(
        self,
        specs: Mapping[str, TableServingSpec],
        config: Optional[ClusterConfig] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        if not specs:
            raise ValueError("the cluster needs at least one table spec")
        self.specs = dict(specs)
        self.config = config or ClusterConfig()
        self.faults = faults or FaultSchedule(())
        self.ring = ConsistentHashRing(
            [f"node{i}" for i in range(self.config.num_nodes)],
            virtual_nodes=self.config.virtual_nodes,
        )
        #: Effective replication (``R`` clamped to the cluster size).
        self.replication = min(self.config.replication, self.config.num_nodes)
        # Block-ownership tables: name -> (num_blocks, R) node-index array.
        self._owners: Dict[str, np.ndarray] = {
            name: self.ring.block_owners(
                name, spec.layout.num_blocks, self.replication
            )
            for name, spec in self.specs.items()
        }
        self._build_serving_state()

    # ------------------------------------------------------------------ build
    @classmethod
    def from_store(
        cls,
        store: "BandanaStore",
        config: Optional[ClusterConfig] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> "ClusterStore":
        """Build a cluster serving the same tables as a single-host store.

        ``store`` is a :class:`~repro.core.bandana.BandanaStore`; its
        resolved placement, policies and cache budgets become the cluster's
        table specs, and ``config`` defaults to ``store.config.cluster``.
        """
        return cls(
            store.table_specs(),
            config=config if config is not None else store.config.cluster,
            faults=faults,
        )

    def _build_serving_state(self) -> None:
        owned: Dict[int, Dict[str, int]] = {
            i: {} for i in range(self.config.num_nodes)
        }
        for name, owners in self._owners.items():
            counts = np.bincount(owners.ravel(), minlength=self.config.num_nodes)
            for node, count in enumerate(counts):
                if count:
                    owned[node][name] = int(count)
        self.nodes: List[ClusterNode] = [
            ClusterNode(
                index=i,
                specs={name: self.specs[name] for name in owned[i]},
                owned_blocks=owned[i],
                node_overhead_us=self.config.node_overhead_us,
                devices_per_node=self.config.devices_per_node,
            )
            for i in range(self.config.num_nodes)
        ]
        self._breakers = [
            _CircuitBreaker(
                self.config.breaker_failure_threshold,
                s_to_us(self.config.breaker_cooloff_s),
            )
            for _ in range(self.config.num_nodes)
        ]
        self.counters = ClusterCounters()
        self._clock_us = 0.0
        self._rng = ensure_rng(self.config.seed)
        self._latency_window: List[float] = []
        self._hedge_delay_us = self.config.hedge_min_us
        self._samples_since_refresh = 0
        #: Span recorder (``repro.tracing``); the shared no-op singleton
        #: unless a caller attaches a real tracer via :meth:`set_tracer`.
        #: An attachment survives resets — tracing observes serving state,
        #: it is not part of it.
        self.tracer: Tracer = getattr(self, "tracer", NULL_TRACER)

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attach a span recorder (``None`` detaches back to the no-op)."""
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def reset_serving_state(self) -> None:
        """Cold caches, zeroed counters and clocks, reseeded loss draws."""
        self._build_serving_state()

    def rebase_clocks(self) -> None:
        """Zero all simulated clocks and counters, keeping caches warm.

        Scenario runs warm the cluster with a sequential prefix replay, then
        rebase so the measured open-loop run starts at ``t = 0`` with warm
        caches but no phantom backlog from the warm-up — the cold-start miss
        surge would otherwise dominate every percentile.  Engine stats are
        cumulative across the rebase; callers measure deltas.
        """
        self._clock_us = 0.0
        for node in self.nodes:
            node.rebase(0.0)
            node.last_seen_us = 0.0
        # Breaker open-until timestamps and hedge-delay samples live in the
        # pre-rebase clock domain; carrying them across would leave a node
        # spuriously ejected (or a stale hedge delay) at measured t=0.
        for breaker in self._breakers:
            breaker.strikes = 0
            breaker.open_until_us = 0.0
        self._latency_window.clear()
        self._samples_since_refresh = 0
        self._hedge_delay_us = self.config.hedge_min_us
        self.counters = ClusterCounters()

    # ---------------------------------------------------------------- serving
    def serve_request(
        self,
        request: Mapping[str, Iterable[int]],
        now_us: Optional[float] = None,
        arrival_us: Optional[float] = None,
    ) -> RequestOutcome:
        """Serve one multi-table request dispatched at ``now_us``.

        ``now_us=None`` is sequential-replay mode: the request is issued the
        moment the previous one completed (queues are empty, nothing sheds),
        which is the schedule equivalence tests compare against single-store
        replay.  Open-loop callers pass real dispatch timestamps, making
        node backlog — and therefore admission control — real.

        ``arrival_us`` is the request's *true* arrival when it waited in a
        front-end batcher before dispatch (defaults to ``now_us``): it only
        anchors the returned outcome's latency and the trace's root span —
        serving timing starts at dispatch either way.
        """
        dispatch_us = self._clock_us if now_us is None else float(now_us)
        true_arrival_us = dispatch_us if arrival_us is None else float(arrival_us)
        tracer = self.tracer
        rid = self.counters.requests_total
        if tracer.enabled:
            tracer.begin_request(rid, true_arrival_us)
            if dispatch_us > true_arrival_us:
                tracer.span(rid, STAGE_BATCH_QUEUE, true_arrival_us, dispatch_us)
        groups = self._route(request)
        completion_us = dispatch_us
        failed = 0
        for table_name, replicas, ids in groups:
            group_span_id = -1
            if tracer.enabled:
                group_span_id = tracer.open_span(
                    rid,
                    STAGE_SHARD_GROUP,
                    dispatch_us,
                    table=table_name,
                    replicas=replicas,
                    num_ids=int(ids.size),
                    **{ATTR_PARALLEL: True},
                )
            ok, group_completion = self._serve_shard_group(
                table_name,
                replicas,
                ids,
                dispatch_us,
                rid=rid,
                group_span_id=group_span_id,
            )
            if tracer.enabled:
                tracer.close_span(rid, group_span_id, group_completion, ok=ok)
            completion_us = max(completion_us, group_completion)
            if not ok:
                failed += 1
        if tracer.enabled:
            tracer.span(
                rid,
                STAGE_FANIN_OVERHEAD,
                completion_us,
                completion_us + self.config.request_overhead_us,
            )
        completion_us += self.config.request_overhead_us
        self.counters.requests_total += 1
        self.counters.shard_groups += len(groups)
        self.counters.shard_groups_failed += failed
        if failed:
            self.counters.requests_degraded += 1
        else:
            self.counters.requests_ok += 1
        self._clock_us = max(self._clock_us, completion_us)
        if tracer.enabled:
            tracer.end_request(rid, completion_us, degraded=failed > 0)
        return RequestOutcome(
            arrival_us=true_arrival_us,
            completion_us=completion_us,
            shard_groups=len(groups),
            failed_groups=failed,
        )

    def replay_requests(self, requests: Iterable[Mapping[str, Iterable[int]]]) -> None:
        """Replay a request stream back-to-back (sequential mode)."""
        for request in requests:
            self.serve_request(request)

    # ---------------------------------------------------------------- routing
    def _route(
        self, request: Mapping[str, Iterable[int]]
    ) -> List[Tuple[str, Tuple[int, ...], np.ndarray]]:
        """Split a request into (table, replica-set, ids) shard groups.

        Ids sharing a replica set stay in one group **in request order**, so
        the per-engine replay order matches single-store serving exactly.
        """
        groups: List[Tuple[str, Tuple[int, ...], np.ndarray]] = []
        for table_name, raw_ids in request.items():
            spec = self._spec(table_name)
            ids = np.asarray(raw_ids, dtype=np.int64)
            if ids.size == 0:
                continue
            owners = self._owners[table_name]
            if len(self.nodes) == 1:
                groups.append((table_name, (0,) * owners.shape[1], ids))
                continue
            rows = owners[spec.layout.block_of(ids)]
            unique_rows, inverse = np.unique(rows, axis=0, return_inverse=True)
            for g in range(unique_rows.shape[0]):
                groups.append(
                    (
                        table_name,
                        tuple(int(n) for n in unique_rows[g]),
                        ids[inverse == g],
                    )
                )
        return groups

    def _spec(self, table_name: str) -> TableServingSpec:
        try:
            return self.specs[table_name]
        except KeyError:
            raise KeyError(
                f"unknown table {table_name!r}; known tables: {sorted(self.specs)}"
            ) from None

    # ------------------------------------------------------------ shard serve
    def _serve_shard_group(
        self,
        table_name: str,
        replicas: Sequence[int],
        ids: np.ndarray,
        t0_us: float,
        rid: int = -1,
        group_span_id: int = -1,
    ) -> Tuple[bool, float]:
        """Serve one shard group with retries/hedging; see module docstring.

        ``rid``/``group_span_id`` anchor the per-attempt spans when a tracer
        is attached: every attempt — including ones that burned a timeout,
        were shed, or were skipped on an open breaker — becomes a span under
        the group, so a traced request shows *why* its group was slow, not
        just that it was.
        """
        config = self.config
        counters = self.counters
        tracer = self.tracer
        num_replicas = len(replicas)
        backoff_us = config.retry_backoff_us
        t = t0_us
        consecutive_skips = 0
        attempts_made = 0
        for attempt in range(config.max_attempts):
            node_index = replicas[attempt % num_replicas]
            node = self.nodes[node_index]
            breaker = self._breakers[node_index]
            # The breaker never ejects the only viable replica: with R = 1,
            # or after a full cycle of open breakers, force the attempt.
            force = num_replicas == 1 or consecutive_skips >= num_replicas
            if not force and not breaker.allows(t):
                counters.breaker_skips += 1
                consecutive_skips += 1
                if tracer.enabled:
                    tracer.span(
                        rid,
                        STAGE_ATTEMPT_BREAKER_SKIP,
                        t,
                        t,
                        parent_id=group_span_id,
                        node=node_index,
                    )
                continue
            consecutive_skips = 0
            if attempts_made:
                counters.retries += 1
            attempts_made += 1
            counters.shard_attempts += 1
            self._maybe_recover(node, t)
            if self.faults.is_down(node_index, t):
                counters.timeouts += 1
                if breaker.strike(t + config.shard_timeout_us):
                    counters.breaker_ejections += 1
                if tracer.enabled:
                    timeout_end = t + config.shard_timeout_us
                    tracer.span(
                        rid,
                        STAGE_ATTEMPT_TIMEOUT,
                        t,
                        timeout_end,
                        parent_id=group_span_id,
                        node=node_index,
                    )
                    tracer.span(
                        rid,
                        STAGE_BACKOFF,
                        timeout_end,
                        timeout_end + backoff_us,
                        parent_id=group_span_id,
                    )
                t += config.shard_timeout_us + backoff_us
                backoff_us = min(2.0 * backoff_us, config.retry_backoff_cap_us)
                continue
            extra_delay_us, loss_prob = self.faults.link(node_index, t)
            link_delay_us = config.link_delay_us + extra_delay_us
            if loss_prob > 0.0 and self._rng.random() < loss_prob:
                counters.link_losses += 1
                counters.timeouts += 1
                if breaker.strike(t + config.shard_timeout_us):
                    counters.breaker_ejections += 1
                if tracer.enabled:
                    timeout_end = t + config.shard_timeout_us
                    tracer.span(
                        rid,
                        STAGE_ATTEMPT_LINK_LOSS,
                        t,
                        timeout_end,
                        parent_id=group_span_id,
                        node=node_index,
                    )
                    tracer.span(
                        rid,
                        STAGE_BACKOFF,
                        timeout_end,
                        timeout_end + backoff_us,
                        parent_id=group_span_id,
                    )
                t += config.shard_timeout_us + backoff_us
                backoff_us = min(2.0 * backoff_us, config.retry_backoff_cap_us)
                continue
            arrive_us = t + link_delay_us
            wait_us = node.queue_wait_us(arrive_us, table_name)
            if wait_us > config.admission_queue_slack * config.slo_us(table_name):
                # Fast rejection: the node answers "busy" after one round
                # trip instead of queueing the read unboundedly.
                counters.sheds += 1
                if tracer.enabled:
                    shed_end = t + 2.0 * link_delay_us
                    tracer.span(
                        rid,
                        STAGE_ATTEMPT_SHED,
                        t,
                        shed_end,
                        parent_id=group_span_id,
                        node=node_index,
                        queue_wait_us=wait_us,
                    )
                    tracer.span(
                        rid,
                        STAGE_BACKOFF,
                        shed_end,
                        shed_end + backoff_us,
                        parent_id=group_span_id,
                    )
                t += 2.0 * link_delay_us + backoff_us
                backoff_us = min(2.0 * backoff_us, config.retry_backoff_cap_us)
                continue
            multiplier = self.faults.latency_multiplier(node_index, t)
            service = node.serve(table_name, ids, arrive_us, multiplier)
            attempt_latency_us = 2.0 * link_delay_us + service.total_us
            completion_us = t + attempt_latency_us
            # Slow strikes judge *service* time, not queue wait: a backlog
            # is cluster-wide overload (admission control's domain), not
            # evidence this replica is broken — striking on totals would
            # eject healthy nodes exactly when none can be spared.
            if service.service_us > config.breaker_slow_threshold_us:
                if num_replicas > 1 and breaker.strike(completion_us):
                    counters.breaker_ejections += 1
            else:
                breaker.succeed()
            hedge: Optional[_HedgeAttempt] = None
            hedge_won = False
            if (
                attempt == 0
                and config.hedge_enabled
                and num_replicas > 1
                and attempt_latency_us > self._hedge_delay_us
            ):
                hedge = self._hedge(
                    table_name, replicas, node_index, ids, t0_us + self._hedge_delay_us
                )
                if hedge is not None:
                    # A fired hedge is a launched hedge whatever became of
                    # it — the duplicate read cost the router a round trip
                    # and (when served) warmed the secondary's cache.
                    counters.hedges_launched += 1
                    # A tie is a win: the hedge returned no later than the
                    # primary, so its result was usable (completion time is
                    # unchanged either way).
                    if (
                        hedge.completion_us is not None
                        and hedge.completion_us <= completion_us
                    ):
                        counters.hedges_won += 1
                        hedge_won = True
                    else:
                        counters.hedges_lost += 1
            if tracer.enabled:
                self._record_attempt_spans(
                    rid,
                    group_span_id,
                    node_index,
                    t,
                    arrive_us,
                    service,
                    completion_us,
                    hedge,
                    hedge_won,
                )
            if hedge_won:
                assert hedge is not None and hedge.completion_us is not None
                completion_us = hedge.completion_us
            self._record_shard_latency(completion_us - t0_us)
            return True, completion_us
        return False, t

    def _record_attempt_spans(
        self,
        rid: int,
        group_span_id: int,
        node_index: int,
        t_us: float,
        arrive_us: float,
        service: "ShardServiceResult",
        completion_us: float,
        hedge: Optional[_HedgeAttempt],
        hedge_won: bool,
    ) -> None:
        """Record the served attempt's spans (and its hedge's, if one fired).

        Only called with a real tracer attached.  When the hedge won, the
        primary attempt is the speculative loser — it ends after the group
        closes at the hedge's completion — so it carries
        :data:`~repro.tracing.tracer.ATTR_OVERLAP_OK`; a lost hedge carries
        it for the mirror reason.
        """
        tracer = self.tracer
        primary_attrs: Dict[str, object] = {"node": node_index}
        if hedge_won:
            primary_attrs[ATTR_OVERLAP_OK] = True
        attempt_id = tracer.span(
            rid,
            STAGE_ATTEMPT_OK,
            t_us,
            completion_us,
            parent_id=group_span_id,
            **primary_attrs,
        )
        served_us = arrive_us + service.queue_wait_us
        tracer.span(
            rid, STAGE_NODE_QUEUE, arrive_us, served_us, parent_id=attempt_id
        )
        tracer.span(
            rid,
            STAGE_NODE_SERVICE,
            served_us,
            served_us + service.service_us,
            parent_id=attempt_id,
        )
        if hedge is None:
            return
        name = STAGE_HEDGE_WON if hedge_won else STAGE_HEDGE_LOST
        hedge_attrs: Dict[str, object] = {
            "node": hedge.node_index,
            "outcome": hedge.outcome,
        }
        if not hedge_won:
            hedge_attrs[ATTR_OVERLAP_OK] = True
        hedge_end = (
            hedge.completion_us if hedge.completion_us is not None else hedge.start_us
        )
        hedge_id = tracer.span(
            rid, name, hedge.start_us, hedge_end, parent_id=group_span_id, **hedge_attrs
        )
        if hedge.outcome == "completed":
            hedge_served_us = hedge.arrive_us + hedge.queue_wait_us
            tracer.span(
                rid,
                STAGE_NODE_QUEUE,
                hedge.arrive_us,
                hedge_served_us,
                parent_id=hedge_id,
            )
            tracer.span(
                rid,
                STAGE_NODE_SERVICE,
                hedge_served_us,
                hedge_served_us + hedge.service_us,
                parent_id=hedge_id,
            )

    def _hedge(
        self,
        table_name: str,
        replicas: Sequence[int],
        primary_index: int,
        ids: np.ndarray,
        start_us: float,
    ) -> Optional[_HedgeAttempt]:
        """Fire one duplicate read at the first viable secondary replica.

        Returns ``None`` when no secondary was viable *before* firing (every
        candidate down or ejected) — nothing was launched.  Otherwise the
        hedge fired, and the returned :class:`_HedgeAttempt` says what
        became of it: ``"completed"`` with a completion time, or
        ``"link_loss"`` / ``"shed"`` for a duplicate that was launched but
        lost — the router still pays the primary's latency, but the launch
        must be accounted.
        """
        config = self.config
        for node_index in replicas:
            if node_index == primary_index:
                continue
            node = self.nodes[node_index]
            if not self._breakers[node_index].allows(start_us):
                continue
            self._maybe_recover(node, start_us)
            if self.faults.is_down(node_index, start_us):
                continue
            extra_delay_us, loss_prob = self.faults.link(node_index, start_us)
            link_delay_us = config.link_delay_us + extra_delay_us
            arrive_us = start_us + link_delay_us
            if loss_prob > 0.0 and self._rng.random() < loss_prob:
                return _HedgeAttempt(
                    node_index=node_index,
                    start_us=start_us,
                    arrive_us=arrive_us,
                    outcome="link_loss",
                )
            wait_us = node.queue_wait_us(arrive_us, table_name)
            if wait_us > config.admission_queue_slack * config.slo_us(table_name):
                return _HedgeAttempt(
                    node_index=node_index,
                    start_us=start_us,
                    arrive_us=arrive_us,
                    outcome="shed",
                    queue_wait_us=wait_us,
                )
            multiplier = self.faults.latency_multiplier(node_index, start_us)
            service = node.serve(table_name, ids, arrive_us, multiplier)
            return _HedgeAttempt(
                node_index=node_index,
                start_us=start_us,
                arrive_us=arrive_us,
                outcome="completed",
                completion_us=start_us + 2.0 * link_delay_us + service.total_us,
                queue_wait_us=service.queue_wait_us,
                service_us=service.service_us,
            )
        return None

    # ----------------------------------------------------------------- faults
    def _maybe_recover(self, node: ClusterNode, now_us: float) -> None:
        """Cold-restart a node the first time it is touched after a crash."""
        if self.faults.crash_recovered_between(node.index, node.last_seen_us, now_us):
            node.cold_restart(now_us)
            self.counters.cold_restarts += 1
        node.last_seen_us = max(node.last_seen_us, now_us)

    # ---------------------------------------------------------------- hedging
    def _record_shard_latency(self, latency_us: float) -> None:
        window = self._latency_window
        window.append(latency_us)
        if len(window) > _HEDGE_WINDOW:
            del window[: len(window) - _HEDGE_WINDOW]
        self._samples_since_refresh += 1
        if self._samples_since_refresh >= _HEDGE_REFRESH:
            self._samples_since_refresh = 0
            quantile = float(
                np.percentile(window, self.config.hedge_quantile * 100.0)
            )
            self._hedge_delay_us = max(self.config.hedge_min_us, quantile)

    @property
    def hedge_delay_us(self) -> float:
        """The current p99-based hedge trigger delay."""
        return self._hedge_delay_us

    # ---------------------------------------------------------------- metrics
    def table_stats(self) -> Dict[str, ReplayStats]:
        """Per-table replay counters, merged over every node's replicas."""
        merged: Dict[str, ReplayStats] = {}
        for name, spec in self.specs.items():
            stats = spec.make_stats()
            for node in self.nodes:
                if node.serves_table(name):
                    stats = stats.merge(node.engines[name].stats)
            merged[name] = stats
        return merged

    def aggregate_stats(self) -> ReplayStats:
        """Cluster-wide replay counters (sum over tables and nodes)."""
        merged: Optional[ReplayStats] = None
        for stats in self.table_stats().values():
            merged = stats if merged is None else merged.merge(stats)
        return merged if merged is not None else ReplayStats()

    def node_blocks_read(self) -> List[int]:
        """Per-node NVM blocks read — the cluster's load-skew fingerprint."""
        return [node.blocks_read() for node in self.nodes]

    def breaker_states(self) -> List[Dict[str, float]]:
        """Per-node breaker diagnostics (strikes, open-until, ejections)."""
        return [
            {
                "strikes": b.strikes,
                "open_until_us": b.open_until_us,
                "ejections": b.ejections,
            }
            for b in self._breakers
        ]
