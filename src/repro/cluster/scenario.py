"""Fault-scenario runner: one request stream, one schedule, one report.

:func:`run_scenario` is the cluster-side sibling of
:func:`repro.serving.simulate_serving`: it replays a model trace through a
:class:`~repro.cluster.store.ClusterStore` under an open-loop arrival
process while a :class:`~repro.cluster.faults.FaultSchedule` degrades the
cluster, and condenses what happened into a :class:`ClusterReport` —
end-to-end latency percentiles (fan-in makes stragglers land in p999),
availability (fraction of requests with every shard group served), and the
full robustness counter set (retries, timeouts, sheds, hedges, breaker
ejections, cold restarts).

:func:`sweep_scenarios` runs the catalog back-to-back on fresh clusters, the
shape of ``benchmarks/bench_cluster_failures.py``: the ``"none"`` row is the
healthy baseline, every other row prices one failure mode in p999 and
availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.cluster.faults import SCENARIOS, FaultSchedule, make_scenario
from repro.cluster.store import ClusterCounters, ClusterStore
from repro.core.bandana import BandanaStore
from repro.core.config import ClusterConfig, ServingConfig, TracingConfig
from repro.serving.arrivals import arrival_times
from repro.serving.report import LatencySummary
from repro.simulation.interleaved import iter_store_requests
from repro.tracing.tracer import Tracer, resolve_tracer
from repro.workloads.trace import ModelTrace


@dataclass(frozen=True)
class ClusterReport:
    """Everything one fault-scenario run observed."""

    scenario: str
    num_requests: int
    num_nodes: int
    replication: int
    offered_rate_rps: float
    makespan_s: float
    throughput_rps: float
    latency: LatencySummary
    slo_latency_us: float
    slo_violations: int
    availability: float
    counters: ClusterCounters
    lookups: int
    hit_rate: float
    blocks_read: int
    node_blocks_read: List[int]
    #: JSON-ready tracer summary (``repro.tracing``): per-stage breakdown
    #: over the measured run plus the top-K slowest requests' critical
    #: paths.  ``None`` unless the run was traced.
    trace: Optional[Dict[str, object]] = None

    @property
    def slo_violation_rate(self) -> float:
        if self.num_requests == 0:
            return 0.0
        return self.slo_violations / self.num_requests

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (used by the benchmark artifacts)."""
        return {
            "scenario": self.scenario,
            "num_requests": self.num_requests,
            "num_nodes": self.num_nodes,
            "replication": self.replication,
            "offered_rate_rps": self.offered_rate_rps,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency.to_dict(),
            "slo_latency_us": self.slo_latency_us,
            "slo_violations": self.slo_violations,
            "slo_violation_rate": self.slo_violation_rate,
            "availability": self.availability,
            "counters": self.counters.as_dict(),
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "blocks_read": self.blocks_read,
            "node_blocks_read": list(self.node_blocks_read),
            "trace": self.trace,
        }


def run_scenario(
    store: BandanaStore,
    eval_trace: ModelTrace,
    scenario: Union[str, FaultSchedule] = "none",
    cluster_config: Optional[ClusterConfig] = None,
    serving_config: Optional[ServingConfig] = None,
    num_requests: Optional[int] = None,
    scenario_overrides: Optional[Mapping[str, float]] = None,
    warmup_requests: int = 0,
    tracing: Optional["TracingConfig | Tracer"] = None,
) -> ClusterReport:
    """Replay a trace through a fresh fault-injected cluster (see module doc).

    Parameters
    ----------
    store:
        A built single-host store; its resolved placement, policies and
        cache budgets define the cluster's tables
        (:meth:`~repro.cluster.store.ClusterStore.from_store`).
    eval_trace:
        Per-table queries, zipped into multi-table requests exactly like the
        single-host replay and serving paths.
    scenario:
        A catalog name (:data:`~repro.cluster.faults.SCENARIOS`) or an
        explicit :class:`~repro.cluster.faults.FaultSchedule`.
    cluster_config:
        Topology/robustness knobs; defaults to ``store.config.cluster``.
    serving_config:
        Arrival process and SLO; defaults to ``store.config.serving``.
    num_requests:
        Optional cap on the request stream.
    scenario_overrides:
        Extra knobs forwarded to the scenario factory (window, target node,
        severity); ignored for explicit schedules.
    warmup_requests:
        Requests replayed sequentially (and excluded from every reported
        number) before the measured run, after which the cluster's clocks
        rebase to zero with warm caches — without this the cold-start miss
        surge dominates every percentile and masks the fault's tail cost.
    tracing:
        Per-request span tracing (:mod:`repro.tracing`): a
        :class:`~repro.core.config.TracingConfig` (enabled) or an existing
        :class:`~repro.tracing.Tracer`; defaults to
        ``store.config.tracing`` — disabled.  The tracer attaches *after*
        the warm-up and clock rebase, so it sees exactly the measured
        requests (ids ``0..n-1``) and the conservation invariant — every
        measured arrival in exactly one completed/degraded trace — is
        testable.  The report then carries the tracer's JSON summary in
        ``report.trace``.
    """
    cluster_config = cluster_config or store.config.cluster
    serving_config = serving_config or store.config.serving
    if isinstance(scenario, FaultSchedule):
        faults, scenario_name = scenario, "custom"
    else:
        faults = make_scenario(
            scenario, cluster_config.num_nodes, **dict(scenario_overrides or {})
        )
        scenario_name = scenario
    cluster = ClusterStore.from_store(store, config=cluster_config, faults=faults)

    stream = list(iter_store_requests(eval_trace))
    warmup = int(warmup_requests)
    requests = stream[warmup:]
    if num_requests is not None:
        requests = requests[: int(num_requests)]
    n = len(requests)
    seed = store.config.seed if serving_config.seed is None else serving_config.seed
    arrival_us = arrival_times(serving_config, n, seed=seed) * 1e6

    if warmup:
        for request in stream[:warmup]:
            cluster.serve_request(request)
        cluster.rebase_clocks()
    stats_before = cluster.aggregate_stats()
    node_blocks_before = cluster.node_blocks_read()

    # Attached after warm-up + rebase: the tracer sees only the measured
    # requests, whose ids restart at 0 with the rebased counters.
    tracer = resolve_tracer(
        tracing if tracing is not None else store.config.tracing,
        slo_latency_us=serving_config.slo_latency_us,
    )
    cluster.set_tracer(tracer)
    latencies = np.empty(n, dtype=np.float64)
    last_completion_us = 0.0
    try:
        for i, request in enumerate(requests):
            outcome = cluster.serve_request(request, now_us=float(arrival_us[i]))
            latencies[i] = outcome.latency_us
            last_completion_us = max(last_completion_us, outcome.completion_us)
    finally:
        cluster.set_tracer(None)

    stats = cluster.aggregate_stats()
    makespan_us = last_completion_us - (float(arrival_us[0]) if n else 0.0)
    makespan_s = makespan_us / 1e6
    return ClusterReport(
        scenario=scenario_name,
        num_requests=n,
        num_nodes=cluster_config.num_nodes,
        replication=cluster.replication,
        offered_rate_rps=serving_config.arrival_rate_rps,
        makespan_s=makespan_s,
        throughput_rps=n / makespan_s if makespan_s > 0 else 0.0,
        latency=LatencySummary.from_samples(latencies),
        slo_latency_us=serving_config.slo_latency_us,
        slo_violations=int(
            np.count_nonzero(latencies > serving_config.slo_latency_us)
        ),
        availability=cluster.counters.availability,
        counters=cluster.counters,
        lookups=stats.lookups - stats_before.lookups,
        hit_rate=(
            (stats.hits - stats_before.hits) / (stats.lookups - stats_before.lookups)
            if stats.lookups > stats_before.lookups
            else 0.0
        ),
        blocks_read=stats.misses - stats_before.misses,
        node_blocks_read=[
            after - before
            for after, before in zip(cluster.node_blocks_read(), node_blocks_before)
        ],
        trace=tracer.summary() if tracer.enabled else None,
    )


def sweep_scenarios(
    store: BandanaStore,
    eval_trace: ModelTrace,
    scenarios: Optional[Sequence[str]] = None,
    **kwargs: object,
) -> Dict[str, ClusterReport]:
    """Run the scenario catalog back-to-back, one fresh cluster per scenario.

    ``scenarios`` defaults to the whole catalog in declaration order
    (``"none"`` first, so every later row reads against the healthy
    baseline); ``kwargs`` are forwarded to :func:`run_scenario`.
    """
    names: Iterable[str] = scenarios if scenarios is not None else list(SCENARIOS)
    return {
        name: run_scenario(store, eval_trace, scenario=name, **kwargs)
        for name in names
    }
