"""Fault injection: scheduled node and link failures for the cluster store.

A :class:`FaultSchedule` is a declarative list of fault events, each active
over a window of simulated time:

* :class:`NodeCrash` — the node is unreachable; attempts against it burn the
  shard timeout.  On recovery the node restarts **cold**: its DRAM caches
  and policy state are gone (the router's retries keep requests alive, but
  the post-recovery miss surge is real and visible in the tail).
* :class:`SlowNode` — the node serves, but every service time is multiplied
  by ``multiplier`` (degraded device, CPU contention, noisy neighbour).
  Persistently slow nodes are what the circuit breaker ejects.
* :class:`DegradedLink` — the router↔node link adds ``extra_delay_us`` each
  way and drops each attempt with probability ``loss_prob`` (the dropped
  attempt burns the shard timeout and is retried with backoff).

Loss draws come from an explicit :class:`numpy.random.Generator` owned by
the cluster store (seeded from ``ClusterConfig.seed``), so a scenario run is
a pure function of (trace, configs, schedule, seed) — the property the chaos
tests pin.

The module also ships a small **scenario catalog**
(:data:`SCENARIOS` / :func:`make_scenario`): named, parameterised schedules
(``"none"``, ``"crash_recover"``, ``"slow_node"``, ``"flaky_link"``,
``"degraded_cluster"``) used by the chaos test-suite and by
``benchmarks/bench_cluster_failures.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Tuple

from repro.utils.units import s_to_us
from repro.utils.validation import (
    check_int_at_least,
    check_non_negative,
    check_positive,
    check_probability,
)


def _check_window(start_s: float, end_s: float) -> None:
    check_non_negative(start_s, "start_s")
    if end_s <= start_s:
        raise ValueError(f"end_s must be > start_s, got [{start_s}, {end_s}]")


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` is down (unreachable) during ``[start_s, end_s)``."""

    node: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        check_int_at_least(self.node, 0, "node")
        _check_window(self.start_s, self.end_s)


@dataclass(frozen=True)
class SlowNode:
    """Node ``node`` serves ``multiplier``× slower during ``[start_s, end_s)``."""

    node: int
    start_s: float
    end_s: float
    multiplier: float = 10.0

    def __post_init__(self) -> None:
        check_int_at_least(self.node, 0, "node")
        _check_window(self.start_s, self.end_s)
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1 (a fault cannot speed a node up), "
                f"got {self.multiplier!r}"
            )


@dataclass(frozen=True)
class DegradedLink:
    """The router↔``node`` link degrades during ``[start_s, end_s)``.

    ``extra_delay_us`` is added to each direction of every attempt;
    ``loss_prob`` is the per-attempt probability the attempt is lost in
    flight (burning the shard timeout and forcing a retry).
    """

    node: int
    start_s: float
    end_s: float
    extra_delay_us: float = 0.0
    loss_prob: float = 0.0

    def __post_init__(self) -> None:
        check_int_at_least(self.node, 0, "node")
        _check_window(self.start_s, self.end_s)
        check_non_negative(self.extra_delay_us, "extra_delay_us")
        check_probability(self.loss_prob, "loss_prob")


FaultEvent = object  # union of the three event dataclasses above


class FaultSchedule:
    """A queryable schedule of fault events over simulated time.

    All queries take the current simulated time in **microseconds** (the
    cluster's clock unit); event windows are declared in seconds, the unit
    scenario authors think in, and are normalised to *integer* microseconds
    once at construction — queries never convert the clock back to float
    seconds, so window boundaries are exact µs ticks rather than artifacts
    of binary floating point (``0.2 * 1e6`` is ``200000.00000000003``).
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        events = tuple(events)
        for event in events:
            if not isinstance(event, (NodeCrash, SlowNode, DegradedLink)):
                raise TypeError(
                    "fault events must be NodeCrash, SlowNode or DegradedLink, "
                    f"got {type(event).__name__}"
                )
        self.events = events
        # Each index holds (event, start_us, end_us) with the window already
        # normalised to integer µs.
        self._crashes: List[Tuple[NodeCrash, int, int]] = [
            (e, s_to_us(e.start_s), s_to_us(e.end_s))
            for e in events
            if isinstance(e, NodeCrash)
        ]
        self._slowdowns: List[Tuple[SlowNode, int, int]] = [
            (e, s_to_us(e.start_s), s_to_us(e.end_s))
            for e in events
            if isinstance(e, SlowNode)
        ]
        self._links: List[Tuple[DegradedLink, int, int]] = [
            (e, s_to_us(e.start_s), s_to_us(e.end_s))
            for e in events
            if isinstance(e, DegradedLink)
        ]

    def __len__(self) -> int:
        return len(self.events)

    # ---------------------------------------------------------------- queries
    def is_down(self, node: int, now_us: float) -> bool:
        """Whether ``node`` is crashed at simulated time ``now_us``."""
        return any(
            e.node == node and start_us <= now_us < end_us
            for e, start_us, end_us in self._crashes
        )

    def latency_multiplier(self, node: int, now_us: float) -> float:
        """Service-time multiplier on ``node`` (product of active slowdowns)."""
        multiplier = 1.0
        for e, start_us, end_us in self._slowdowns:
            if e.node == node and start_us <= now_us < end_us:
                multiplier *= e.multiplier
        return multiplier

    def link(self, node: int, now_us: float) -> Tuple[float, float]:
        """Active ``(extra_delay_us, loss_prob)`` of the router↔node link.

        Delays of overlapping events add; losses combine as independent
        drops (``1 - Π(1 - p)``).
        """
        delay = 0.0
        survive = 1.0
        for e, start_us, end_us in self._links:
            if e.node == node and start_us <= now_us < end_us:
                delay += e.extra_delay_us
                survive *= 1.0 - e.loss_prob
        return delay, 1.0 - survive

    def crash_recovered_between(
        self, node: int, since_us: float, now_us: float
    ) -> bool:
        """Whether ``node`` finished a crash window in ``(since_us, now_us]``.

        The cluster uses this to cold-restart a node's caches the first time
        it is touched after recovering.
        """
        return any(
            e.node == node and since_us < end_us <= now_us
            for e, _start_us, end_us in self._crashes
        )


# ------------------------------------------------------------------- catalog
def _scenario_none(num_nodes: int, **_: float) -> FaultSchedule:
    return FaultSchedule(())


def _scenario_crash_recover(
    num_nodes: int,
    start_s: float = 0.2,
    duration_s: float = 0.4,
    node: int = 0,
    **_: float,
) -> FaultSchedule:
    return FaultSchedule([NodeCrash(node=node, start_s=start_s, end_s=start_s + duration_s)])


def _scenario_slow_node(
    num_nodes: int,
    start_s: float = 0.2,
    duration_s: float = 0.6,
    node: int = 0,
    multiplier: float = 20.0,
    **_: float,
) -> FaultSchedule:
    return FaultSchedule(
        [SlowNode(node=node, start_s=start_s, end_s=start_s + duration_s, multiplier=multiplier)]
    )


def _scenario_flaky_link(
    num_nodes: int,
    start_s: float = 0.2,
    duration_s: float = 0.6,
    node: int = 0,
    extra_delay_us: float = 200.0,
    loss_prob: float = 0.05,
    **_: float,
) -> FaultSchedule:
    return FaultSchedule(
        [
            DegradedLink(
                node=node,
                start_s=start_s,
                end_s=start_s + duration_s,
                extra_delay_us=extra_delay_us,
                loss_prob=loss_prob,
            )
        ]
    )


def _scenario_degraded_cluster(
    num_nodes: int,
    start_s: float = 0.2,
    duration_s: float = 0.6,
    multiplier: float = 8.0,
    extra_delay_us: float = 100.0,
    loss_prob: float = 0.02,
    **_: float,
) -> FaultSchedule:
    """The compound scenario: one node crashes, one slows, one link degrades."""
    check_int_at_least(num_nodes, 1, "num_nodes")
    end_s = start_s + duration_s
    events: List[FaultEvent] = [NodeCrash(node=0, start_s=start_s, end_s=end_s)]
    if num_nodes > 1:
        events.append(
            SlowNode(node=1 % num_nodes, start_s=start_s, end_s=end_s, multiplier=multiplier)
        )
    if num_nodes > 2:
        events.append(
            DegradedLink(
                node=2 % num_nodes,
                start_s=start_s,
                end_s=end_s,
                extra_delay_us=extra_delay_us,
                loss_prob=loss_prob,
            )
        )
    return FaultSchedule(events)


#: The named scenario catalog: name -> factory(num_nodes, **overrides).
SCENARIOS: Dict[str, Callable[..., FaultSchedule]] = {
    "none": _scenario_none,
    "crash_recover": _scenario_crash_recover,
    "slow_node": _scenario_slow_node,
    "flaky_link": _scenario_flaky_link,
    "degraded_cluster": _scenario_degraded_cluster,
}


def make_scenario(name: str, num_nodes: int, **overrides: float) -> FaultSchedule:
    """Instantiate a named scenario from the catalog.

    ``overrides`` tune the scenario's knobs (window, target node, severity);
    unknown keys are ignored by scenarios that do not use them, so one sweep
    loop can drive every scenario with a common parameter set.
    """
    check_positive(num_nodes, "num_nodes")
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; catalog: {sorted(SCENARIOS)}"
        ) from None
    return factory(num_nodes, **overrides)
