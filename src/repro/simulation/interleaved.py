"""Interleaved multi-table store replay with sharded worker processes.

A production request touches *every* embedding table of the model at once,
yet :func:`repro.simulation.runner.simulate_store` historically replayed the
tables one at a time.  This module supplies the store-level replay engine
that walks the request stream **once**, fanning each request's ids out across
all tables, and optionally shards the tables across worker processes for
multi-core scaling.

Schedule-equivalence invariant
------------------------------
Per-table replay state — the :class:`~repro.caching.engine.ArrayLRUCache`,
the prefetch policy, the pending-prefetch set and the NVM device — is fully
independent across tables.  Any replay schedule that preserves *each table's
own id stream order* therefore produces bit-identical per-table
:class:`~repro.caching.replay.ReplayStats`:

* the request-interleaved schedule (table A request 0, table B request 0,
  table A request 1, ...) equals the table-sequential schedule (all of A,
  then all of B);
* flushing accumulated ids per table once per *chunk* of requests (the
  batching that recovers the vectorized engine's hit-run speed) equals
  flushing per request;
* replaying disjoint table shards in separate worker processes and merging
  the per-table results equals replaying everything in one process.

``tests/test_interleaved_equivalence.py`` pins all three equalities against
sequential :func:`~repro.simulation.runner.simulate_store` across all six
prefetch policies and degenerate cache sizes.

This generalises the engine-sharing idea of
:func:`repro.caching.engine.replay_table_cache_multi` — one walk over a
stream feeding many independent engines — from many caches over one table to
many tables over one request stream.

Worker sharding
---------------
:func:`replay_store_interleaved` greedily bin-packs tables onto
``num_workers`` shards by lookup volume, replays each shard in a forked
worker process holding per-worker :class:`~repro.caching.engine.BatchReplayEngine`
instances, and ships each table's finished engine (cache state, policy
state, device counters and stats) back to the parent, so continued serving
after a sharded replay is indistinguishable from a single-process replay.
With ``num_workers=1`` everything runs inline in the calling process on the
caller's own engine objects.

Baselines
---------
Each table's no-prefetch baseline is computed inside the same shard (so
baseline work parallelises with the candidate replay).  For the common
placement-study shape — an effectively unlimited cache — the baseline is
recognised analytically: under LRU with no prefetching and a cache at least
as large as the table, a lookup misses exactly on the first occurrence of
its id, so the full ReplayStats follow from one ``np.unique`` call
(:func:`unlimited_noprefetch_stats`), bit-identical to replaying it.

Run ``benchmarks/bench_store_replay.py`` for the throughput comparison of
the per-request serving path, the table-sequential path and this engine
(results land in ``BENCH_store_replay.json``).
"""

from __future__ import annotations

import multiprocessing
import sys
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.caching.engine import BatchReplayEngine, replay_table_cache_batched
from repro.caching.policies import NoPrefetchPolicy
from repro.caching.replay import ReplayStats
from repro.nvm.block import BlockLayout
from repro.workloads.trace import ModelTrace

#: Requests accumulated per table between engine flushes.  Large enough that
#: every flush replays a solid batch (hit runs span request boundaries),
#: small enough that the interleaving stays fine-grained.
DEFAULT_CHUNK_REQUESTS = 64


# ---------------------------------------------------------------------- stream
def iter_store_requests(model_trace: ModelTrace) -> Iterator[Dict[str, np.ndarray]]:
    """Zip a :class:`ModelTrace` into a stream of multi-table requests.

    Request ``i`` maps each table name to that table's ``i``-th query;
    tables with fewer queries simply drop out of later requests.  This is
    the representative store-level request stream: one production request
    reads from every table at once.
    """
    tables: List[Tuple[str, List[np.ndarray]]] = [
        (name, trace.queries) for name, trace in model_trace.items()
    ]
    num_requests = max((len(queries) for _, queries in tables), default=0)
    for i in range(num_requests):
        yield {name: queries[i] for name, queries in tables if i < len(queries)}


# ------------------------------------------------------------------- baselines
def unlimited_noprefetch_stats(
    queries: Iterable[np.ndarray], layout: BlockLayout, vector_bytes: int = 128
) -> ReplayStats:
    """Analytic no-prefetch baseline for an effectively unlimited cache.

    With no prefetching and a cache that can hold the whole table, nothing
    is ever evicted, so a lookup misses exactly on the *first* occurrence of
    its id and hits on every later one.  The resulting counters are
    bit-identical to replaying the stream through
    :func:`repro.caching.replay.replay_table_cache` with
    :class:`~repro.caching.policies.NoPrefetchPolicy` and an unlimited
    cache, at the cost of one ``np.unique`` instead of one simulated miss
    per distinct id.
    """
    arrays = [np.asarray(query, dtype=np.int64) for query in queries]
    stats = ReplayStats(
        vector_bytes=vector_bytes,
        block_bytes=layout.vectors_per_block * vector_bytes,
    )
    if not arrays:
        return stats
    ids = np.concatenate(arrays) if len(arrays) > 1 else arrays[0]
    if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= layout.num_vectors):
        raise IndexError(
            f"vector ids must be in [0, {layout.num_vectors}), got range "
            f"[{ids.min()}, {ids.max()}]"
        )
    unique = int(np.unique(ids).size)
    stats.lookups = int(ids.size)
    stats.misses = unique
    stats.hits = stats.lookups - unique
    return stats


def baseline_stats_for(
    queries: Sequence[np.ndarray],
    layout: BlockLayout,
    cache_size: Optional[int],
    vector_bytes: int = 128,
) -> ReplayStats:
    """The no-prefetch baseline for one table, analytic when possible.

    ``cache_size=None`` or any capacity >= the table size takes the
    analytic unlimited path; limited caches are replayed through the
    batched engine.  Either way the counters are bit-identical to the
    reference loop.
    """
    if cache_size is None or int(cache_size) >= layout.num_vectors:
        return unlimited_noprefetch_stats(queries, layout, vector_bytes=vector_bytes)
    return replay_table_cache_batched(
        queries,
        layout,
        NoPrefetchPolicy(),
        cache_size=cache_size,
        vector_bytes=vector_bytes,
    )


# ------------------------------------------------------------------- replayer
class InterleavedStoreReplayer:
    """Fan multi-table requests out across per-table batch replay engines.

    The replayer owns no state beyond the engine mapping: every counter
    lives in the engines' :class:`~repro.caching.replay.ReplayStats`, so it
    can be layered over a :class:`~repro.core.bandana.BandanaStore`'s
    serving engines (the per-request ``lookup_request`` path) or over
    throwaway engines inside a replay worker.
    """

    def __init__(self, engines: Mapping[str, BatchReplayEngine]) -> None:
        self._engines = dict(engines)

    @property
    def engines(self) -> Dict[str, BatchReplayEngine]:
        """The per-table engines (not copied)."""
        return self._engines

    def _engine(self, name: str) -> BatchReplayEngine:
        try:
            return self._engines[name]
        except KeyError:
            raise KeyError(
                f"unknown table {name!r}; known tables: {sorted(self._engines)}"
            ) from None

    def replay_request(self, request: Mapping[str, Iterable[int]]) -> None:
        """Replay one multi-table request (mapping table name -> ids)."""
        for name, raw_ids in request.items():
            engine = self._engine(name)
            ids = np.asarray(raw_ids, dtype=np.int64)
            if ids.size:
                engine.replay_query(ids)

    def replay_requests(
        self,
        requests: Iterable[Mapping[str, Iterable[int]]],
        chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
    ) -> None:
        """Replay a request stream, flushing per table once per chunk.

        Accumulating ``chunk_requests`` requests before flushing each
        table's ids in one ``replay_query`` call recovers the vectorized
        engine's batch speed (hit runs span request boundaries) while
        keeping the schedule request-interleaved.  By the module's
        schedule-equivalence invariant the counters are bit-identical for
        every chunk size, including ``1`` (pure per-request replay).
        """
        if chunk_requests < 1:
            raise ValueError("chunk_requests must be >= 1")
        pending: Dict[str, List[np.ndarray]] = {name: [] for name in self._engines}
        buffered = 0
        for request in requests:
            for name, raw_ids in request.items():
                ids = np.asarray(raw_ids, dtype=np.int64)
                if ids.size:
                    self._engine(name)  # validate the name even when buffering
                    pending[name].append(ids)
            buffered += 1
            if buffered >= chunk_requests:
                self._flush(pending)
                buffered = 0
        if buffered:
            self._flush(pending)

    def _flush(self, pending: Dict[str, List[np.ndarray]]) -> None:
        for name, arrays in pending.items():
            if not arrays:
                continue
            ids = np.concatenate(arrays) if len(arrays) > 1 else arrays[0]
            self._engines[name].replay_query(ids)
            arrays.clear()


# ------------------------------------------------------------------- sharding
@dataclass
class TableReplayTask:
    """One table's share of a store replay.

    The task carries the table's (possibly warm) serving engine, the
    table's query stream, and enough information to compute the
    no-prefetch baseline alongside the candidate replay.
    """

    name: str
    engine: BatchReplayEngine
    queries: List[np.ndarray]
    include_baseline: bool = True
    baseline_cache_size: Optional[int] = None
    vector_bytes: int = 128

    @property
    def num_lookups(self) -> int:
        """Total ids in the task's query stream (the sharding weight)."""
        return int(sum(query.size for query in self.queries))


@dataclass
class TableReplayResult:
    """One table's outcome: the finished engine plus baseline stats."""

    name: str
    engine: BatchReplayEngine
    stats: ReplayStats
    baseline_stats: Optional[ReplayStats] = None


def shard_tasks(
    tasks: Sequence[TableReplayTask], num_workers: int
) -> List[List[TableReplayTask]]:
    """Greedily bin-pack tables onto at most ``num_workers`` shards.

    Tables are assigned largest-first (by lookup volume, name as the
    deterministic tie-break) to the currently lightest shard, so the
    slowest worker gets as little excess as a greedy split allows.  Every
    returned shard is non-empty.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    tasks = list(tasks)
    num_shards = min(num_workers, len(tasks))
    if num_shards <= 1:
        return [tasks] if tasks else []
    order = sorted(tasks, key=lambda task: (-task.num_lookups, task.name))
    shards: List[List[TableReplayTask]] = [[] for _ in range(num_shards)]
    loads = [0] * num_shards
    for task in order:
        index = loads.index(min(loads))
        shards[index].append(task)
        loads[index] += max(task.num_lookups, 1)
    return [shard for shard in shards if shard]


def _replay_shard(
    payload: Tuple[List[TableReplayTask], int]
) -> List[TableReplayResult]:
    """Replay one shard's tables, request-interleaved (runs in a worker).

    Walks the shard's request stream once in chunks of ``chunk_requests``
    requests, flushing each table's accumulated ids through its engine per
    chunk — the same schedule :meth:`InterleavedStoreReplayer.replay_requests`
    produces, iterated directly over the per-table query lists so the hot
    loop builds no per-request dictionaries.  Must stay a module-level
    function so worker processes can import it under every multiprocessing
    start method.
    """
    tasks, chunk_requests = payload
    num_requests = max((len(task.queries) for task in tasks), default=0)
    for start in range(0, num_requests, chunk_requests):
        stop = start + chunk_requests
        for task in tasks:
            chunk = task.queries[start:stop]
            if not chunk:
                continue
            ids = np.concatenate(chunk) if len(chunk) > 1 else chunk[0]
            if ids.size:
                task.engine.replay_query(np.asarray(ids, dtype=np.int64))
    results = []
    for task in tasks:
        baseline = None
        if task.include_baseline:
            baseline = baseline_stats_for(
                task.queries,
                task.engine.layout,
                task.baseline_cache_size,
                vector_bytes=task.vector_bytes,
            )
        results.append(
            TableReplayResult(
                name=task.name,
                engine=task.engine,
                stats=task.engine.stats,
                baseline_stats=baseline,
            )
        )
    return results


#: Copy-on-write hand-off to forked workers: (shards, chunk_requests) is
#: parked here while the fork pool is alive, so the query arrays reach the
#: children through the inherited address space instead of being pickled
#: through the result pipes (several MB per shard for long streams).  The
#: lock serialises concurrent sharded replays in one process — without it a
#: second caller could overwrite the payload between another caller's park
#: and fork, making its workers replay the wrong tables.
_FORK_PAYLOAD: Optional[Tuple[List[List[TableReplayTask]], int]] = None
_FORK_PAYLOAD_LOCK = threading.Lock()


def _replay_shard_by_index(shard_index: int) -> List[TableReplayResult]:
    """Fork-pool entry point: look the shard up in the inherited payload."""
    shards, chunk_requests = _FORK_PAYLOAD
    return _replay_shard((shards[shard_index], chunk_requests))


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, copy-on-write inputs) where it is safe.

    Only Linux qualifies: macOS lists fork as available but forking after
    numpy/ObjC frameworks initialise is unsafe there (the reason CPython
    made spawn the macOS default), so everywhere else the default start
    method and the pickling hand-off are used instead.
    """
    methods = multiprocessing.get_all_start_methods()
    use_fork = sys.platform == "linux" and "fork" in methods
    return multiprocessing.get_context("fork" if use_fork else None)


def replay_store_interleaved(
    tasks: Sequence[TableReplayTask],
    num_workers: int = 1,
    chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
) -> Dict[str, TableReplayResult]:
    """Replay a whole store's request stream, sharding tables over workers.

    With ``num_workers=1`` (or a single table) the replay runs inline on
    the caller's engine objects — the store's serving engines keep
    accumulating in place.  With more workers, tables are bin-packed onto
    worker processes; each worker replays its shard request-interleaved
    and ships the finished engines back, so the merged result (including
    cache contents, policy state and device counters) is bit-identical to
    the inline replay.
    """
    tasks = list(tasks)
    if not tasks:
        return {}
    seen = set()
    for task in tasks:
        if task.name in seen:
            raise ValueError(f"duplicate table {task.name!r} in replay tasks")
        seen.add(task.name)
    shards = shard_tasks(tasks, num_workers)
    if len(shards) == 1:
        results = _replay_shard((shards[0], chunk_requests))
    else:
        results = [
            result
            for shard in _map_shards(shards, chunk_requests)
            for result in shard
        ]
    return {result.name: result for result in results}


def _map_shards(
    shards: List[List[TableReplayTask]], chunk_requests: int
) -> List[List[TableReplayResult]]:
    """Run one worker process per shard and collect the per-shard results."""
    context = _pool_context()
    if context.get_start_method() == "fork":
        global _FORK_PAYLOAD
        # The payload stays parked (and the lock held) until the map
        # returns: Pool may fork *replacement* workers mid-run if one dies,
        # and those must still snapshot this replay's payload — not None,
        # and not a concurrent replay's shards.
        with _FORK_PAYLOAD_LOCK:
            _FORK_PAYLOAD = (shards, chunk_requests)
            try:
                with context.Pool(processes=len(shards)) as pool:
                    return pool.map(_replay_shard_by_index, range(len(shards)))
            finally:
                _FORK_PAYLOAD = None
    with context.Pool(processes=len(shards)) as pool:
        return pool.map(
            _replay_shard, [(shard, chunk_requests) for shard in shards]
        )


def merge_replay_stats(results: Mapping[str, TableReplayResult]) -> ReplayStats:
    """Element-wise sum of the per-table candidate stats (store aggregate)."""
    merged: Optional[ReplayStats] = None
    for result in results.values():
        merged = result.stats if merged is None else merged.merge(result.stats)
    return merged if merged is not None else ReplayStats()
