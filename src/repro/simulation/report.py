"""Plain-text rendering of experiment results.

The benchmark harnesses regenerate the paper's tables and figures as aligned
text tables (rows/series with the same structure as the paper's plots), so the
shape of each result can be compared at a glance and recorded in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_percent(value: float, decimals: int = 1) -> str:
    """Format a ratio as a percentage string (0.42 → ``"42.0%"``)."""
    return f"{100.0 * value:.{decimals}f}%"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    string_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    num_columns = len(headers)
    for row in string_rows:
        if len(row) != num_columns:
            raise ValueError(
                f"row has {len(row)} cells but there are {num_columns} headers"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in string_rows)) if string_rows else len(headers[i])
        for i in range(num_columns)
    ]
    def render(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    lines = [render(headers), separator]
    lines.extend(render(row) for row in string_rows)
    return "\n".join(lines)


def format_series(series: Mapping[object, float], value_format: str = "{:.1%}") -> str:
    """Render a one-dimensional series (x → value) on a single line."""
    parts = [f"{key}={value_format.format(value)}" for key, value in series.items()]
    return ", ".join(parts)
