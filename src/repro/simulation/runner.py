"""Replay runners: per-table and whole-store simulation with baseline comparison.

The paper's effective-bandwidth-increase numbers always compare a candidate
configuration against the baseline policy (cache only the requested vector, no
prefetching) replayed over the *same* evaluation trace with the *same* cache
size.  The helpers here run both sides and package the comparison.

Whole-store replay offers two schedules with bit-identical per-table
counters: the historical table-sequential walk, and the interleaved engine
(:mod:`repro.simulation.interleaved`) that makes one pass over the zipped
request stream and can shard tables across worker processes
(``simulate_store(..., interleaved=True, num_workers=N)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.caching.engine import replay_table_cache_batched
from repro.caching.policies import CacheAllBlockPolicy, NoPrefetchPolicy, PrefetchPolicy
from repro.caching.replay import (
    ReplayStats,
    effective_bandwidth_increase,
    replay_table_cache,
)
from repro.core.bandana import BandanaStore
from repro.core.metrics import CacheStats, EffectiveBandwidth
from repro.nvm.block import BlockLayout
from repro.simulation.interleaved import TableReplayTask, replay_store_interleaved
from repro.workloads.trace import ModelTrace, Trace


@dataclass(frozen=True)
class TableSimulationResult:
    """Outcome of replaying one table's trace under a candidate policy."""

    stats: ReplayStats
    baseline_stats: Optional[ReplayStats] = None

    @property
    def cache_stats(self) -> CacheStats:
        """Application-facing counters of the candidate run."""
        return CacheStats.from_replay(self.stats)

    @property
    def effective_bandwidth(self) -> EffectiveBandwidth:
        """Effective bandwidth of the candidate run."""
        return EffectiveBandwidth.from_replay(self.stats)

    @property
    def bandwidth_increase(self) -> float:
        """Effective-bandwidth increase over the baseline run (0.0 if no baseline)."""
        if self.baseline_stats is None:
            return 0.0
        return effective_bandwidth_increase(self.baseline_stats, self.stats)


def simulate_table(
    trace: Trace,
    layout: BlockLayout,
    policy: PrefetchPolicy,
    cache_size: Optional[int] = None,
    vector_bytes: int = 128,
    include_baseline: bool = True,
    baseline_policy: Optional[PrefetchPolicy] = None,
    use_batched_engine: bool = True,
) -> TableSimulationResult:
    """Replay one table's trace under ``policy`` and (optionally) the baseline.

    Parameters
    ----------
    trace:
        The evaluation trace.
    layout:
        Physical placement of the table.
    policy:
        Candidate prefetch-admission policy.
    cache_size:
        DRAM cache size in vectors; ``None`` reproduces the paper's
        unlimited-cache placement studies.
    vector_bytes:
        Bytes per embedding vector.
    include_baseline:
        Whether to also replay the baseline policy for comparison.
    baseline_policy:
        The baseline policy; defaults to no-prefetch (the paper's baseline).
    use_batched_engine:
        Replay on the vectorized batch engine (default); the counters are
        bit-identical to the reference loop (``False``).
    """
    replay = replay_table_cache_batched if use_batched_engine else replay_table_cache
    policy.reset()
    stats = replay(
        trace.queries,
        layout,
        policy,
        cache_size=cache_size,
        vector_bytes=vector_bytes,
    )
    baseline_stats = None
    if include_baseline:
        baseline = baseline_policy or NoPrefetchPolicy()
        baseline.reset()
        baseline_stats = replay(
            trace.queries,
            layout,
            baseline,
            cache_size=cache_size,
            vector_bytes=vector_bytes,
        )
    return TableSimulationResult(stats=stats, baseline_stats=baseline_stats)


def unlimited_cache_bandwidth_increase(
    trace: Trace,
    layout: BlockLayout,
    vector_bytes: int = 128,
) -> float:
    """Effective-bandwidth increase of whole-block prefetching with an unlimited cache.

    This is the measurement behind the paper's placement studies (Figures 6,
    8 and 9): with no evictions, the only thing that matters is how many
    distinct blocks must be read, i.e. how well the placement groups
    co-accessed vectors.
    """
    result = simulate_table(
        trace,
        layout,
        CacheAllBlockPolicy(),
        cache_size=None,
        vector_bytes=vector_bytes,
        include_baseline=True,
    )
    return result.bandwidth_increase


@dataclass(frozen=True)
class StoreSimulationResult:
    """Outcome of replaying a full model trace through a Bandana store.

    ``interleaved`` and ``num_workers`` record which replay schedule
    produced the result — ``num_workers`` is the number of worker shards
    actually used (at most one per table; ``1`` means the replay ran
    inline).  The per-table counters are bit-identical across schedules
    (see :mod:`repro.simulation.interleaved`).
    """

    per_table: Dict[str, TableSimulationResult] = field(default_factory=dict)
    interleaved: bool = False
    num_workers: int = 1

    @property
    def total_block_reads(self) -> int:
        """Candidate block reads summed over tables."""
        return sum(result.stats.block_reads for result in self.per_table.values())

    @property
    def total_baseline_block_reads(self) -> int:
        """Baseline block reads summed over tables."""
        return sum(
            result.baseline_stats.block_reads
            for result in self.per_table.values()
            if result.baseline_stats is not None
        )

    @property
    def bandwidth_increase(self) -> float:
        """Aggregate effective-bandwidth increase across all tables."""
        candidate = self.total_block_reads
        baseline = self.total_baseline_block_reads
        if candidate == 0:
            return 0.0 if baseline == 0 else float("inf")
        return baseline / candidate - 1.0

    @property
    def aggregate_hit_rate(self) -> float:
        """Hit rate over all tables' lookups."""
        lookups = sum(r.stats.lookups for r in self.per_table.values())
        hits = sum(r.stats.hits for r in self.per_table.values())
        return hits / lookups if lookups else 0.0


def simulate_store(
    store: BandanaStore,
    eval_trace: ModelTrace,
    include_baseline: bool = True,
    reset_first: bool = True,
    interleaved: Optional[bool] = None,
    num_workers: Optional[int] = None,
    chunk_requests: Optional[int] = None,
) -> StoreSimulationResult:
    """Replay a full model trace through a built Bandana store.

    Two schedules are available, producing bit-identical per-table counters:

    * **table-sequential** (the default): each table's queries are replayed
      through the store's serving path — the batched engine by default, via
      :meth:`~repro.core.bandana.BandanaStore.lookup_batch` — one table at a
      time.
    * **interleaved** (``interleaved=True``, or the store's
      ``config.interleaved_replay``): one pass over the zipped request
      stream fans each request's ids out across all tables, and with
      ``num_workers > 1`` (default: ``config.num_workers``) the tables are
      sharded across worker processes holding per-worker engines whose
      state is merged back into the store (see
      :mod:`repro.simulation.interleaved`).

    The per-table baseline is replayed with the same cache size but no
    prefetching.  ``reset_first`` clears the store's serving state so
    repeated simulations start cold, like the paper's runs.
    """
    config = store.config
    if interleaved is None:
        interleaved = config.interleaved_replay
    if num_workers is None:
        num_workers = config.num_workers
    if chunk_requests is None:
        chunk_requests = config.chunk_requests
    if reset_first:
        store.reset_serving_state()
    if interleaved:
        return _simulate_store_interleaved(
            store, eval_trace, include_baseline, num_workers, chunk_requests
        )
    baseline_replay = (
        replay_table_cache_batched
        if store.config.use_batched_engine
        else replay_table_cache
    )
    results: Dict[str, TableSimulationResult] = {}
    for name, trace in eval_trace.items():
        state = store.tables[name]
        store.lookup_batch(name, trace.queries)
        baseline_stats = None
        if include_baseline:
            baseline_stats = baseline_replay(
                trace.queries,
                state.layout,
                NoPrefetchPolicy(),
                cache_size=state.cache_config.cache_size_vectors,
                vector_bytes=store.config.vector_bytes,
            )
        results[name] = TableSimulationResult(
            stats=state.stats, baseline_stats=baseline_stats
        )
    return StoreSimulationResult(per_table=results)


def _simulate_store_interleaved(
    store: BandanaStore,
    eval_trace: ModelTrace,
    include_baseline: bool,
    num_workers: int,
    chunk_requests: int,
) -> StoreSimulationResult:
    """The interleaved schedule of :func:`simulate_store`.

    Tasks are built from the store's (possibly warm) serving engines, so a
    replay continues exactly where previous serving left off; after a
    sharded run the worker-side engines are adopted back into the store,
    leaving it in the same observable state as an in-process replay.
    """
    if not store.config.use_batched_engine:
        raise ValueError(
            "interleaved store replay requires config.use_batched_engine"
        )
    tasks = [
        TableReplayTask(
            name=name,
            engine=store.serving_engine(name),
            queries=trace.queries,
            include_baseline=include_baseline,
            baseline_cache_size=store.tables[name].cache_config.cache_size_vectors,
            vector_bytes=store.config.vector_bytes,
        )
        for name, trace in eval_trace.items()
    ]
    replayed = replay_store_interleaved(
        tasks, num_workers=num_workers, chunk_requests=chunk_requests
    )
    num_workers = min(num_workers, len(tasks)) if tasks else 1
    results: Dict[str, TableSimulationResult] = {}
    for name in eval_trace:
        result = replayed[name]
        store.adopt_engine(name, result.engine)
        results[name] = TableSimulationResult(
            stats=result.stats, baseline_stats=result.baseline_stats
        )
    return StoreSimulationResult(
        per_table=results, interleaved=True, num_workers=num_workers
    )
