"""Lightweight experiment bookkeeping for parameter sweeps.

The benchmark harnesses sweep one parameter at a time (cluster count, cache
size, threshold, sampling rate, ...) and record one scalar per point.
:class:`ExperimentSweep` keeps those records, and knows how to render itself
through :mod:`repro.simulation.report` so every benchmark prints a uniform
"paper figure as a text table" block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.simulation.report import format_table


@dataclass(frozen=True)
class ExperimentRecord:
    """One measured point of a sweep."""

    parameters: Dict[str, object]
    metrics: Dict[str, float]


@dataclass
class ExperimentSweep:
    """A named collection of experiment records (one paper figure or table).

    Attributes
    ----------
    name:
        Identifier, e.g. ``"figure6"``.
    description:
        What the sweep reproduces, e.g. the paper's caption.
    records:
        The measured points, in sweep order.
    """

    name: str
    description: str = ""
    records: List[ExperimentRecord] = field(default_factory=list)

    def add(self, parameters: Dict[str, object], metrics: Dict[str, float]) -> ExperimentRecord:
        """Append one record and return it."""
        record = ExperimentRecord(parameters=dict(parameters), metrics=dict(metrics))
        self.records.append(record)
        return record

    def run(
        self,
        parameter_name: str,
        values: Iterable[object],
        measure: Callable[[object], Dict[str, float]],
    ) -> "ExperimentSweep":
        """Measure ``measure(value)`` for every value of a single parameter."""
        for value in values:
            self.add({parameter_name: value}, measure(value))
        return self

    def column(self, metric: str) -> List[float]:
        """The values of one metric across all records, in order."""
        return [record.metrics[metric] for record in self.records]

    def parameter_column(self, parameter: str) -> List[object]:
        """The values of one parameter across all records, in order."""
        return [record.parameters[parameter] for record in self.records]

    def to_table(self, float_format: str = "{:.3f}") -> str:
        """Render all records as an aligned text table."""
        if not self.records:
            return f"{self.name}: (no records)"
        parameter_names = list(self.records[0].parameters)
        metric_names = list(self.records[0].metrics)
        headers = parameter_names + metric_names
        rows = []
        for record in self.records:
            row = [str(record.parameters[p]) for p in parameter_names]
            row += [
                float_format.format(record.metrics[m])
                if isinstance(record.metrics[m], float)
                else str(record.metrics[m])
                for m in metric_names
            ]
            rows.append(row)
        title = self.name if not self.description else f"{self.name} — {self.description}"
        return f"{title}\n" + format_table(headers, rows)

    def best(self, metric: str, maximize: bool = True) -> Optional[ExperimentRecord]:
        """The record with the best value of ``metric``."""
        if not self.records:
            return None
        key = lambda record: record.metrics[metric]  # noqa: E731 - tiny local key
        return max(self.records, key=key) if maximize else min(self.records, key=key)
