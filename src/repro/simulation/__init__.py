"""Trace-replay harness and experiment helpers.

The paper's figures are all produced by replaying an evaluation trace against
some configuration of placement + cache + policy and comparing NVM block reads
against the no-prefetch baseline.  :func:`repro.simulation.simulate_table`
does that for one table (Figures 6–12), :func:`repro.simulation.simulate_store`
for a full :class:`~repro.core.bandana.BandanaStore` (Figures 13–16) — either
table-by-table or interleaved across tables with optional worker-process
sharding (:mod:`repro.simulation.interleaved`) — and
:mod:`repro.simulation.report` renders the results as the text tables the
benchmark harnesses print.  :func:`repro.simulation.simulate_serving`
(implemented in :mod:`repro.serving`) re-times the same store replay on a
simulated clock under an open-loop arrival process and reports end-to-end
latency percentiles instead of raw counters.
"""

from repro.simulation.runner import (
    TableSimulationResult,
    StoreSimulationResult,
    simulate_table,
    simulate_store,
    unlimited_cache_bandwidth_increase,
)
from repro.simulation.interleaved import (
    DEFAULT_CHUNK_REQUESTS,
    InterleavedStoreReplayer,
    TableReplayResult,
    TableReplayTask,
    baseline_stats_for,
    iter_store_requests,
    merge_replay_stats,
    replay_store_interleaved,
    shard_tasks,
    unlimited_noprefetch_stats,
)
from repro.simulation.experiment import ExperimentRecord, ExperimentSweep
from repro.simulation.report import format_table, format_percent, format_series
from repro.serving.frontend import simulate_serving
from repro.serving.report import ServingReport

__all__ = [
    "TableSimulationResult",
    "StoreSimulationResult",
    "simulate_table",
    "simulate_store",
    "simulate_serving",
    "ServingReport",
    "unlimited_cache_bandwidth_increase",
    "DEFAULT_CHUNK_REQUESTS",
    "InterleavedStoreReplayer",
    "TableReplayResult",
    "TableReplayTask",
    "baseline_stats_for",
    "iter_store_requests",
    "merge_replay_stats",
    "replay_store_interleaved",
    "shard_tasks",
    "unlimited_noprefetch_stats",
    "ExperimentRecord",
    "ExperimentSweep",
    "format_table",
    "format_percent",
    "format_series",
]
