"""Workload characterisation: the analysis behind the paper's Table 1 and Figure 4.

Given a trace, these helpers compute the per-table statistics the paper
reports — vector counts, average lookups per request, lookup shares,
compulsory-miss rates — and the per-vector access histograms used to motivate
the access-threshold admission policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.workloads.trace import ModelTrace, Trace


@dataclass(frozen=True)
class TableCharacterization:
    """One row of the paper's Table 1, as measured on a trace."""

    name: str
    num_vectors: int
    num_queries: int
    num_lookups: int
    avg_lookups_per_query: float
    lookup_share: float
    compulsory_miss_rate: float
    unique_vectors_accessed: int

    def as_row(self) -> Tuple:
        """Row tuple in the paper's column order (for report printing)."""
        return (
            self.name,
            self.num_vectors,
            round(self.avg_lookups_per_query, 2),
            f"{100 * self.lookup_share:.2f}%",
            f"{100 * self.compulsory_miss_rate:.2f}%",
        )


def access_counts(trace: Trace) -> np.ndarray:
    """Number of times each vector id is looked up in the trace.

    Returns an array of length ``trace.num_vectors``; vectors never accessed
    get zero.  This is the statistic the access-threshold admission policy
    (Section 4.3.2) is keyed on.
    """
    counts = np.zeros(trace.num_vectors, dtype=np.int64)
    flat = trace.flatten()
    if flat.size:
        np.add.at(counts, flat, 1)
    return counts


def compulsory_miss_rate(trace: Trace) -> float:
    """Fraction of lookups that touch a vector for the first time in the trace."""
    num_lookups = trace.num_lookups
    if num_lookups == 0:
        return 0.0
    return trace.unique_vectors().size / num_lookups


def access_histogram(
    trace: Trace, num_bins: int = 50, counts: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of per-vector access counts (the paper's Figure 4).

    Returns ``(bin_edges, vectors_per_bin)`` where ``bin_edges`` has
    ``num_bins + 1`` entries and ``vectors_per_bin[i]`` counts the vectors
    whose access count falls in ``[bin_edges[i], bin_edges[i+1])``.  Vectors
    that are never accessed are excluded, matching the paper's plots.
    """
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    if counts is None:
        counts = access_counts(trace)
    accessed = counts[counts > 0]
    if accessed.size == 0:
        edges = np.linspace(0, 1, num_bins + 1)
        return edges, np.zeros(num_bins, dtype=np.int64)
    edges = np.linspace(0, accessed.max(), num_bins + 1)
    histogram, _ = np.histogram(accessed, bins=edges)
    return edges, histogram.astype(np.int64)


def characterize_table(
    name: str, trace: Trace, lookup_share: Optional[float] = None
) -> TableCharacterization:
    """Compute one Table 1 row from a single table's trace."""
    unique = trace.unique_vectors().size
    num_lookups = trace.num_lookups
    return TableCharacterization(
        name=name,
        num_vectors=trace.num_vectors,
        num_queries=len(trace),
        num_lookups=num_lookups,
        avg_lookups_per_query=trace.avg_lookups_per_query,
        lookup_share=lookup_share if lookup_share is not None else 1.0,
        compulsory_miss_rate=(unique / num_lookups) if num_lookups else 0.0,
        unique_vectors_accessed=unique,
    )


def characterize_model(model_trace: ModelTrace) -> Dict[str, TableCharacterization]:
    """Compute all Table 1 rows for a full-model trace."""
    shares = model_trace.lookup_shares()
    return {
        name: characterize_table(name, trace, lookup_share=shares[name])
        for name, trace in model_trace.items()
    }
