"""Densifying id remapper for sparse key universes.

External cache traces (Twitter/Meta open traces, hashed production keys) use
sparse 64-bit key spaces, but the array-native cache stack —
:class:`~repro.caching.engine.ArrayLRUCache`,
:class:`~repro.caching.engine.BatchReplayEngine` and
:class:`~repro.nvm.block.BlockLayout` — allocates flat arrays indexed by
vector id, so it needs ids densely packed in ``[0, num_vectors)``.
:class:`IdRemapper` is the bijection between the two: it collects the
distinct ids a trace actually touches and maps them onto ``[0, n)`` in
sorted order (so the mapping is independent of request order and therefore
stable across trace slices from the same universe).

The replay machinery only ever compares ids for equality, so remapping
changes no counter: a replay of the densified trace is step-for-step the
replay of the original.  Placement quality is likewise untouched — the
partitioners see the same co-access structure under renamed ids.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np
import numpy.typing as npt

from repro.utils.validation import check_array_1d_ints
from repro.workloads.trace import ModelTrace, Trace


class IdRemapper:
    """Bijection between a sparse id universe and the dense range ``[0, n)``.

    Build one with :meth:`from_queries` or :meth:`from_trace`; the dense id
    of sparse id ``s`` is its rank among all distinct observed ids.
    """

    def __init__(self, sparse_ids: np.ndarray) -> None:
        sparse_ids = check_array_1d_ints(sparse_ids, "sparse_ids")
        self._sparse = np.unique(sparse_ids)

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_queries(cls, queries: Iterable) -> "IdRemapper":
        """Remapper over every id appearing in an iterable of id arrays."""
        arrays = [check_array_1d_ints(q, "query") for q in queries]
        if not arrays:
            return cls(np.empty(0, dtype=np.int64))
        return cls(np.concatenate(arrays))

    @classmethod
    def from_trace(cls, trace: Trace) -> "IdRemapper":
        """Remapper over every id the trace touches."""
        return cls(trace.flatten())

    # ------------------------------------------------------------------- sizes
    @property
    def num_ids(self) -> int:
        """Number of distinct ids — the size of the dense universe."""
        return int(self._sparse.size)

    @property
    def sparse_ids(self) -> np.ndarray:
        """The sorted distinct sparse ids (dense id ``d`` maps to entry ``d``)."""
        return self._sparse

    # ----------------------------------------------------------------- mapping
    def to_dense(self, ids: npt.ArrayLike) -> np.ndarray:
        """Map sparse ids to dense ids, raising on ids never observed."""
        ids = check_array_1d_ints(ids, "ids")
        dense = np.searchsorted(self._sparse, ids)
        inside = dense < self.num_ids
        known = inside.copy()
        known[inside] = self._sparse[dense[inside]] == ids[inside]
        if not known.all():
            unknown = ids[~known]
            raise KeyError(
                f"{unknown.size} id(s) not in the remapped universe "
                f"(first: {int(unknown[0])})"
            )
        return dense

    def to_sparse(self, dense_ids: npt.ArrayLike) -> np.ndarray:
        """Map dense ids back to the original sparse ids."""
        dense_ids = check_array_1d_ints(dense_ids, "dense_ids")
        if dense_ids.size and (
            int(dense_ids.min()) < 0 or int(dense_ids.max()) >= self.num_ids
        ):
            raise KeyError(f"dense ids must be in [0, {self.num_ids})")
        return self._sparse[dense_ids]

    # ------------------------------------------------------------------ traces
    def remap_trace(self, trace: Trace) -> Trace:
        """The same trace with every id densified (``num_vectors = num_ids``)."""
        return Trace(
            [self.to_dense(query) for query in trace.queries],
            num_vectors=self.num_ids,
        )


def densify_trace(trace: Trace) -> Tuple[Trace, IdRemapper]:
    """Densify one table's trace; returns the remapped trace and the mapping."""
    remapper = IdRemapper.from_trace(trace)
    return remapper.remap_trace(trace), remapper


def densify_model_trace(
    model_trace: ModelTrace,
) -> Tuple[ModelTrace, Dict[str, IdRemapper]]:
    """Densify every table of a model trace (each table gets its own mapping)."""
    remapped: Dict[str, Trace] = {}
    remappers: Dict[str, IdRemapper] = {}
    for name, trace in model_trace.items():
        remapped[name], remappers[name] = densify_trace(trace)
    return ModelTrace(remapped), remappers
