"""The paper's Table 1 as data, plus scaled variants that fit in memory.

Table 1 of the paper characterises eight representative user-embedding tables
from a production model: their size (10–20 M vectors), the average number of
vector lookups per request, the share of total lookups they serve and their
compulsory-miss rate (fraction of lookups touching a vector for the first
time).  Those statistics drive every experiment, so they are reproduced here
verbatim and used as the calibration target of the synthetic generator.

The production sizes do not fit a pure-Python laptop run, so
:func:`scaled_table_specs` produces linearly scaled-down specs that keep the
*ratios* (relative table sizes, request mix, skew) intact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.utils.validation import check_fraction, check_positive

#: Embedding vector geometry used throughout the paper's evaluation.
PAPER_VECTOR_BYTES = 128
PAPER_VECTOR_DIM = 64
PAPER_BLOCK_BYTES = 4096
PAPER_VECTORS_PER_BLOCK = PAPER_BLOCK_BYTES // PAPER_VECTOR_BYTES  # 32


@dataclass(frozen=True)
class TableSpec:
    """Statistical description of one user-embedding table.

    Attributes
    ----------
    name:
        Table identifier ("table1" ... "table8" for the paper's tables).
    num_vectors:
        Number of embedding vectors (columns) in the table.
    avg_lookups_per_query:
        Average number of vector ids a single request reads from this table.
    lookup_share:
        This table's fraction of all user-embedding lookups in the model.
    compulsory_miss_rate:
        Fraction of lookups in the characterisation trace that touch a vector
        never seen before.  Lower values mean the table caches well.
    popularity_alpha:
        Zipf exponent used by the synthetic generator to approximate the
        table's popularity skew.  Chosen so the generated compulsory-miss rate
        and access histogram resemble the paper's; tables with a low
        compulsory-miss rate get a heavier skew.
    num_topics:
        Number of co-access "topics" the generator uses for this table; more
        topics means weaker co-access structure (harder to partition).
    vector_dim:
        Number of elements per embedding vector.
    vector_bytes:
        Bytes per embedding vector as stored on NVM.
    """

    name: str
    num_vectors: int
    avg_lookups_per_query: float
    lookup_share: float
    compulsory_miss_rate: float
    popularity_alpha: float = 0.8
    num_topics: int = 512
    vector_dim: int = PAPER_VECTOR_DIM
    vector_bytes: int = PAPER_VECTOR_BYTES

    def __post_init__(self) -> None:
        check_positive(self.num_vectors, "num_vectors")
        check_positive(self.avg_lookups_per_query, "avg_lookups_per_query")
        check_fraction(self.lookup_share, "lookup_share")
        check_fraction(self.compulsory_miss_rate, "compulsory_miss_rate")
        check_positive(self.vector_dim, "vector_dim")
        check_positive(self.vector_bytes, "vector_bytes")
        check_positive(self.num_topics, "num_topics")

    @property
    def table_bytes(self) -> int:
        """Total size of the table in bytes when stored contiguously."""
        return self.num_vectors * self.vector_bytes

    def scaled(self, scale: float) -> "TableSpec":
        """Return a copy with ``num_vectors`` scaled by ``scale``.

        Request-level statistics (lookups per query, shares, miss rates) and
        the number of co-access topics are intensive quantities and are left
        unchanged; the trace generator caps topics at a fraction of the table
        size when the table becomes very small.
        """
        check_positive(scale, "scale")
        return replace(
            self,
            num_vectors=max(PAPER_VECTORS_PER_BLOCK, int(round(self.num_vectors * scale))),
        )


def _paper_specs() -> List[TableSpec]:
    """The eight tables of the paper's Table 1.

    ``popularity_alpha`` is not reported in the paper; it is set so that
    tables with low compulsory-miss rates (1, 2) are highly skewed and tables
    with high compulsory-miss rates (8) are close to uniform, which reproduces
    the qualitative ordering of the paper's hit-rate curves and histograms.
    """
    rows = [
        #     name      vectors   avg/query  share    compulsory  alpha  topics
        ("table1", 10_000_000, 34.83, 0.0944, 0.0416, 1.05, 400),
        ("table2", 10_000_000, 92.75, 0.2514, 0.0219, 1.10, 300),
        ("table3", 20_000_000, 26.67, 0.0723, 0.2429, 0.75, 800),
        ("table4", 20_000_000, 25.14, 0.0682, 0.1946, 0.80, 800),
        ("table5", 10_000_000, 30.22, 0.0819, 0.2268, 0.75, 600),
        ("table6", 10_000_000, 53.50, 0.1450, 0.2694, 0.70, 600),
        ("table7", 10_000_000, 54.35, 0.1473, 0.1136, 0.90, 500),
        ("table8", 20_000_000, 17.68, 0.0479, 0.6083, 0.45, 1200),
    ]
    return [
        TableSpec(
            name=name,
            num_vectors=vectors,
            avg_lookups_per_query=avg,
            lookup_share=share,
            compulsory_miss_rate=miss,
            popularity_alpha=alpha,
            num_topics=topics,
        )
        for name, vectors, avg, share, miss, alpha, topics in rows
    ]


#: The paper's Table 1, production scale.
PAPER_TABLE_SPECS: Dict[str, TableSpec] = {spec.name: spec for spec in _paper_specs()}

#: Default linear scale used by the benchmarks (1/500 of production).
DEFAULT_SCALE = 1.0 / 500.0


def scaled_table_specs(
    scale: float = DEFAULT_SCALE, names: Optional[List[str]] = None
) -> Dict[str, TableSpec]:
    """Scaled-down copies of the paper's tables.

    Parameters
    ----------
    scale:
        Linear factor applied to the vector counts (default 1/500, i.e.
        10 M-vector tables become 20 k-vector tables).
    names:
        Subset of table names to include; defaults to all eight.
    """
    check_positive(scale, "scale")
    if names is None:
        names = list(PAPER_TABLE_SPECS)
    unknown = [n for n in names if n not in PAPER_TABLE_SPECS]
    if unknown:
        raise KeyError(f"unknown table names: {unknown}")
    return {name: PAPER_TABLE_SPECS[name].scaled(scale) for name in names}
