"""Synthetic trace generation calibrated to the paper's Table 1.

The paper evaluates Bandana on production traces of user-embedding lookups.
Those traces are not public, so this module generates synthetic traces that
reproduce the statistics every Bandana mechanism depends on.  The generative
model has four ingredients, each mapping to a documented property of the
production workload:

* **Active set** — only a small fraction of a production table's 10–20 M
  vectors is in rotation over the traced period (the paper's compulsory-miss
  rates imply an hourly working set of a few percent of the table).  All
  traffic is drawn from an active set whose size is a fixed multiple
  (``working_set_multiplier``) of the expected number of distinct vectors of
  the planned trace; active ids are scattered randomly over the id space so
  the original (id-ordered) layout has no accidental locality.
* **Traffic windows with drift** — production popularity shifts hour to hour.
  Each *window* (by default, one planned-trace length) draws an
  "in-rotation" subset of the active set; vectors outside it receive only a
  small trickle of traffic.  How strongly a vector's persistent popularity
  determines its inclusion is the ``persistence`` parameter.  A placement
  trained on several past windows therefore predicts the *topic* a vector
  belongs to far better than whether it will be hot in the evaluation window —
  which is exactly why the paper's effective-bandwidth gains sit in the
  few-hundred-percent range rather than at the 32×-per-block ceiling.
* **Popularity skew** — inside a window, lookups follow a Zipf law
  (``spec.popularity_alpha``) over the in-rotation vectors.  Skew drives the
  hit-rate curves (Figure 3) and access histograms (Figure 4).  The
  in-rotation fraction is calibrated so the compulsory-miss rate of the
  planned trace lands near the paper's Table 1 value.
* **Co-access topics** — active vectors are grouped into latent *topics*; a
  query draws most of its ids from a couple of topics.  Vectors of the same
  topic co-occur inside queries (the locality SHP mines), and the topic
  assignment is reused by :mod:`repro.embeddings.synthesis` to give
  same-topic vectors nearby embedding-space positions (the locality K-means
  mines).  Tables with a high compulsory-miss rate yield training traces in
  which most vectors are seen at most once, so the partitioners have little
  signal — reproducing the paper's observation that such tables (e.g.
  table 8) benefit least.

Trace *density* matters as much as skew: the paper's effective-bandwidth
numbers live in a regime where the evaluation trace touches only a couple of
distinct vectors per 4 KB block.  :func:`paper_shaped_lookups` computes trace
lengths that keep that density at the scaled-down table sizes.

Everything is driven by explicit seeds so traces are reproducible.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.utils.sampling import zipf_probabilities
from repro.utils.validation import check_fraction, check_positive
from repro.workloads.tables_spec import PAPER_VECTORS_PER_BLOCK, TableSpec
from repro.workloads.trace import ModelTrace, Trace


def paper_shaped_lookups(
    spec: TableSpec,
    vectors_per_block: int = PAPER_VECTORS_PER_BLOCK,
    unique_per_block: float = 1.5,
) -> int:
    """Evaluation-trace length that reproduces the paper's access density.

    The paper's placement results live in a regime where the evaluation trace
    touches roughly one to a few distinct vectors per 4 KB block.  Holding the
    compulsory-miss rate at the Table 1 value, the trace length that yields
    ``unique_per_block`` distinct vectors per block is
    ``unique_per_block × num_blocks / compulsory_miss_rate``.
    """
    check_positive(unique_per_block, "unique_per_block")
    check_positive(vectors_per_block, "vectors_per_block")
    num_blocks = max(1, spec.num_vectors // vectors_per_block)
    rate = max(spec.compulsory_miss_rate, 1e-4)
    return max(1, int(round(unique_per_block * num_blocks / rate)))


class SyntheticTraceGenerator:
    """Generates access traces for one embedding table.

    Parameters
    ----------
    spec:
        Statistical description of the table (size, request mix, popularity
        skew, target compulsory-miss rate).
    seed:
        Seed of the generator's private random state.  The latent structure
        (active set, topics, persistent popularity) is fixed at construction
        time so that several traces drawn from the same generator (e.g. a
        placement-training trace and an evaluation trace) describe the same
        underlying table.
    expected_lookups:
        Trace length (in lookups) the caller plans to generate; the
        in-rotation fraction is calibrated so the compulsory-miss rate of a
        trace of that length lands near ``spec.compulsory_miss_rate``, and one
        traffic window defaults to that length.  Defaults to the paper-shaped
        length of the table.
    topic_affinity:
        Probability that an id is drawn from the query's topics rather than
        from the window-wide popularity law.
    topics_per_query:
        Average number of topics a query draws from.
    target_topic_size:
        Desired number of active vectors per topic.  Defaults to a few times
        the per-topic draws of a single query, so one request samples a topic
        rather than sweeping it.
    working_set_multiplier:
        Active-set size as a multiple of the expected distinct vectors of the
        planned trace (default 6); see the module docstring.
    persistence:
        How strongly a vector's persistent popularity determines whether it is
        in rotation in a given window (0 = every window draws a fresh hot set,
        1 = the hot set never changes).
    out_of_rotation_weight:
        Relative traffic weight of active vectors that are not in rotation in
        the current window (a small trickle, default 0.005).
    window_queries:
        Number of queries per traffic window.  Defaults to the number of
        queries of the planned trace, i.e. an evaluation trace is one window
        and a training trace several times longer spans several windows.
    burstiness:
        Probability that a query re-uses a topic that recent queries used
        (consecutive requests come from overlapping user populations, so hot
        content is hit repeatedly within a short span).  Temporal burstiness
        is what makes prefetched block neighbours useful before they age out
        of a small cache.
    """

    def __init__(
        self,
        spec: TableSpec,
        seed: int = 0,
        expected_lookups: Optional[int] = None,
        topic_affinity: float = 0.8,
        topics_per_query: float = 2.0,
        target_topic_size: Optional[int] = None,
        working_set_multiplier: float = 6.0,
        persistence: float = 0.6,
        out_of_rotation_weight: float = 0.005,
        window_queries: Optional[int] = None,
        burstiness: float = 0.6,
    ) -> None:
        check_fraction(topic_affinity, "topic_affinity")
        check_positive(topics_per_query, "topics_per_query")
        check_positive(working_set_multiplier, "working_set_multiplier")
        check_fraction(persistence, "persistence")
        check_fraction(out_of_rotation_weight, "out_of_rotation_weight")
        check_fraction(burstiness, "burstiness")
        self.spec = spec
        self.seed = int(seed)
        self.topic_affinity = float(topic_affinity)
        self.topics_per_query = float(topics_per_query)
        self.working_set_multiplier = float(working_set_multiplier)
        self.persistence = float(persistence)
        self.out_of_rotation_weight = float(out_of_rotation_weight)
        self.burstiness = float(burstiness)
        self._recent_topics: list = []
        self._rng = np.random.default_rng(self.seed)

        if expected_lookups is None:
            expected_lookups = paper_shaped_lookups(spec)
        check_positive(expected_lookups, "expected_lookups")
        self.expected_lookups = int(expected_lookups)

        if target_topic_size is None:
            target_topic_size = int(round(6 * spec.avg_lookups_per_query))
        check_positive(target_topic_size, "target_topic_size")
        self._target_topic_size = int(target_topic_size)

        expected_queries = max(
            1, int(round(self.expected_lookups / spec.avg_lookups_per_query))
        )
        if window_queries is None:
            window_queries = expected_queries
        check_positive(window_queries, "window_queries")
        self.window_queries = int(window_queries)

        # --- fixed latent structure ------------------------------------------
        structure_rng = np.random.default_rng(self.seed + 1)
        target_unique = max(
            32, int(round(spec.compulsory_miss_rate * self.expected_lookups))
        )
        self._target_unique = target_unique
        self.active_set_size = int(
            np.clip(
                round(self.working_set_multiplier * target_unique),
                min(256, spec.num_vectors),
                spec.num_vectors,
            )
        )
        # Active ids are a random subset of the table so the original layout
        # has no accidental locality.
        self.active_ids = np.sort(
            structure_rng.choice(
                spec.num_vectors, size=self.active_set_size, replace=False
            )
        ).astype(np.int64)

        self.num_topics = int(
            np.clip(
                round(self.active_set_size / self._target_topic_size),
                4,
                min(spec.num_topics, max(4, self.active_set_size // 8)),
            )
        )
        self._topic_of_active = structure_rng.integers(
            0, self.num_topics, size=self.active_set_size
        )
        self._topic_popularity = zipf_probabilities(self.num_topics, 0.9)
        self._topic_members = [
            np.where(self._topic_of_active == t)[0] for t in range(self.num_topics)
        ]

        # Persistent ("base") popularity: Zipf over a random permutation of
        # the active vectors, blended with the topic traffic shares so hot
        # topics carry more traffic.
        base = zipf_probabilities(self.active_set_size, spec.popularity_alpha)
        base = base[structure_rng.permutation(self.active_set_size)]
        topic_mass = np.zeros(self.num_topics)
        np.add.at(topic_mass, self._topic_of_active, base)
        safe_mass = np.where(topic_mass > 0, topic_mass, 1.0)
        within_topic = base / safe_mass[self._topic_of_active]
        topic_term = self._topic_popularity[self._topic_of_active] * within_topic
        marginal = (1.0 - self.topic_affinity) * base + self.topic_affinity * topic_term
        self._base_popularity = marginal / marginal.sum()

        # In-rotation fraction calibrated against the compulsory-miss target.
        self.rotation_fraction = self._calibrate_rotation_fraction()

        # Materialise the first traffic window.
        self._queries_in_window = 0
        self._start_new_window(self._rng)

    # --------------------------------------------------------------- windows
    def _rotation_inclusion_probabilities(self, fraction: float) -> np.ndarray:
        """Per-vector probability of being in rotation in a window.

        Persistently popular vectors are more likely to be in rotation; the
        ``persistence`` parameter interpolates between a uniform draw and a
        fully popularity-determined one.  Probabilities are scaled so the
        expected in-rotation count is ``fraction × active_set_size``.
        """
        weights = self._base_popularity ** self.persistence
        weights = weights / weights.sum()
        target_count = fraction * self.active_set_size
        probabilities = np.minimum(1.0, weights * target_count)
        # Renormalise the part below 1 to keep the expected count on target.
        for _ in range(4):
            deficit = target_count - probabilities.sum()
            if abs(deficit) < 1e-6:
                break
            adjustable = probabilities < 1.0
            if not adjustable.any():
                break
            probabilities[adjustable] = np.minimum(
                1.0,
                probabilities[adjustable]
                * (1.0 + deficit / max(probabilities[adjustable].sum(), 1e-12)),
            )
        return probabilities

    def _start_new_window(self, rng: np.random.Generator) -> None:
        """Draw a new in-rotation subset and the window's sampling laws."""
        inclusion = self._rotation_inclusion_probabilities(self.rotation_fraction)
        in_rotation = rng.random(self.active_set_size) < inclusion
        if not in_rotation.any():
            in_rotation[rng.integers(self.active_set_size)] = True
        window_weights = self._base_popularity * np.where(
            in_rotation, 1.0, self.out_of_rotation_weight
        )
        self._popularity = window_weights / window_weights.sum()
        self._topic_member_probs = []
        for members in self._topic_members:
            if members.size == 0:
                self._topic_member_probs.append(np.empty(0))
                continue
            weights = self._popularity[members]
            total = weights.sum()
            weights = (
                weights / total
                if total > 0
                else np.full(members.size, 1.0 / members.size)
            )
            self._topic_member_probs.append(weights)
        self._queries_in_window = 0

    # ----------------------------------------------------------- calibration
    def _expected_unique(self, fraction: float, num_windows: float) -> float:
        """Analytic estimate of the distinct vectors touched by the planned trace.

        A vector is touched in a window either because it is in rotation (and
        receives its share of the window's traffic) or through the small
        trickle of traffic that out-of-rotation vectors keep receiving.
        """
        inclusion = self._rotation_inclusion_probabilities(fraction)
        lookups_per_window = self.expected_lookups / max(num_windows, 1.0)
        # In-rotation vectors carry essentially all of the window's traffic;
        # the small out-of-rotation trickle is deliberately ignored here so the
        # estimate stays monotone in `fraction` (it slightly under-predicts the
        # realised unique count, which is acceptable for calibration).
        in_rotation_mass = float(np.sum(inclusion * self._base_popularity))
        if in_rotation_mass <= 0:
            return 0.0
        conditional = self._base_popularity / in_rotation_mass
        touch_given_in = -np.expm1(-lookups_per_window * conditional)
        miss_all_windows = (1.0 - inclusion * touch_given_in) ** num_windows
        return float(np.sum(1.0 - miss_all_windows))

    def _calibrate_rotation_fraction(self) -> float:
        """Bisection on the in-rotation fraction matching the compulsory target."""
        target_unique = self._target_unique
        num_windows = max(
            1.0,
            self.expected_lookups
            / (self.window_queries * self.spec.avg_lookups_per_query),
        )
        low, high = 0.05, 1.0
        if self._expected_unique(high, num_windows) <= target_unique:
            return high
        if self._expected_unique(low, num_windows) >= target_unique:
            return low
        for _ in range(30):
            mid = 0.5 * (low + high)
            if self._expected_unique(mid, num_windows) < target_unique:
                low = mid
            else:
                high = mid
            if high - low < 1e-4:
                break
        return 0.5 * (low + high)

    # ------------------------------------------------------------------ public
    def topic_of(self) -> np.ndarray:
        """Topic assignment for every vector id of the table.

        Every vector — including the ones outside the current active set —
        belongs to a topic: embedding values are trained for the whole table,
        so geometry carries no signal about which vectors happen to be in the
        traced window's working set.  (That signal is only available to
        access-history-based placement, which is one of the reasons SHP beats
        K-means in the paper.)  Used by
        :func:`repro.embeddings.synthesize_topic_vectors` to correlate
        embedding geometry with co-access.
        """
        rng = np.random.default_rng(self.seed + 3)
        topics = rng.integers(0, self.num_topics, size=self.spec.num_vectors)
        topics[self.active_ids] = self._topic_of_active
        return topics.astype(np.int64)

    def generate(self, num_queries: int) -> Trace:
        """Generate a trace of ``num_queries`` lookup queries.

        Successive calls continue the same stream of traffic windows, so a
        training trace generated first and an evaluation trace generated next
        behave like consecutive slices of production traffic.
        """
        check_positive(num_queries, "num_queries")
        rng = self._rng
        spec = self.spec
        queries = []
        # Pre-draw query sizes; at least one lookup per query.
        sizes = rng.poisson(lam=spec.avg_lookups_per_query, size=num_queries)
        sizes = np.maximum(sizes, 1)
        for size in sizes:
            if self._queries_in_window >= self.window_queries:
                self._start_new_window(rng)
            self._queries_in_window += 1
            query_topic_count = max(1, int(rng.poisson(self.topics_per_query)))
            topics = self._choose_query_topics(query_topic_count, rng)
            ids = self._draw_query_ids(int(size), topics, rng)
            queries.append(ids)
        return Trace(queries, num_vectors=spec.num_vectors)

    def _choose_query_topics(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Choose a query's topics, re-using recently hot topics with ``burstiness``."""
        topics = np.empty(count, dtype=np.int64)
        for i in range(count):
            if self._recent_topics and rng.random() < self.burstiness:
                topics[i] = self._recent_topics[rng.integers(len(self._recent_topics))]
            else:
                topics[i] = rng.choice(self.num_topics, p=self._topic_popularity)
        self._recent_topics.extend(topics.tolist())
        # Keep a short horizon of recent topics (a few dozen queries' worth).
        max_recent = max(8, int(30 * self.topics_per_query))
        if len(self._recent_topics) > max_recent:
            self._recent_topics = self._recent_topics[-max_recent:]
        return topics

    def generate_lookups(self, num_lookups: int) -> Trace:
        """Generate a trace containing approximately ``num_lookups`` lookups."""
        check_positive(num_lookups, "num_lookups")
        num_queries = max(1, int(round(num_lookups / self.spec.avg_lookups_per_query)))
        return self.generate(num_queries)

    # ----------------------------------------------------------------- private
    def _draw_query_ids(
        self, size: int, topics: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw the (distinct) ids of a single query (real table ids)."""
        # Over-draw slightly, then de-duplicate and truncate: a request reads
        # each id at most once, and popular vectors would otherwise collapse
        # heavy-skew queries well below the target size.
        draw = max(size + 4, int(round(size * 1.4)))
        num_topic_picks = int(rng.binomial(draw, self.topic_affinity))
        num_global_picks = draw - num_topic_picks

        parts = []
        if num_topic_picks:
            # Spread the topic picks across the query's chosen topics, then
            # batch-draw per topic (much faster than one draw at a time).
            per_topic = np.bincount(
                rng.integers(0, topics.size, size=num_topic_picks),
                minlength=topics.size,
            )
            for topic, count in zip(topics, per_topic):
                if count == 0:
                    continue
                members = self._topic_members[topic]
                if members.size == 0:
                    parts.append(
                        rng.choice(self.active_set_size, size=count, p=self._popularity)
                    )
                else:
                    parts.append(
                        rng.choice(members, size=count, p=self._topic_member_probs[topic])
                    )
        if num_global_picks:
            parts.append(
                rng.choice(
                    self.active_set_size, size=num_global_picks, p=self._popularity
                )
            )
        picks = np.concatenate(parts).astype(np.int64)

        # Keep first occurrences in draw order, truncated to the target size,
        # then map active-set indices to real table ids.
        _, first_positions = np.unique(picks, return_index=True)
        distinct_in_order = picks[np.sort(first_positions)][:size]
        return self.active_ids[distinct_in_order]


def generate_model_trace(
    specs: Dict[str, TableSpec],
    total_lookups: Optional[int] = None,
    seed: int = 0,
    generators: Optional[Dict[str, "SyntheticTraceGenerator"]] = None,
    split: str = "share",
    lookups_scale: float = 1.0,
) -> ModelTrace:
    """Generate a full-model trace across all tables.

    Parameters
    ----------
    specs:
        Per-table statistical specs (e.g. from :func:`scaled_table_specs`).
    total_lookups:
        Target number of lookups summed over all tables.  Required when
        ``split="share"``; ignored when ``split="paper-shaped"``.
    seed:
        Base seed; each table uses ``seed + table index``.
    generators:
        Optional pre-built generators (so a training trace and an evaluation
        trace can share the same latent structure).
    split:
        ``"share"`` sizes each table's trace so its share of total lookups
        matches Table 1 (used for the characterisation experiments);
        ``"paper-shaped"`` sizes each table's trace to reproduce the paper's
        access density (used for the bandwidth experiments).
    lookups_scale:
        Multiplier applied to every table's lookup count (used e.g. to build a
        training trace several times longer than the evaluation trace).
    """
    check_positive(lookups_scale, "lookups_scale")
    if split not in ("share", "paper-shaped"):
        raise ValueError(f"split must be 'share' or 'paper-shaped', got {split!r}")
    if split == "share" and total_lookups is None:
        raise ValueError("total_lookups is required when split='share'")

    tables = {}
    for index, (name, spec) in enumerate(specs.items()):
        if split == "share":
            table_lookups = max(1, int(round(total_lookups * spec.lookup_share)))
        else:
            table_lookups = paper_shaped_lookups(spec)
        table_lookups = max(1, int(round(table_lookups * lookups_scale)))
        if generators is not None and name in generators:
            generator = generators[name]
        else:
            generator = SyntheticTraceGenerator(
                spec, seed=seed + index, expected_lookups=table_lookups
            )
        tables[name] = generator.generate_lookups(table_lookups)
    return ModelTrace(tables)


def build_generators(
    specs: Dict[str, TableSpec],
    seed: int = 0,
    expected_lookups: Optional[Dict[str, int]] = None,
    **kwargs: object,
) -> Dict[str, SyntheticTraceGenerator]:
    """Build one generator per table.

    Useful when the same latent table structure must back several traces
    (placement training, threshold tuning, evaluation).  ``expected_lookups``
    optionally overrides the per-table calibration length (defaults to the
    paper-shaped length).
    """
    generators = {}
    for index, (name, spec) in enumerate(specs.items()):
        lookups = None
        if expected_lookups is not None and name in expected_lookups:
            lookups = int(expected_lookups[name])
        generators[name] = SyntheticTraceGenerator(
            spec, seed=seed + index, expected_lookups=lookups, **kwargs
        )
    return generators
