"""Production-like embedding access traces.

The paper characterises Facebook's user-embedding workload in its Table 1 and
Figures 3–4 (hit-rate curves and access histograms).  This package contains:

* :mod:`repro.workloads.trace` — the ``Trace``/``ModelTrace`` containers used
  everywhere else in the library,
* :mod:`repro.workloads.tables_spec` — the paper's per-table statistics as
  data, plus scaled-down variants that fit in memory,
* :mod:`repro.workloads.generator` — a synthetic trace generator that matches
  those statistics (popularity skew, request size, co-access structure),
* :mod:`repro.workloads.characterization` — the analysis used to regenerate
  Table 1 and Figure 4 from any trace,
* :mod:`repro.workloads.remap` — the id-densifying shim that lets external
  traces with sparse 64-bit key universes feed the array-native cache stack.
"""

from repro.workloads.trace import Trace, ModelTrace
from repro.workloads.tables_spec import (
    TableSpec,
    PAPER_TABLE_SPECS,
    scaled_table_specs,
)
from repro.workloads.generator import (
    SyntheticTraceGenerator,
    build_generators,
    generate_model_trace,
    paper_shaped_lookups,
)
from repro.workloads.characterization import (
    TableCharacterization,
    characterize_table,
    characterize_model,
    access_counts,
    access_histogram,
    compulsory_miss_rate,
)
from repro.workloads.remap import (
    IdRemapper,
    densify_model_trace,
    densify_trace,
)

__all__ = [
    "Trace",
    "ModelTrace",
    "TableSpec",
    "PAPER_TABLE_SPECS",
    "scaled_table_specs",
    "SyntheticTraceGenerator",
    "build_generators",
    "generate_model_trace",
    "paper_shaped_lookups",
    "TableCharacterization",
    "characterize_table",
    "characterize_model",
    "access_counts",
    "access_histogram",
    "compulsory_miss_rate",
    "IdRemapper",
    "densify_model_trace",
    "densify_trace",
]
