"""Trace containers.

A *query* is the set of embedding-vector ids one ranking request reads from a
single table (the paper's "lookup query" ``Q_j``).  A :class:`Trace` is an
ordered sequence of queries against one table; a :class:`ModelTrace` groups
the per-table traces of a whole model, mirroring how a production request
touches several user-embedding tables at once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, ItemsView, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.validation import check_array_1d_ints, check_fraction


class Trace:
    """An ordered sequence of lookup queries against a single embedding table.

    Parameters
    ----------
    queries:
        Iterable of 1-D integer arrays; each array holds the vector ids read
        by one request.  Empty queries are dropped.
    num_vectors:
        Size of the table the trace refers to.  When omitted it is inferred as
        ``max(id) + 1``.
    """

    def __init__(self, queries: Iterable[Sequence[int]], num_vectors: Optional[int] = None) -> None:
        self._queries: List[np.ndarray] = []
        max_id = -1
        for query in queries:
            arr = check_array_1d_ints(query, "query")
            if arr.size == 0:
                continue
            if arr.min() < 0:
                raise ValueError("vector ids must be non-negative")
            max_id = max(max_id, int(arr.max()))
            self._queries.append(arr)
        if num_vectors is None:
            num_vectors = max_id + 1
        elif max_id >= num_vectors:
            raise ValueError(
                f"trace references id {max_id} but num_vectors is {num_vectors}"
            )
        self.num_vectors = int(num_vectors)

    # ------------------------------------------------------------------ basic
    @property
    def queries(self) -> List[np.ndarray]:
        """The underlying list of id arrays (not copied)."""
        return self._queries

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._queries)

    def __getitem__(self, index: Union[int, slice]) -> Union[np.ndarray, "Trace"]:
        if isinstance(index, slice):
            return Trace(self._queries[index], num_vectors=self.num_vectors)
        return self._queries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.num_vectors == other.num_vectors
            and len(self) == len(other)
            and all(np.array_equal(a, b) for a, b in zip(self._queries, other._queries))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(num_queries={len(self)}, num_lookups={self.num_lookups}, "
            f"num_vectors={self.num_vectors})"
        )

    # ------------------------------------------------------------------ stats
    @property
    def num_lookups(self) -> int:
        """Total number of vector lookups across all queries."""
        return int(sum(q.size for q in self._queries))

    @property
    def avg_lookups_per_query(self) -> float:
        """Average number of vector ids per query (the paper's "avg request size")."""
        if not self._queries:
            return 0.0
        return self.num_lookups / len(self._queries)

    def unique_vectors(self) -> np.ndarray:
        """Sorted array of distinct vector ids appearing in the trace."""
        if not self._queries:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(self._queries))

    def flatten(self) -> np.ndarray:
        """All lookups in request order as a single 1-D id stream."""
        if not self._queries:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self._queries)

    # ----------------------------------------------------------- manipulation
    def split(self, fraction: float) -> Tuple["Trace", "Trace"]:
        """Split into a (head, tail) pair at ``fraction`` of the queries.

        Used to separate a placement-training trace from a held-out evaluation
        trace, mirroring the paper's train-on-5B / evaluate-on-1B methodology.
        """
        check_fraction(fraction, "fraction")
        cut = int(round(len(self._queries) * fraction))
        head = Trace(self._queries[:cut], num_vectors=self.num_vectors)
        tail = Trace(self._queries[cut:], num_vectors=self.num_vectors)
        return head, tail

    def head(self, num_queries: int) -> "Trace":
        """The first ``num_queries`` queries as a new trace."""
        if num_queries < 0:
            raise ValueError("num_queries must be >= 0")
        return Trace(self._queries[:num_queries], num_vectors=self.num_vectors)

    def concat(self, other: "Trace") -> "Trace":
        """Concatenate two traces over the same table."""
        num_vectors = max(self.num_vectors, other.num_vectors)
        return Trace(self._queries + other._queries, num_vectors=num_vectors)

    # ------------------------------------------------------------------- I/O
    def save(self, path: str) -> None:
        """Serialise to an ``.npz`` file (flat ids + query offsets)."""
        flat = self.flatten()
        lengths = np.array([q.size for q in self._queries], dtype=np.int64)
        np.savez_compressed(
            path,
            flat=flat,
            lengths=lengths,
            num_vectors=np.int64(self.num_vectors),
        )

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        if not os.path.exists(path):
            raise FileNotFoundError(path)
        with np.load(path) as data:
            flat = data["flat"]
            lengths = data["lengths"]
            num_vectors = int(data["num_vectors"])
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        queries = [flat[offsets[i] : offsets[i + 1]] for i in range(len(lengths))]
        return cls(queries, num_vectors=num_vectors)


@dataclass
class ModelTrace:
    """The per-table traces of one recommendation model.

    Attributes
    ----------
    tables:
        Mapping from table name to its :class:`Trace`.  Iteration order is the
        insertion order, matching the paper's table numbering.
    """

    tables: Dict[str, Trace] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Trace:
        return self.tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __iter__(self) -> Iterator[str]:
        return iter(self.tables)

    def __len__(self) -> int:
        return len(self.tables)

    def items(self) -> ItemsView[str, Trace]:
        return self.tables.items()

    @property
    def total_lookups(self) -> int:
        """Total lookups across every table."""
        return sum(trace.num_lookups for trace in self.tables.values())

    def lookup_shares(self) -> Dict[str, float]:
        """Fraction of all lookups served by each table (Table 1, "% of total")."""
        total = self.total_lookups
        if total == 0:
            return {name: 0.0 for name in self.tables}
        return {name: trace.num_lookups / total for name, trace in self.tables.items()}

    def split(self, fraction: float) -> Tuple["ModelTrace", "ModelTrace"]:
        """Split every table's trace at the same fraction."""
        heads, tails = {}, {}
        for name, trace in self.tables.items():
            heads[name], tails[name] = trace.split(fraction)
        return ModelTrace(heads), ModelTrace(tails)

    def save(self, directory: str) -> None:
        """Save each table's trace as ``<directory>/<name>.npz``."""
        os.makedirs(directory, exist_ok=True)
        for name, trace in self.tables.items():
            trace.save(os.path.join(directory, f"{name}.npz"))

    @classmethod
    def load(cls, directory: str, names: Optional[Sequence[str]] = None) -> "ModelTrace":
        """Load a model trace saved by :meth:`save`."""
        if names is None:
            names = sorted(
                os.path.splitext(f)[0]
                for f in os.listdir(directory)
                if f.endswith(".npz")
            )
        tables = {
            name: Trace.load(os.path.join(directory, f"{name}.npz")) for name in names
        }
        return cls(tables)
