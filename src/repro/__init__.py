"""Reproduction of *Bandana: Using Non-volatile Memory for Storing Deep Learning Models*.

Bandana (Eisenman et al., MLSYS 2019) stores recommendation-model embedding
tables on block-addressable NVM with a small DRAM cache.  Its two mechanisms —
locality-aware physical placement of embedding vectors into 4 KB blocks and
miniature-cache-tuned prefetch admission — are implemented here together with
every substrate they require (an NVM device model, embedding tables, synthetic
production-like traces, partitioners and the DRAM cache stack).

The most convenient entry points are:

``repro.BandanaStore``
    The end-to-end system: builds a placement, tunes per-table caches and
    serves lookups from the simulated NVM device.

``repro.workloads.SyntheticTraceGenerator``
    Generates access traces whose statistics match the paper's Table 1.

``repro.simulation.simulate_table``
    The per-table replay harness used by most of the paper's figures.

``repro.cluster.ClusterStore``
    The store promoted to a simulated multi-node cluster: consistent-hash
    sharding, R-way replication, fan-out/fan-in serving, and a
    fault-injection layer (crashes, slow nodes, lossy links) exercised by
    ``repro.cluster.run_scenario``.  See the ``repro.cluster`` package
    docstring for the scenario catalog and example configurations.

``repro.tracing``
    Per-request span tracing on the simulated clock: enable with
    ``BandanaConfig(tracing=TracingConfig(enabled=True))`` (or a
    ``tracing=`` argument to ``simulate_serving``/``run_scenario``) and
    every request's latency decomposes into named stage spans — batcher
    wait, device queue vs service, per-attempt retry/hedge/shed intervals —
    with critical-path and per-stage breakdown queries for tail debugging.

See ``DESIGN.md`` for the full module map and the per-experiment index.
"""

from repro.core.bandana import BandanaStore, BandanaTableState
from repro.core.config import (
    BandanaConfig,
    ServingConfig,
    TableCacheConfig,
    TracingConfig,
)
from repro.core.metrics import CacheStats, EffectiveBandwidth, LatencyStats

__all__ = [
    "BandanaStore",
    "BandanaTableState",
    "BandanaConfig",
    "ServingConfig",
    "TableCacheConfig",
    "TracingConfig",
    "CacheStats",
    "EffectiveBandwidth",
    "LatencyStats",
    "__version__",
]

__version__ = "0.1.0"
