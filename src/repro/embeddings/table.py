"""The embedding table: a dense matrix of learned feature vectors.

In the paper each table holds 10–20 million vectors of 64 fp16 elements
(128 B).  The table is written during training (every column touched by a data
sample is updated) and read — never modified — during inference.  Bandana only
needs the table's geometry (vector size, count) and a gather API; training is
modelled as bulk updates so endurance accounting and the retraining examples
have something realistic to drive.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import numpy.typing as npt

from repro.utils.validation import check_array_1d_ints, check_positive


class EmbeddingTable:
    """A single embedding table stored as a dense ``(num_vectors, dim)`` matrix.

    Parameters
    ----------
    name:
        Table identifier.
    num_vectors:
        Number of embedding vectors (the table's sparse-id cardinality).
    dim:
        Elements per vector (64 in the paper).
    dtype:
        Element dtype; fp16 matches the paper's 128 B vectors.
    values:
        Optional initial values of shape ``(num_vectors, dim)``.  When omitted
        the table starts at zero (as before training).
    """

    def __init__(
        self,
        name: str,
        num_vectors: int,
        dim: int = 64,
        dtype: npt.DTypeLike = np.float16,
        values: Optional[np.ndarray] = None,
    ) -> None:
        check_positive(num_vectors, "num_vectors")
        check_positive(dim, "dim")
        self.name = str(name)
        self.num_vectors = int(num_vectors)
        self.dim = int(dim)
        self.dtype = np.dtype(dtype)
        if values is None:
            self._values = np.zeros((self.num_vectors, self.dim), dtype=self.dtype)
        else:
            values = np.asarray(values)
            if values.shape != (self.num_vectors, self.dim):
                raise ValueError(
                    f"values must have shape {(self.num_vectors, self.dim)}, "
                    f"got {values.shape}"
                )
            self._values = values.astype(self.dtype, copy=True)

    # ------------------------------------------------------------------ sizes
    @property
    def vector_bytes(self) -> int:
        """Bytes occupied by one embedding vector."""
        return self.dim * self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Total bytes occupied by the table."""
        return self.num_vectors * self.vector_bytes

    @property
    def values(self) -> np.ndarray:
        """The underlying value matrix (not copied)."""
        return self._values

    # ----------------------------------------------------------------- access
    def gather(self, vector_ids: npt.ArrayLike) -> np.ndarray:
        """Return the vectors for the given ids, shape ``(len(ids), dim)``."""
        ids = check_array_1d_ints(vector_ids, "vector_ids")
        self._check_ids(ids)
        return self._values[ids]

    def pooled(self, vector_ids: npt.ArrayLike) -> np.ndarray:
        """Sum-pool the vectors of one query — the usual sparse-feature reduction."""
        gathered = self.gather(vector_ids)
        if gathered.shape[0] == 0:
            return np.zeros(self.dim, dtype=np.float32)
        return gathered.astype(np.float32).sum(axis=0)

    # ---------------------------------------------------------------- training
    def update(
        self, vector_ids: npt.ArrayLike, deltas: np.ndarray, learning_rate: float = 1.0
    ) -> None:
        """Apply a sparse gradient update (``values[ids] -= lr * deltas``).

        Mirrors how training touches only the columns referenced by a data
        sample.  ``deltas`` must have shape ``(len(ids), dim)``.
        """
        ids = check_array_1d_ints(vector_ids, "vector_ids")
        self._check_ids(ids)
        deltas = np.asarray(deltas, dtype=np.float32)
        if deltas.shape != (ids.size, self.dim):
            raise ValueError(
                f"deltas must have shape {(ids.size, self.dim)}, got {deltas.shape}"
            )
        updated = self._values[ids].astype(np.float32) - learning_rate * deltas
        self._values[ids] = updated.astype(self.dtype)

    def set_values(self, values: np.ndarray) -> None:
        """Replace all values (a retraining push)."""
        values = np.asarray(values)
        if values.shape != self._values.shape:
            raise ValueError(
                f"values must have shape {self._values.shape}, got {values.shape}"
            )
        self._values = values.astype(self.dtype, copy=True)

    # ----------------------------------------------------------------- private
    def _check_ids(self, ids: np.ndarray) -> None:
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_vectors):
            raise IndexError(
                f"vector ids must be in [0, {self.num_vectors}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EmbeddingTable(name={self.name!r}, num_vectors={self.num_vectors}, "
            f"dim={self.dim}, dtype={self.dtype})"
        )
