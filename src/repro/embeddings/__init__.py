"""Embedding tables and the recommendation model that consumes them.

The storage system under study holds *embedding tables*: dense matrices whose
columns are short learned vectors (64 × fp16 = 128 B in the paper) indexed by
sparse feature ids.  This package provides:

* :class:`repro.embeddings.EmbeddingTable` — a NumPy-backed table with the
  gather/update API the rest of the system uses,
* :mod:`repro.embeddings.synthesis` — synthetic vector values whose geometry
  is correlated with the workload's co-access topics, so that semantic
  (K-means) placement has signal to exploit,
* :class:`repro.embeddings.EmbeddingModel` and
  :class:`repro.embeddings.RecommendationModel` — a DLRM-style model skeleton
  used by the examples to exercise a realistic end-to-end read path.
"""

from repro.embeddings.table import EmbeddingTable
from repro.embeddings.synthesis import synthesize_topic_vectors
from repro.embeddings.model import EmbeddingModel, RecommendationModel

__all__ = [
    "EmbeddingTable",
    "synthesize_topic_vectors",
    "EmbeddingModel",
    "RecommendationModel",
]
