"""A DLRM-style recommendation model skeleton built on the embedding tables.

The paper's Figure 1 sketches the serving path: a request carries sparse ids
per table, the corresponding embedding vectors are gathered and pooled, and a
small dense neural network turns the pooled features into a click-probability
score.  The storage system never looks inside the network, but the examples in
this repository use :class:`RecommendationModel` so the end-to-end read path —
ids → Bandana lookups → pooled features → score — is exercised for real.
"""

from __future__ import annotations

from typing import Dict, ItemsView, Iterable, Iterator, List, Mapping, Optional

import numpy as np

from repro.embeddings.table import EmbeddingTable
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


class EmbeddingModel:
    """A named collection of embedding tables (the model's sparse parameters)."""

    def __init__(self, tables: Optional[Mapping[str, EmbeddingTable]] = None) -> None:
        self._tables: Dict[str, EmbeddingTable] = dict(tables or {})

    def add_table(self, table: EmbeddingTable) -> None:
        """Register a table under its own name; duplicate names are rejected."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already registered")
        self._tables[table.name] = table

    def __getitem__(self, name: str) -> EmbeddingTable:
        return self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def __len__(self) -> int:
        return len(self._tables)

    def items(self) -> ItemsView[str, EmbeddingTable]:
        return self._tables.items()

    @property
    def table_names(self) -> List[str]:
        """Names of the registered tables, in insertion order."""
        return list(self._tables)

    @property
    def nbytes(self) -> int:
        """Total bytes of all embedding tables (the DRAM the model would need)."""
        return sum(table.nbytes for table in self._tables.values())

    def pooled_features(self, request: Mapping[str, Iterable[int]]) -> np.ndarray:
        """Gather and sum-pool each table's vectors for one request.

        ``request`` maps table name to the vector ids read from that table.
        The result concatenates the per-table pooled vectors in table
        registration order; tables absent from the request contribute zeros.
        """
        parts = []
        for name, table in self._tables.items():
            ids = np.asarray(request.get(name, []), dtype=np.int64)
            if ids.size:
                parts.append(table.pooled(ids))
            else:
                parts.append(np.zeros(table.dim, dtype=np.float32))
        if not parts:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate(parts)


class RecommendationModel:
    """A small MLP over pooled embedding features (the paper's Figure 1 NN).

    Parameters
    ----------
    embedding_model:
        The sparse parameters (embedding tables).
    hidden_dims:
        Sizes of the dense hidden layers.
    dense_dim:
        Dimensionality of the request's dense features (user context that is
        not embedded); zeros are used if a request does not supply them.
    seed:
        Seed for the dense-parameter initialisation.
    """

    def __init__(
        self,
        embedding_model: EmbeddingModel,
        hidden_dims: Iterable[int] = (64, 32),
        dense_dim: int = 16,
        seed: int = 0,
    ) -> None:
        check_positive(dense_dim, "dense_dim")
        self.embedding_model = embedding_model
        self.dense_dim = int(dense_dim)
        input_dim = (
            sum(table.dim for _, table in embedding_model.items()) + self.dense_dim
        )
        if input_dim == self.dense_dim:
            raise ValueError("embedding_model must contain at least one table")
        rng = ensure_rng(seed)
        dims = [input_dim] + [int(d) for d in hidden_dims] + [1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(
                rng.normal(scale=scale, size=(fan_in, fan_out)).astype(np.float32)
            )
            self._biases.append(np.zeros(fan_out, dtype=np.float32))

    @property
    def num_parameters(self) -> int:
        """Number of dense (non-embedding) parameters."""
        return int(
            sum(w.size for w in self._weights) + sum(b.size for b in self._biases)
        )

    def score(
        self,
        request: Mapping[str, Iterable[int]],
        dense_features: Optional[np.ndarray] = None,
        pooled: Optional[np.ndarray] = None,
    ) -> float:
        """Click-probability score for one request.

        ``pooled`` lets a caller that already gathered the embeddings (e.g.
        through a :class:`~repro.core.bandana.BandanaStore`) supply the pooled
        features directly; otherwise they are gathered from the embedding
        model in DRAM.
        """
        if pooled is None:
            pooled = self.embedding_model.pooled_features(request)
        pooled = np.asarray(pooled, dtype=np.float32)
        if dense_features is None:
            dense_features = np.zeros(self.dense_dim, dtype=np.float32)
        dense_features = np.asarray(dense_features, dtype=np.float32)
        if dense_features.shape != (self.dense_dim,):
            raise ValueError(
                f"dense_features must have shape ({self.dense_dim},), "
                f"got {dense_features.shape}"
            )
        activations = np.concatenate([pooled, dense_features])
        for index, (weights, bias) in enumerate(zip(self._weights, self._biases)):
            activations = activations @ weights + bias
            if index < len(self._weights) - 1:
                np.maximum(activations, 0.0, out=activations)  # ReLU
        logit = float(activations[0])
        return 1.0 / (1.0 + np.exp(-logit))
