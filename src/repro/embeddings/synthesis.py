"""Synthetic embedding values correlated with the workload's co-access topics.

The paper's semantic-partitioning hypothesis is that vectors close in
Euclidean space are accessed at close temporal intervals.  Whether K-means
placement helps therefore depends entirely on how strongly geometry correlates
with co-access.  The trace generator groups vectors into latent *topics* that
drive co-access; this module gives every topic a centroid in embedding space
and scatters its member vectors around it, with a tunable ``noise`` level:

* ``noise = 0`` — geometry perfectly mirrors co-access (K-means can in
  principle match SHP),
* large ``noise`` — geometry is uninformative (K-means degenerates to random
  placement), reproducing the paper's observation that Euclidean proximity is
  an imperfect proxy for temporal proximity.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative, check_positive


def synthesize_topic_vectors(
    topic_of: np.ndarray,
    dim: int = 64,
    noise: float = 0.5,
    centroid_scale: float = 1.0,
    seed: int = 0,
    dtype: np.dtype = np.float16,
) -> np.ndarray:
    """Create embedding values clustered around per-topic centroids.

    Parameters
    ----------
    topic_of:
        Topic index per vector id (``-1`` marks vectors outside the active
        set; they receive pure noise).
    dim:
        Vector dimensionality.
    noise:
        Standard deviation of the per-vector scatter around its topic
        centroid, relative to ``centroid_scale``.
    centroid_scale:
        Standard deviation of the topic centroids themselves.
    seed:
        Random seed.
    dtype:
        Output dtype (fp16 matches the paper's tables).

    Returns
    -------
    numpy.ndarray of shape ``(len(topic_of), dim)``.
    """
    check_positive(dim, "dim")
    check_non_negative(noise, "noise")
    check_positive(centroid_scale, "centroid_scale")
    topic_of = np.asarray(topic_of, dtype=np.int64)
    if topic_of.ndim != 1:
        raise ValueError("topic_of must be one-dimensional")
    rng = ensure_rng(seed)
    num_vectors = topic_of.size
    num_topics = int(topic_of.max()) + 1 if (topic_of >= 0).any() else 0

    values = rng.normal(
        scale=centroid_scale, size=(num_vectors, dim)
    )  # default: unclustered noise for inactive vectors
    if num_topics > 0:
        centroids = rng.normal(scale=centroid_scale, size=(num_topics, dim))
        active = topic_of >= 0
        scatter = rng.normal(scale=noise * centroid_scale, size=(int(active.sum()), dim))
        values[active] = centroids[topic_of[active]] + scatter
    return values.astype(dtype)
