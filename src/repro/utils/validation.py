"""Argument-validation helpers used across the library.

These raise ``ValueError``/``TypeError`` with consistent messages so that the
public API fails loudly and early on bad configuration instead of producing
silently wrong simulation results.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if it is strictly positive, else raise ``ValueError``."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is >= 0, else raise ``ValueError``."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return ``value`` if ``low <= value <= high``, else raise ``ValueError``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Return ``value`` if it lies in ``[0, 1]``, else raise ``ValueError``."""
    return check_in_range(value, 0.0, 1.0, name)


def check_probability(value: float, name: str) -> float:
    """Return ``value`` if it is a valid probability, else raise ``ValueError``.

    Alias of :func:`check_fraction` with a message that says "probability",
    for knobs that are genuinely chances (e.g. per-attempt link loss) rather
    than ratios.
    """
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_int_at_least(value: Any, minimum: int, name: str) -> int:
    """Return ``value`` as an ``int`` if it is an integer >= ``minimum``.

    Rejects booleans and non-integral floats: worker counts, chunk sizes and
    replica counts are exact quantities, and silently truncating ``2.5``
    workers would hide a configuration bug.  The error message names the knob
    and the constraint so a bad config fails at construction, not as an
    obscure downstream crash.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(
            f"{name} must be an integer >= {minimum}, got {value!r} "
            f"of type {type(value).__name__}"
        )
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")
    return int(value)


def check_bool(value: Any, name: str) -> bool:
    """Return ``value`` if it is an actual ``bool``, else raise ``TypeError``.

    Feature flags must be real booleans: truthy stand-ins (``1``, ``"no"``)
    read as configuration typos — ``tune_thresholds="no"`` would silently
    *enable* tuning.
    """
    if not isinstance(value, bool):
        raise TypeError(
            f"{name} must be a bool, got {value!r} of type {type(value).__name__}"
        )
    return value


def check_seed(value: Any, name: str) -> Optional[int]:
    """Return ``value`` if it is a valid RNG seed (``None`` or an int >= 0).

    ``numpy.random.SeedSequence`` rejects negative entropy, so a negative
    seed would fail deep inside the first stochastic component instead of at
    configuration time; floats are rejected because seeds are identities.
    """
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(
            f"{name} must be None or an integer >= 0, got {value!r} "
            f"of type {type(value).__name__}"
        )
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return int(value)


def check_instance(value: Any, expected: type, name: str) -> Any:
    """Return ``value`` if it is an instance of ``expected``, else ``TypeError``.

    Used for nested config objects: passing a dict where a ``ServingConfig``
    belongs would defer the crash to the first attribute access.
    """
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be a {expected.__name__}, got {value!r} "
            f"of type {type(value).__name__}"
        )
    return value


def check_array_1d_ints(values: Any, name: str) -> np.ndarray:
    """Coerce ``values`` to a 1-D ``int64`` array, raising on bad shapes.

    Accepts lists, tuples and integer numpy arrays.  Floating point inputs are
    rejected because vector ids are identities, not quantities.
    """
    arr = np.asarray(values)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"{name} must contain integers, got dtype {arr.dtype}")
    return arr.astype(np.int64, copy=False)
