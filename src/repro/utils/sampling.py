"""Sampling primitives shared by the workload generator and miniature caches.

The miniature-cache technique (Waldspurger et al., ATC'17) relies on *spatial*
hash sampling: a vector id is either always sampled or never sampled, so the
reuse pattern of the sampled sub-population is statistically similar to the
full population.  ``spatial_hash_sample_mask`` implements that selection with
a splittable integer hash so the choice is deterministic, seed-dependent and
independent of request order.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.utils.validation import check_fraction, check_positive

# Constants of the splitmix64 finaliser, a well-mixed 64-bit integer hash.
_SPLITMIX_MULT_1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_MULT_2 = np.uint64(0x94D049BB133111EB)
_SPLITMIX_INCR = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 hash of an int array, returning uint64."""
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64) + _SPLITMIX_INCR
        z = (z ^ (z >> np.uint64(30))) * _SPLITMIX_MULT_1
        z = (z ^ (z >> np.uint64(27))) * _SPLITMIX_MULT_2
        z = z ^ (z >> np.uint64(31))
    return z


def spatial_hash_sample_mask(ids: np.ndarray, rate: float, seed: int = 0) -> np.ndarray:
    """Return a boolean mask selecting ids whose hash falls under ``rate``.

    The same id always receives the same decision for a given ``seed``,
    regardless of where it appears in the request stream — the property the
    miniature-cache technique depends on.

    Parameters
    ----------
    ids:
        Integer array of vector ids (any shape).
    rate:
        Sampling rate in ``[0, 1]``.
    seed:
        Changes the hash so independent samples can be drawn.
    """
    check_fraction(rate, "rate")
    ids = np.asarray(ids, dtype=np.int64)
    if rate >= 1.0:
        return np.ones(ids.shape, dtype=bool)
    if rate <= 0.0:
        return np.zeros(ids.shape, dtype=bool)
    with np.errstate(over="ignore"):
        seed_mix = np.uint64(seed % (2**64)) * np.uint64(0x5851F42D4C957F2D)
        hashed = _splitmix64(ids.view(np.uint64) ^ seed_mix)
    threshold = np.uint64(int(rate * float(np.iinfo(np.uint64).max)))
    return hashed < threshold


def sample_queries_spatially(
    queries: Sequence[np.ndarray], rate: float, seed: int = 0
) -> List[np.ndarray]:
    """Spatially sample every query in a trace, dropping queries that become empty.

    Used to build the miniature-cache request stream: each query keeps exactly
    the ids selected by :func:`spatial_hash_sample_mask`.
    """
    sampled: List[np.ndarray] = []
    for query in queries:
        query = np.asarray(query, dtype=np.int64)
        mask = spatial_hash_sample_mask(query, rate, seed=seed)
        if mask.any():
            sampled.append(query[mask])
    return sampled


def zipf_probabilities(n: int, alpha: float) -> np.ndarray:
    """Return the probability vector of a Zipf(alpha) law over ``n`` ranks.

    ``alpha = 0`` degenerates to the uniform distribution; larger ``alpha``
    concentrates mass on the most popular ranks.  The vector is normalised to
    sum to one.
    """
    check_positive(n, "n")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    ranks = np.arange(1, int(n) + 1, dtype=np.float64)
    weights = ranks ** (-float(alpha))
    return weights / weights.sum()
