"""Random-number-generator plumbing.

Every stochastic component in the library (synthetic traces, SHP/K-means
initialisation, serving arrivals, fault schedules) must be reproducible from
an explicit seed, and composable pipelines must be able to hand one shared
:class:`numpy.random.Generator` through the stack instead of sprinkling
integer seeds.  :func:`ensure_rng` is the single conversion point: it accepts
``None`` (fresh OS entropy), an integer seed, or an existing ``Generator``
(returned unchanged), so any ``seed``/``rng`` parameter can take either form.

The library contains no hidden global randomness: nothing calls the legacy
``np.random.*`` module-level functions (``tests/test_utils_validation.py``
pins this with a source audit), so two runs with the same seeds are
bit-identical regardless of what other code does to the global state.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Anything :func:`ensure_rng` accepts.
SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    An existing ``Generator`` is returned unchanged (the caller shares the
    stream); an integer seeds a fresh generator; ``None`` draws OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(seed: SeedLike, stream: int) -> np.random.Generator:
    """An independent generator for sub-stream ``stream`` of ``seed``.

    Integer seeds use ``SeedSequence(seed).spawn()`` children, so different
    streams of the same seed never overlap; an existing ``Generator`` spawns
    an independent child off its own bit generator.  Components that need
    several internal streams (e.g. a fault schedule's per-edge loss draws
    next to a scenario's arrival process) derive them here instead of doing
    ad-hoc ``seed + k`` arithmetic.
    """
    if stream < 0:
        raise ValueError(f"stream must be >= 0, got {stream}")
    if isinstance(seed, np.random.Generator):
        return seed.spawn(stream + 1)[stream]
    sequence = np.random.SeedSequence(seed)
    return np.random.default_rng(sequence.spawn(stream + 1)[stream])
