"""Small shared helpers: argument validation, RNG plumbing and sampling."""

from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_fraction,
    check_probability,
    check_int_at_least,
    check_array_1d_ints,
)
from repro.utils.rng import SeedLike, derive_rng, ensure_rng
from repro.utils.sampling import (
    spatial_hash_sample_mask,
    sample_queries_spatially,
    zipf_probabilities,
)

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_fraction",
    "check_probability",
    "check_int_at_least",
    "check_array_1d_ints",
    "SeedLike",
    "derive_rng",
    "ensure_rng",
    "spatial_hash_sample_mask",
    "sample_queries_spatially",
    "zipf_probabilities",
]
