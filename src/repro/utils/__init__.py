"""Small shared helpers: argument validation and sampling primitives."""

from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_fraction,
    check_array_1d_ints,
)
from repro.utils.sampling import (
    spatial_hash_sample_mask,
    sample_queries_spatially,
    zipf_probabilities,
)

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_fraction",
    "check_array_1d_ints",
    "spatial_hash_sample_mask",
    "sample_queries_spatially",
    "zipf_probabilities",
]
