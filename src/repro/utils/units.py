"""Time-unit boundary conversions.

The simulated clock runs in microseconds; configuration knobs that humans
author (trailing windows, breaker cool-offs, fault windows) are in seconds.
These helpers are the sanctioned crossing point: convert **once** at the
boundary, to *integer* microseconds, and keep all downstream clock
arithmetic in µs.  Rounding to whole microseconds matters — ``0.05 * 1e6``
is ``50000.000000000007`` in binary floating point, and letting that
non-integral "microsecond" value leak into comparisons makes window
boundaries depend on float representation rather than on the modeled clock.

``repro_lint`` rule R3 (time-unit hygiene) flags cross-unit assignments that
lack a visible conversion; routing them through this module keeps the
conversion explicit and the result integral.
"""

from __future__ import annotations

#: Microseconds per second / millisecond.
US_PER_S = 1_000_000
US_PER_MS = 1_000


def s_to_us(seconds: float) -> int:
    """Seconds -> integer microseconds (rounded to the nearest µs)."""
    return int(round(seconds * US_PER_S))


def ms_to_us(millis: float) -> int:
    """Milliseconds -> integer microseconds (rounded to the nearest µs)."""
    return int(round(millis * US_PER_MS))


def us_to_s(micros: float) -> float:
    """Microseconds -> float seconds (for human-facing reporting only)."""
    return micros / US_PER_S
