"""Figure 11 — where (and whether) to insert prefetched vectors in the queue.

(a) inserting prefetches at a lower queue position, (b) admitting only
prefetches that hit a shadow cache, (c) combining both.  All three are
measured against the no-prefetch baseline on table 2 with limited caches, as
in the paper.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import cache_sizes_for, save_result
from repro.caching.policies import (
    CombinedPolicy,
    InsertAtPositionPolicy,
    ShadowAdmissionPolicy,
)
from repro.simulation.experiment import ExperimentSweep
from repro.simulation.runner import simulate_table

TABLE = "table2"
POSITIONS = [0.0, 0.3, 0.5, 0.7, 0.9]
SHADOW_MULTIPLIERS = [1.0, 1.5, 2.0]


def run_figure11(bundle):
    workload = bundle[TABLE]
    cache_sizes = cache_sizes_for(workload, fractions=(0.2, 0.4, 0.6))
    sweep = ExperimentSweep("figure11", f"prefetch insertion policies on {TABLE}")
    results = {"position": {}, "shadow": {}, "combined": {}}

    for cache_size in cache_sizes:
        for position in POSITIONS:
            result = simulate_table(
                workload.evaluation,
                workload.shp_layout,
                InsertAtPositionPolicy(position=position),
                cache_size=cache_size,
            )
            results["position"][(cache_size, position)] = result.bandwidth_increase
            sweep.add(
                {"policy": "insert-at-position", "cache_size": cache_size, "param": position},
                {"bw_increase": result.bandwidth_increase},
            )
        for multiplier in SHADOW_MULTIPLIERS:
            result = simulate_table(
                workload.evaluation,
                workload.shp_layout,
                ShadowAdmissionPolicy(real_cache_size=cache_size, multiplier=multiplier),
                cache_size=cache_size,
            )
            results["shadow"][(cache_size, multiplier)] = result.bandwidth_increase
            sweep.add(
                {"policy": "shadow-admission", "cache_size": cache_size, "param": multiplier},
                {"bw_increase": result.bandwidth_increase},
            )
        for position in (0.5, 0.9):
            result = simulate_table(
                workload.evaluation,
                workload.shp_layout,
                CombinedPolicy(real_cache_size=cache_size, position=position, multiplier=1.5),
                cache_size=cache_size,
            )
            results["combined"][(cache_size, position)] = result.bandwidth_increase
            sweep.add(
                {"policy": "combined", "cache_size": cache_size, "param": position},
                {"bw_increase": result.bandwidth_increase},
            )
    return sweep, results, cache_sizes


def test_fig11_prefetch_policies(bundle, benchmark):
    sweep, results, cache_sizes = benchmark.pedantic(
        run_figure11, args=(bundle,), rounds=1, iterations=1
    )
    save_result("fig11_prefetch_policies", sweep.to_table())
    smallest = min(cache_sizes)
    # Figure 11a: inserting prefetches lower in the queue is no worse than
    # inserting them at the top (position 0), for small caches.
    assert results["position"][(smallest, 0.9)] >= results["position"][(smallest, 0.0)] - 0.02
    # Figure 11b: shadow-cache admission filters most of the pollution, so it
    # stays close to (or above) the no-prefetch baseline.
    shadow_gains = [results["shadow"][(smallest, m)] for m in SHADOW_MULTIPLIERS]
    assert min(shadow_gains) > -0.25
    # Figure 11a/11c overall: none of these heuristics produces a large gain —
    # the motivation for the access-threshold policy of Figure 12.
    all_gains = [g for family in results.values() for g in family.values()]
    assert max(all_gains) < 0.6
