"""Figure 12 — admission by access count during the SHP training run.

Prefetched vectors are admitted only if they appeared in more than ``t``
training queries.  The gain is positive for a well-chosen ``t`` and the
optimal ``t`` shrinks as the cache grows (larger caches can afford more
speculative prefetches).

The threshold values themselves are adapted to the scaled workload's access
count distribution (see ``benchmarks.common.threshold_candidates``); the
paper's absolute values (5–20) correspond to a 5 B-lookup training run.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import cache_sizes_for, save_result, threshold_candidates
from repro.caching.policies import AccessThresholdPolicy
from repro.simulation.experiment import ExperimentSweep
from repro.simulation.runner import simulate_table

TABLE = "table2"


def run_figure12(bundle):
    workload = bundle[TABLE]
    cache_sizes = cache_sizes_for(workload, fractions=(0.2, 0.4, 0.6, 0.9))
    thresholds = threshold_candidates(workload)
    sweep = ExperimentSweep("figure12", f"access-threshold admission on {TABLE}")
    results = {}
    for cache_size in cache_sizes:
        for threshold in thresholds:
            result = simulate_table(
                workload.evaluation,
                workload.shp_layout,
                AccessThresholdPolicy(workload.access_counts, threshold),
                cache_size=cache_size,
            )
            results[(cache_size, threshold)] = result.bandwidth_increase
            sweep.add(
                {"cache_size": cache_size, "threshold": threshold},
                {"bw_increase": result.bandwidth_increase},
            )
    return sweep, results, cache_sizes, thresholds


def test_fig12_access_threshold(bundle, benchmark):
    sweep, results, cache_sizes, thresholds = benchmark.pedantic(
        run_figure12, args=(bundle,), rounds=1, iterations=1
    )
    save_result("fig12_access_threshold", sweep.to_table())
    largest_cache = max(cache_sizes)
    smallest_cache = min(cache_sizes)
    best_at_large = max(results[(largest_cache, t)] for t in thresholds)
    # A well-chosen threshold yields a positive gain at the largest cache.
    assert best_at_large > 0.0
    # Filtering (t > 0) beats admitting every previously-seen vector (t = 0)
    # at the smallest cache — the paper's motivation for the threshold.
    strictest = max(thresholds)
    assert results[(smallest_cache, strictest)] > results[(smallest_cache, 0.0)]
