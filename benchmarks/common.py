"""Shared infrastructure for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper's evaluation as a
plain-text table: the same rows/series the paper plots, measured on the scaled
synthetic workload.  The output of each benchmark is printed and also written
to ``benchmarks/results/<name>.txt`` so the numbers recorded in
``EXPERIMENTS.md`` can be re-derived at any time.

The workload bundle (traces, access counts, SHP layouts for all eight tables)
is built once per pytest session by the fixtures in ``conftest.py`` and shared
across benchmarks; the bundle uses a 1/1000 scale of the paper's tables so the
whole harness completes in a few minutes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.nvm.block import BlockLayout
from repro.partitioning import SHPPartitioner
from repro.workloads import (
    SyntheticTraceGenerator,
    paper_shaped_lookups,
    scaled_table_specs,
)
from repro.workloads.characterization import access_counts
from repro.workloads.tables_spec import TableSpec
from repro.workloads.trace import Trace

#: Linear scale of the benchmark workload relative to the paper's tables.
BENCH_SCALE = 1.0 / 1000.0
#: Ratio of placement-training lookups to evaluation lookups (the paper trains
#: on 5 B requests and evaluates on 1 B; 3× keeps the harness fast).
TRAIN_EVAL_RATIO = 3.0
#: Vectors per 4 KB block for 128 B vectors.
VECTORS_PER_BLOCK = 32

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(name: str, text: str) -> None:
    """Print a benchmark's result table and persist it under ``results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


@dataclass
class TableWorkload:
    """Everything the benchmarks need for one embedding table."""

    spec: TableSpec
    generator: SyntheticTraceGenerator
    train: Trace
    evaluation: Trace
    access_counts: np.ndarray
    shp_layout: BlockLayout
    identity_layout: BlockLayout

    @property
    def eval_unique(self) -> int:
        """Distinct vectors touched by the evaluation trace (its working set)."""
        return int(self.evaluation.unique_vectors().size)


@dataclass
class WorkloadBundle:
    """The per-table workloads plus the scale metadata, shared across benchmarks."""

    scale: float
    tables: Dict[str, TableWorkload] = field(default_factory=dict)

    def __getitem__(self, name: str) -> TableWorkload:
        return self.tables[name]

    def names(self):
        return list(self.tables)


def build_table_workload(
    spec: TableSpec,
    seed: int,
    shp_iterations: int = 12,
    train_eval_ratio: float = TRAIN_EVAL_RATIO,
) -> TableWorkload:
    """Generate traces and train the SHP placement for one table."""
    eval_lookups = paper_shaped_lookups(spec, VECTORS_PER_BLOCK)
    generator = SyntheticTraceGenerator(spec, seed=seed, expected_lookups=eval_lookups)
    train = generator.generate_lookups(int(round(eval_lookups * train_eval_ratio)))
    evaluation = generator.generate_lookups(eval_lookups)
    counts = access_counts(train)
    shp = SHPPartitioner(
        vectors_per_block=VECTORS_PER_BLOCK, num_iterations=shp_iterations, seed=seed
    )
    shp_layout = shp.partition(spec.num_vectors, trace=train).layout(VECTORS_PER_BLOCK)
    identity_layout = BlockLayout.identity(spec.num_vectors, VECTORS_PER_BLOCK)
    return TableWorkload(
        spec=spec,
        generator=generator,
        train=train,
        evaluation=evaluation,
        access_counts=counts,
        shp_layout=shp_layout,
        identity_layout=identity_layout,
    )


def build_bundle(
    scale: float = BENCH_SCALE,
    names: Optional[list] = None,
    seed: int = 100,
) -> WorkloadBundle:
    """Build the shared workload bundle for the requested tables."""
    specs = scaled_table_specs(scale, names=names)
    bundle = WorkloadBundle(scale=scale)
    for index, (name, spec) in enumerate(specs.items()):
        bundle.tables[name] = build_table_workload(spec, seed=seed + index)
    return bundle


def cache_sizes_for(workload: TableWorkload, fractions=(0.15, 0.3, 0.45, 0.6)) -> list:
    """Cache sizes expressed as fractions of the table's evaluation working set.

    The paper sweeps absolute cache sizes (80–200 k vectors for a 10 M-vector
    table); at the benchmark scale the equivalent knob is the ratio of cache
    size to the evaluation working set, which is what actually determines the
    cache behaviour.
    """
    unique = workload.eval_unique
    return [max(32, int(round(unique * fraction))) for fraction in fractions]


def threshold_candidates(workload: TableWorkload) -> list:
    """Admission-threshold sweep adapted to the workload's access-count scale.

    The paper sweeps t ∈ {5, 10, 15, 20} against counts accumulated over 5 B
    training lookups.  The scaled training traces concentrate far more
    accesses on each touched vector, so the sweep uses percentiles of the
    non-zero access counts instead of the paper's absolute values.
    """
    touched = workload.access_counts[workload.access_counts > 0]
    if touched.size == 0:
        return [0.0, 1.0, 2.0, 4.0]
    percentiles = np.percentile(touched, [50, 75, 90, 95])
    thresholds = sorted({float(int(value)) for value in percentiles})
    return [0.0] + thresholds
