"""Figure 7 — partitioning runtimes.

(a) flat K-means runtime versus cluster count, (b) two-stage (recursive)
K-means runtime versus leaf-cluster count, (c) SHP runtime per table.  The
absolute times are not comparable to the paper's (different hardware, scaled
tables); the shape — flat K-means growing steeply with the cluster count while
the recursive variant grows slowly, and SHP costing minutes-equivalent per
table — is what the benchmark checks.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import save_result
from benchmarks.conftest import TOP_TABLES
from repro.partitioning import (
    KMeansPartitioner,
    RecursiveKMeansPartitioner,
    SHPPartitioner,
)
from repro.simulation.report import format_table

FLAT_CLUSTERS = [16, 64, 256, 512]
LEAF_CLUSTERS = [64, 256, 512]
KMEANS_TABLE = "table4"


def run_figure7(bundle, embedding_values):
    workload = bundle[KMEANS_TABLE]
    table_values = embedding_values(KMEANS_TABLE)
    rows_a = []
    flat_runtimes = []
    for clusters in FLAT_CLUSTERS:
        result = KMeansPartitioner(num_clusters=clusters, num_iterations=10, seed=0).partition(
            workload.spec.num_vectors, table=table_values
        )
        flat_runtimes.append(result.runtime_seconds)
        rows_a.append([f"kmeans k={clusters}", f"{result.runtime_seconds:.2f}"])

    rows_b = []
    recursive_runtimes = []
    for leaves in LEAF_CLUSTERS:
        result = RecursiveKMeansPartitioner(
            num_top_clusters=16, num_sub_clusters=leaves, num_iterations=10, seed=0
        ).partition(workload.spec.num_vectors, table=table_values)
        recursive_runtimes.append(result.runtime_seconds)
        rows_b.append([f"recursive leaves={leaves}", f"{result.runtime_seconds:.2f}"])

    rows_c = []
    for name in TOP_TABLES:
        table_workload = bundle[name]
        result = SHPPartitioner(vectors_per_block=32, num_iterations=16, seed=0).partition(
            table_workload.spec.num_vectors, trace=table_workload.train
        )
        rows_c.append([f"shp {name}", f"{result.runtime_seconds:.2f}"])

    table = format_table(["configuration", "runtime (s)"], rows_a + rows_b + rows_c)
    return table, flat_runtimes, recursive_runtimes


def test_fig07_runtimes(bundle, embedding_values, benchmark):
    table, flat_runtimes, recursive_runtimes = benchmark.pedantic(
        run_figure7, args=(bundle, embedding_values), rounds=1, iterations=1
    )
    save_result("fig07_runtimes", table)
    # Flat K-means runtime grows with the cluster count (Figure 7a) and the
    # recursive variant is cheaper than flat K-means at the same leaf count
    # (Figures 7a vs 7b).
    assert flat_runtimes[-1] > flat_runtimes[0]
    assert recursive_runtimes[-1] < flat_runtimes[-1] * 1.5
