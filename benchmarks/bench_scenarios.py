"""Adversarial-workload study: when does Bandana's offline pipeline break?

The store's placement, admission thresholds and DRAM split are all trained
offline on a historical trace (Sections 4.2-4.4 of the paper); this
benchmark measures what that costs once the workload moves:

1. **Drift decay** — community-structured Zipf traffic whose popularity
   ranking starts rotating right after the training split
   (``drift_start_fraction`` = the train fraction).  One arm per rotation
   rate; the windowed hit-rate series decays as the placement goes stale,
   and the early-minus-late decay grows with the drift rate
   (``0.0`` is the stationary control).
2. **Re-partitioning lifecycle** — the fastest-drift trace served twice:
   stale (offline placement only) vs a
   :class:`~repro.scenarios.lifecycle.RepartitionManager` retraining SHP on
   a trailing window and swapping the placement live.  The headline is
   ``recovered_fraction``: how much of the stale arm's early→late hit-rate
   loss the lifecycle wins back in the late windows.
3. **Flash crowd** — a traffic spike concentrated on a crowd of
   previously-cold ids sized to overflow the DRAM cache, served through the
   event-driven front-end near device saturation, against a no-flash
   control of the same law.  The crowd's compulsory misses queue on the
   device and surface as the p999 excess over the control.
4. **Loader characterization** — the committed sample traces under
   ``tests/data/`` through the streaming loader, rendered side by side with
   the paper's Table 1 columns.

Results are printed, persisted under ``benchmarks/results/`` and written as
JSON to ``BENCH_scenarios.json`` at the repository root.  The artifact
always carries a ``smoke_reference`` section computed at the CI-sized
configuration: every run is a deterministic function of (trace, config,
seed), so ``benchmarks/perf_track.py`` regenerates it on any runner and
compares numbers with tight tolerances.  A full (non ``--smoke``) run adds
the full-sized sections and a loose wall-clock measurement on top.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import json
import os
import sys
import time
from typing import Dict, List, Optional

from benchmarks.common import save_result
from repro.core.bandana import BandanaStore
from repro.core.config import BandanaConfig, ServingConfig
from repro.scenarios import (
    RepartitionConfig,
    ScenarioConfig,
    TraceLoaderConfig,
    characterization_report,
    generate_scenario_trace,
    load_trace,
    run_workload_scenario,
)
from repro.serving import simulate_serving
from repro.simulation.report import format_table
from repro.workloads.trace import ModelTrace

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_scenarios.json")
FIXTURES = {
    "twitter": ("tests/data/sample_twitter_trace.csv", "twitter"),
    "columnar": ("tests/data/sample_columnar_trace.csv", "columnar"),
}

#: Training prefix of every scenario trace; drift begins right after it.
TRAIN_FRACTION = 1.0 / 3.0
SCENARIO_SEED = 7
SERVING_SEED = 11

#: The CI-sized configuration behind the artifact's ``smoke_reference``
#: section (regenerated and compared by ``benchmarks/perf_track.py``).
SMOKE_PARAMS = dict(num_queries=1800, num_vectors=4096, serving_requests=700)
FULL_PARAMS = dict(num_queries=4800, num_vectors=4096, serving_requests=2400)

DRIFT_RATES = (0.0, 0.02, 0.05)


def _store_config(num_vectors: int) -> BandanaConfig:
    """A store where placement is first-order: the DRAM cache holds 1/8 of
    the universe and admission is permissive (the tuned threshold would
    starve prefetching on this workload — see the threshold study in
    ``bench_serving_latency.py`` for where tuning does pay)."""
    return BandanaConfig(
        total_cache_vectors=num_vectors // 8,
        tune_thresholds=False,
        default_threshold=2,
    )


def _scenario(kind: str, num_queries: int, num_vectors: int, **overrides: object) -> ScenarioConfig:
    return ScenarioConfig(
        kind=kind,
        num_queries=num_queries,
        num_vectors=num_vectors,
        drift_epoch_queries=max(1, num_queries // 24),
        drift_start_fraction=TRAIN_FRACTION,
        seed=SCENARIO_SEED,
        **overrides,  # type: ignore[arg-type]
    )


def _drift_section(num_queries: int, num_vectors: int) -> Dict[str, object]:
    """Hit-rate decay vs drift rate for the stale (offline-only) store."""
    config = _store_config(num_vectors)
    window = max(1, num_queries // 24)
    warmup = max(1, num_queries // 12)
    rows: List[Dict[str, object]] = []
    for rate in DRIFT_RATES:
        trace = generate_scenario_trace(
            _scenario("drift", num_queries, num_vectors, drift_rotation_per_epoch=rate)
        )
        report = run_workload_scenario(
            trace,
            config=config,
            train_fraction=TRAIN_FRACTION,
            window_queries=window,
            warmup_queries=warmup,
        )
        rows.append({"drift_rotation_per_epoch": rate, **report.to_dict()})
    return {"window_queries": window, "warmup_queries": warmup, "rows": rows}


def _lifecycle_section(num_queries: int, num_vectors: int) -> Dict[str, object]:
    """Stale vs online-repartitioned serving under moderate drift.

    Measured at the middle drift rate, where retraining pays: at extreme
    rates the trailing window itself spans several rotations, so even a
    fresh placement is trained on a moving target (the drift section's
    fastest arm shows the decay; this section shows the recovery).
    """
    config = _store_config(num_vectors)
    window = max(1, num_queries // 24)
    warmup = max(1, num_queries // 12)
    cadence = max(1, num_queries // 6)
    rate = DRIFT_RATES[1]
    trace = generate_scenario_trace(
        _scenario("drift", num_queries, num_vectors, drift_rotation_per_epoch=rate)
    )
    common = dict(
        config=config,
        train_fraction=TRAIN_FRACTION,
        window_queries=window,
        warmup_queries=warmup,
    )
    stale = run_workload_scenario(trace, **common)  # type: ignore[arg-type]
    repartition = RepartitionConfig(
        cadence_queries=cadence,
        window_queries=2 * cadence,
        min_window_queries=cadence,
        shp_iterations=8,
    )
    repaired = run_workload_scenario(trace, repartition=repartition, **common)  # type: ignore[arg-type]
    lost = stale.early_hit_rate - stale.late_hit_rate
    recovered = (
        (repaired.late_hit_rate - stale.late_hit_rate) / lost if lost > 0 else 0.0
    )
    return {
        "drift_rotation_per_epoch": rate,
        "cadence_queries": cadence,
        "stale": stale.to_dict(),
        "repartitioned": repaired.to_dict(),
        "recovered_fraction": round(recovered, 4),
    }


def _flash_section(
    num_queries: int, num_vectors: int, serving_requests: int
) -> Dict[str, object]:
    """Flash-crowd p999 vs a no-flash control, near device saturation."""
    config = _store_config(num_vectors)
    serving = ServingConfig(arrival_rate_rps=3000.0, seed=SERVING_SEED)
    arms: Dict[str, object] = {}
    for name, share in (("flash", 0.8), ("control", 0.0)):
        scenario = _scenario(
            "flash-crowd",
            num_queries,
            num_vectors,
            # Sized to overflow the DRAM cache: the crowd keeps missing for
            # the whole flash window instead of being absorbed by the LRU.
            flash_crowd_ids=num_vectors // 4,
            flash_traffic_share=share,
        )
        trace = generate_scenario_trace(scenario)
        train, evaluation = trace.split(TRAIN_FRACTION)
        store = BandanaStore.build(ModelTrace({"scenario": train}), config)
        report = simulate_serving(
            store,
            ModelTrace({"scenario": evaluation}),
            serving,
            num_requests=serving_requests,
        )
        arms[name] = {
            "num_requests": report.num_requests,
            "hit_rate": round(report.hit_rate, 6),
            "p50_us": round(report.latency.p50_us, 2),
            "p99_us": round(report.latency.p99_us, 2),
            "p999_us": round(report.latency.p999_us, 2),
            "slo_violations": report.slo_violations,
            "throughput_rps": round(report.throughput_rps, 2),
        }
    flash, control = arms["flash"], arms["control"]
    arms["p999_excess_us"] = round(
        float(flash["p999_us"]) - float(control["p999_us"]), 2  # type: ignore[index]
    )
    arms["arrival_rate_rps"] = serving.arrival_rate_rps
    return arms


def _loader_section() -> Dict[str, object]:
    """The committed sample traces, characterised against paper Table 1."""
    out: Dict[str, object] = {}
    for name, (path, fmt) in FIXTURES.items():
        loaded = load_trace(TraceLoaderConfig(path=path, format=fmt))
        out[name] = characterization_report(loaded, name=f"sample-{name}")
    return out


def run_suite(
    num_queries: int, num_vectors: int, serving_requests: int
) -> Dict[str, object]:
    return {
        "num_queries": num_queries,
        "num_vectors": num_vectors,
        "train_fraction": round(TRAIN_FRACTION, 6),
        "drift_rates": list(DRIFT_RATES),
        "drift": _drift_section(num_queries, num_vectors),
        "lifecycle": _lifecycle_section(num_queries, num_vectors),
        "flash": _flash_section(num_queries, num_vectors, serving_requests),
        "loader": _loader_section(),
    }


def measure_wall_clock(num_queries: int = 2400, num_vectors: int = 4096) -> Dict[str, object]:
    """Loose perf-tracking reference: wall-clock of one stale drift replay."""
    trace = generate_scenario_trace(
        _scenario("drift", num_queries, num_vectors, drift_rotation_per_epoch=0.05)
    )
    config = _store_config(num_vectors)
    start = time.perf_counter()
    report = run_workload_scenario(
        trace, config=config, train_fraction=TRAIN_FRACTION, window_queries=100
    )
    elapsed = time.perf_counter() - start
    lookups = int(
        sum(len(q) for q in trace.queries[len(trace.queries) // 3 :])
    )
    return {
        "num_queries": num_queries,
        "eval_lookups": lookups,
        "overall_hit_rate": round(report.overall_hit_rate, 6),
        "elapsed_s": round(elapsed, 4),
        "queries_per_sec": round(report.num_eval_queries / elapsed, 1),
    }


def _format(result: Dict[str, object]) -> str:
    suite = result["smoke_reference"] if result["smoke"] else result["full"]
    assert isinstance(suite, dict)
    lines = [
        f"adversarial workload study ({suite['num_queries']} queries, "
        f"{suite['num_vectors']} vectors, train fraction "
        f"{suite['train_fraction']:.2f})"
    ]
    rows = []
    for row in suite["drift"]["rows"]:
        rows.append(
            [
                f"{row['drift_rotation_per_epoch']:.2f}",
                f"{row['early_hit_rate']:.3f}",
                f"{row['late_hit_rate']:.3f}",
                f"{row['hit_rate_decay']:.3f}",
                f"{row['overall_hit_rate']:.3f}",
            ]
        )
    lines.append("drift decay (stale SHP placement):")
    lines.append(
        format_table(["rotation/epoch", "early", "late", "decay", "overall"], rows)
    )
    lc = suite["lifecycle"]
    lines.append(
        f"lifecycle at rotation {lc['drift_rotation_per_epoch']:.2f} "
        f"(retrain every {lc['cadence_queries']} queries): "
        f"stale late {lc['stale']['late_hit_rate']:.3f} -> repartitioned late "
        f"{lc['repartitioned']['late_hit_rate']:.3f} "
        f"(recovered {100 * lc['recovered_fraction']:.0f}% of the decay, "
        f"{lc['repartitioned']['repartition']['retrains']} retrains)"
    )
    fl = suite["flash"]
    lines.append(
        f"flash crowd at {fl['arrival_rate_rps']:,.0f} rps: "
        f"p999 {fl['flash']['p999_us']:,.0f} us vs control "
        f"{fl['control']['p999_us']:,.0f} us "
        f"(excess {fl['p999_excess_us']:,.0f} us); hit rate "
        f"{fl['flash']['hit_rate']:.3f} vs {fl['control']['hit_rate']:.3f}"
    )
    for name, report in suite["loader"].items():
        measured = report["measured"]
        lines.append(
            f"loader [{name}]: {measured['num_queries']} queries, "
            f"{measured['num_vectors']} ids, "
            f"{measured['avg_lookups_per_query']:.2f} lookups/query, "
            f"compulsory miss rate {measured['compulsory_miss_rate']:.4f} "
            f"({measured['dropped_rows']}/{measured['source_rows']} rows dropped)"
        )
    return "\n".join(lines)


def _write_outputs(result: Dict[str, object], smoke: bool) -> None:
    if smoke:
        print(_format(result))
    else:
        save_result("scenarios", _format(result))
    with open(JSON_PATH, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    result: Dict[str, object] = {
        "smoke": smoke,
        "smoke_reference": run_suite(**SMOKE_PARAMS),
    }
    if not smoke:
        result["full"] = run_suite(**FULL_PARAMS)
        result["wall_clock"] = measure_wall_clock()
    _write_outputs(result, smoke)
