"""Tracing-overhead smoke: a disabled tracer must cost (almost) nothing.

:mod:`repro.tracing` instruments every hot serving path — the single-host
batch loop and the cluster fan-out — behind ``if tracer.enabled:`` guards on
the shared :data:`~repro.tracing.NULL_TRACER` singleton.  The contract that
makes tracing safe to ship always-on-able is twofold, and this harness
checks both on the CI-sized ``bench_serving_latency`` configuration (two
tables, a short request stream):

* **Disabled tracing is free.**  The only residual cost on the disabled
  path is the guard itself: one attribute read per instrumentation site.
  The harness micro-times the guard, multiplies by a deliberately generous
  bound on guard evaluations per run, and asserts the product stays under
  ``MAX_DISABLED_OVERHEAD`` of the measured run time.  Wall-clock A/B
  timing cannot resolve a sub-percent delta on a seconds-long run in CI
  noise; the guard product is deterministic and strictly pessimistic.
* **Tracing is observational.**  The enabled run's ``ServingReport`` must
  match the disabled run's field for field (latency percentiles, hit rates,
  queue depths) with only the ``trace`` payload differing — the simulated
  clock never sees the tracer.

The enabled run's wall-clock cost relative to the disabled run is printed
as information (it is dominated by span bookkeeping and is allowed to be
noticeable; nobody enables per-request tracing for free), but only the
disabled-path bound and the report equality are asserted, so the smoke is
CI-stable.  Run directly (``python benchmarks/bench_tracing_overhead.py``);
``--smoke`` is accepted for CI-invocation symmetry and selects the same
configuration.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import time

from bench_serving_latency import (
    MAX_BATCH,
    MAX_LINGER_US,
    SLO_LATENCY_US,
    TABLES,
    WARMUP_FRACTION,
    build_store,
    warm_store,
)
from repro.core.config import ServingConfig, TracingConfig
from repro.serving import simulate_serving
from repro.tracing import NULL_TRACER

#: CI-sized configuration: the bench_serving_latency --smoke shape.
SMOKE_TABLES = TABLES[:2]
NUM_REQUESTS = 200
ARRIVAL_RATE_RPS = 4000.0
#: Asserted ceiling on the disabled-tracer overhead ("under a few percent").
MAX_DISABLED_OVERHEAD = 0.03
#: Guard evaluations per request, deliberately over-counted: the single-host
#: loop takes a handful of ``tracer.enabled`` reads per request; 64 bounds
#: any plausible future instrumentation density.
GUARDS_PER_REQUEST = 64
TIMING_REPS = 3


def _guard_cost_s(iterations: int = 1_000_000) -> float:
    """Measured wall-clock cost of one ``tracer.enabled`` guard read."""
    tracer = NULL_TRACER
    acc = 0
    start = time.perf_counter()
    for _ in range(iterations):
        if tracer.enabled:
            acc += 1
    elapsed = time.perf_counter() - start
    assert acc == 0, "NULL_TRACER must report enabled=False"
    return elapsed / iterations


def _timed_run(store, warm_trace, serve_trace, tracing):
    """One warmed serving run; returns (report, wall_seconds)."""
    warm_store(store, warm_trace)
    config = ServingConfig(
        arrival_rate_rps=ARRIVAL_RATE_RPS,
        max_batch_requests=MAX_BATCH,
        max_linger_us=MAX_LINGER_US,
        slo_latency_us=SLO_LATENCY_US,
        seed=13,
    )
    start = time.perf_counter()
    report = simulate_serving(
        store,
        serve_trace,
        config,
        num_requests=NUM_REQUESTS,
        reset_first=False,
        tracing=tracing,
    )
    return report, time.perf_counter() - start


def run_check():
    store, eval_trace = build_store(SMOKE_TABLES, eval_multiplier=1)
    warm_trace, serve_trace = eval_trace.split(WARMUP_FRACTION)

    disabled_s = float("inf")
    disabled_report = None
    for _ in range(TIMING_REPS):
        report, elapsed = _timed_run(store, warm_trace, serve_trace, tracing=None)
        disabled_s = min(disabled_s, elapsed)
        if disabled_report is None:
            disabled_report = report
        elif report.to_dict() != disabled_report.to_dict():
            raise AssertionError("disabled-tracer runs are not deterministic")

    enabled_s = float("inf")
    enabled_report = None
    for _ in range(TIMING_REPS):
        report, elapsed = _timed_run(
            store,
            warm_trace,
            serve_trace,
            tracing=TracingConfig(enabled=True),
        )
        enabled_s = min(enabled_s, elapsed)
        enabled_report = report

    disabled_dict = disabled_report.to_dict()
    enabled_dict = enabled_report.to_dict()
    trace = enabled_dict.pop("trace")
    disabled_dict.pop("trace")
    if enabled_dict != disabled_dict:
        diff = {
            key
            for key in set(enabled_dict) | set(disabled_dict)
            if enabled_dict.get(key) != disabled_dict.get(key)
        }
        raise AssertionError(
            f"tracing changed the report (not observational): {sorted(diff)}"
        )
    counters = trace["counters"]
    served = disabled_dict["num_requests"]
    if counters["requests_started"] != served:
        raise AssertionError(
            f"tracer saw {counters['requests_started']} requests, "
            f"expected {served}"
        )

    guard_s = _guard_cost_s()
    overhead = guard_s * GUARDS_PER_REQUEST * served / disabled_s
    print(
        f"tracing overhead smoke ({'+'.join(SMOKE_TABLES)}, "
        f"{served} requests at {ARRIVAL_RATE_RPS:.0f} rps)"
    )
    print(
        f"  disabled run: {disabled_s * 1e3:.1f} ms  "
        f"(guard {guard_s * 1e9:.1f} ns x {GUARDS_PER_REQUEST}/request "
        f"-> bound {100 * overhead:.3f}% of run time)"
    )
    print(
        f"  enabled run:  {enabled_s * 1e3:.1f} ms  "
        f"({enabled_s / disabled_s:.2f}x disabled; "
        f"{counters['spans_recorded']} spans over "
        f"{counters['requests_retained']} retained traces)"
    )
    print("  enabled/disabled reports identical outside the trace payload")
    if overhead >= MAX_DISABLED_OVERHEAD:
        raise AssertionError(
            f"disabled-tracer overhead bound {100 * overhead:.2f}% exceeds "
            f"{100 * MAX_DISABLED_OVERHEAD:.0f}%"
        )
    print(
        f"  disabled-tracer overhead bound {100 * overhead:.3f}% "
        f"< {100 * MAX_DISABLED_OVERHEAD:.0f}% ceiling: OK"
    )


if __name__ == "__main__":
    # --smoke accepted for CI symmetry; the harness is already CI-sized.
    run_check()
