"""Session-scoped fixtures shared by all benchmark harnesses."""

from __future__ import annotations

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import numpy as np
import pytest

from benchmarks.common import BENCH_SCALE, build_bundle

# The per-table figures of the paper focus on the tables with the most
# lookups; the end-to-end figures use all eight.
ALL_TABLES = [f"table{i}" for i in range(1, 9)]
TOP_TABLES = ["table1", "table2", "table6", "table7"]


@pytest.fixture(scope="session")
def bundle():
    """Traces, access counts and SHP layouts for all eight (scaled) tables."""
    return build_bundle(scale=BENCH_SCALE, names=ALL_TABLES, seed=100)


@pytest.fixture(scope="session")
def table2(bundle):
    """The table the paper uses for its per-table cache-policy studies."""
    return bundle["table2"]


@pytest.fixture(scope="session")
def embedding_values(bundle):
    """Synthetic embedding values (topic-correlated geometry) per table.

    Built lazily only for the tables the K-means benchmarks need.
    """
    from repro.embeddings import EmbeddingTable, synthesize_topic_vectors

    cache = {}

    def build(name: str, dim: int = 32) -> EmbeddingTable:
        if name not in cache:
            workload = bundle[name]
            values = synthesize_topic_vectors(
                workload.generator.topic_of(), dim=dim, noise=0.45, seed=7,
                dtype=np.float16,
            )
            cache[name] = EmbeddingTable(
                name, workload.spec.num_vectors, dim=dim, dtype=np.float16, values=values
            )
        return cache[name]

    return build
