"""Figure 2 — NVM latency and bandwidth versus queue depth (4 KB random reads).

The paper measures a 375 GB NVM block device with fio: mean/P99 latency grow
with queue depth while bandwidth saturates around 2.3 GB/s.  This benchmark
prints the same series from the calibrated device model.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import save_result
from repro.nvm.latency import NVMLatencyModel
from repro.simulation.report import format_table

QUEUE_DEPTHS = [1, 2, 4, 8]


def run_figure2() -> str:
    model = NVMLatencyModel()
    rows = []
    for depth in QUEUE_DEPTHS:
        rows.append(
            [
                depth,
                f"{model.mean_latency_us(depth):.1f}",
                f"{model.p99_latency_us(depth):.1f}",
                f"{model.bandwidth_gbps(depth):.2f}",
            ]
        )
    return format_table(
        ["queue depth", "mean latency (us)", "p99 latency (us)", "bandwidth (GB/s)"], rows
    )


def test_fig02_nvm_device(benchmark):
    table = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    save_result("fig02_nvm_device", table)
    model = NVMLatencyModel()
    # Shape checks mirroring the paper: latency rises, bandwidth saturates
    # towards the device's ~2.3 GB/s limit.
    assert model.mean_latency_us(8) > model.mean_latency_us(1)
    assert 1.8 < model.bandwidth_gbps(8) <= 2.3
    assert model.bandwidth_gbps(8) > 1.5 * model.bandwidth_gbps(1)
