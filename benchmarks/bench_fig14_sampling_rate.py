"""Figure 14 — end-to-end effective bandwidth versus miniature-cache sampling rate.

The per-table admission thresholds are tuned with miniature caches at several
sampling rates and compared against the full-cache oracle: the sampled tuner
should track the oracle closely even at aggressive down-sampling.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import save_result
from repro.caching.miniature import MiniatureCacheTuner
from repro.caching.policies import AccessThresholdPolicy
from repro.caching.replay import effective_bandwidth_increase, replay_table_cache
from repro.caching.policies import NoPrefetchPolicy
from repro.simulation.experiment import ExperimentSweep

from benchmarks.common import cache_sizes_for, threshold_candidates

TABLES = ["table1", "table2", "table6", "table7"]
SAMPLING_RATES = [1.0, 0.25, 0.1, 0.05]


def run_figure14(bundle):
    sweep = ExperimentSweep(
        "figure14", "per-table gain with thresholds tuned at different sampling rates"
    )
    gains = {}
    for name in TABLES:
        workload = bundle[name]
        cache_size = cache_sizes_for(workload, fractions=(0.6,))[0]
        thresholds = threshold_candidates(workload)
        baseline = replay_table_cache(
            workload.evaluation.queries,
            workload.shp_layout,
            NoPrefetchPolicy(),
            cache_size=cache_size,
        )
        for rate in SAMPLING_RATES:
            tuner = MiniatureCacheTuner(sampling_rate=rate, seed=9, thresholds=thresholds)
            selection = tuner.select_threshold(
                workload.evaluation, workload.shp_layout, workload.access_counts, cache_size
            )
            stats = replay_table_cache(
                workload.evaluation.queries,
                workload.shp_layout,
                AccessThresholdPolicy(workload.access_counts, selection.threshold),
                cache_size=cache_size,
            )
            gain = effective_bandwidth_increase(baseline, stats)
            gains[(name, rate)] = gain
            sweep.add(
                {"table": name, "sampling_rate": rate, "threshold": selection.threshold},
                {"bw_increase": gain},
            )
    return sweep, gains


def test_fig14_sampling_rate(bundle, benchmark):
    sweep, gains = benchmark.pedantic(run_figure14, args=(bundle,), rounds=1, iterations=1)
    save_result("fig14_sampling_rate", sweep.to_table())
    # Sampled tuning must stay close to the full-cache oracle for every table.
    for name in TABLES:
        oracle = gains[(name, 1.0)]
        for rate in SAMPLING_RATES[1:]:
            assert gains[(name, rate)] >= oracle - 0.35
