"""Shared-device accounting study: what co-hosting tables on one NVM costs.

The device-layer counterpart of the serving-latency sweep: a two-table
Bandana store is replayed through the event-driven front-end under the three
device accounting modes of :class:`repro.core.config.DeviceBankConfig` —

* ``per-table`` — every table owns a private device, the older per-table
  accounting made explicit (reads of different tables never queue on each
  other);
* ``shared`` with ``devices_per_host=1`` — both tables pinned to the same
  physical device, the paper's actual single-host deployment, where one
  table's miss burst inflates the *other* table's tail;
* ``shared`` with ``devices_per_host=2`` — the equivalence check: with as
  many devices as tables, round-robin pinning reproduces per-table numbers
  exactly.

Three sections land in the artifact:

1. **Contention sweep** — arrival rates below and past device saturation,
   per-table vs shared accounting at each point; the shared column's p999
   excess over per-table is the cross-table contention that per-table
   accounting cannot produce.  The per-mode *capacity* (highest swept rate
   whose SLO-violation rate stays under 1%) summarises the sweep.
2. **Open vs closed loop** — the same store at matched offered load: an
   open-loop Poisson source vs a fixed client population
   (``closed-loop`` arrivals) whose ``clients / think`` equals the Poisson
   rate.  The closed loop's concurrency cap turns queueing blow-up into
   throughput plateau: past saturation, open-loop p999 explodes while the
   closed loop degrades gently — both measured here.
3. **Admission shedding** — an overloaded shared-device run at several
   ``admission_queue_slack`` settings; the counters show load shedding
   trading completed work (``requests_shed``) for a bounded served tail.

Results are printed, persisted under ``benchmarks/results/`` and written as
JSON to ``BENCH_shared_device.json`` at the repository root.  The artifact
always carries a ``smoke_reference`` section computed at the CI-sized
configuration: the simulation is a deterministic function of (store, trace,
config, seed), so ``benchmarks/perf_track.py`` can regenerate it on any
runner and compare numbers with tight tolerances.  A full (non ``--smoke``)
run adds the full-sized ``sections`` on top and a wall-clock replay
throughput measurement used as the loose (noise-tolerant) perf-tracking
reference.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from benchmarks.common import build_table_workload, save_result
from repro.core.bandana import BandanaStore
from repro.core.config import BandanaConfig, DeviceBankConfig, ServingConfig
from repro.nvm.latency import NVMLatencyModel
from repro.serving import simulate_serving
from repro.simulation import simulate_store
from repro.simulation.report import format_table
from repro.workloads import scaled_table_specs
from repro.workloads.trace import ModelTrace

#: Two tables with asymmetric traffic (table1 is the heavy hitter): the
#: co-hosting story needs one table's load to spill into the other's tail.
TABLES = ["table1", "table7"]
#: Fraction of the evaluation trace replayed untimed to warm the caches.
WARMUP_FRACTION = 0.3
MAX_BATCH = 16
MAX_LINGER_US = 300.0
SLO_LATENCY_US = 2000.0
#: Arrival rates of the contention sweep, as fractions of the analytic
#: device-saturation rate; the top point is past the knee on purpose.
LOAD_FRACTIONS = (0.1, 0.25, 0.5, 0.9, 1.2)
#: SLO-violation rate a load point must stay under to count as capacity.
CAPACITY_VIOLATION_RATE = 0.01
#: Client population of the closed-loop arm (think time derived per rate).
CLOSED_LOOP_CLIENTS = 32
#: Slack settings of the shedding section (None = shedding off).
SHED_SLACKS = (None, 1.0, 0.25)
#: Overload multiple of the saturation rate for the shedding section.
SHED_OVERLOAD = 2.0

#: The CI-sized configuration behind the artifact's ``smoke_reference``
#: section — also what ``perf_track.py`` regenerates and compares against.
SMOKE_PARAMS = dict(eval_multiplier=3, num_requests=900)
FULL_PARAMS = dict(eval_multiplier=24, num_requests=8000)

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_shared_device.json")

MODES = {
    "per-table": DeviceBankConfig(accounting="per-table"),
    "shared-1": DeviceBankConfig(accounting="shared", devices_per_host=1),
    "shared-2": DeviceBankConfig(accounting="shared", devices_per_host=2),
}


def build_store(tables: List[str], eval_multiplier: int) -> Tuple[BandanaStore, ModelTrace]:
    """A tuned two-table store plus a steady-state evaluation trace."""
    specs = scaled_table_specs(1.0 / 1000.0, names=tables)
    workloads = {
        name: build_table_workload(spec, seed=100 + i, shp_iterations=8)
        for i, (name, spec) in enumerate(specs.items())
    }
    eval_trace = ModelTrace(
        {
            name: workload.generator.generate_lookups(
                eval_multiplier * workload.evaluation.num_lookups
            )
            for name, workload in workloads.items()
        }
    )
    working_set = sum(
        trace.unique_vectors().size for trace in eval_trace.tables.values()
    )
    train_trace = ModelTrace({name: w.train for name, w in workloads.items()})
    store = BandanaStore.build(
        train_trace,
        BandanaConfig(
            total_cache_vectors=max(1, int(working_set * 0.5)),
            partitioner="shp",
            shp_iterations=8,
            tune_thresholds=False,
            seed=7,
        ),
    )
    return store, eval_trace


def warm_store(store: BandanaStore, warm_trace: ModelTrace) -> None:
    """Cold-reset the store, then replay the warm-up prefix untimed."""
    simulate_store(store, warm_trace, include_baseline=False)


def saturation_rate_rps(
    store: BandanaStore, warm_trace: ModelTrace, serve_trace: ModelTrace
) -> float:
    """Arrival rate at which steady demand misses saturate one device."""
    warm_store(store, warm_trace)
    before = store.aggregate_stats().misses
    simulate_store(store, serve_trace, include_baseline=False, reset_first=False)
    blocks = store.aggregate_stats().misses - before
    num_requests = max(len(trace) for trace in serve_trace.tables.values())
    blocks_per_request = blocks / num_requests
    model = NVMLatencyModel(block_bytes=store.config.block_bytes)
    return model.blocks_per_second(store.config.queue_depth) / blocks_per_request


def _serve(store, serve_trace, warm_trace, config, num_requests):
    warm_store(store, warm_trace)
    return simulate_serving(
        store, serve_trace, config=config, num_requests=num_requests, reset_first=False
    )


def _summarise(report) -> Dict[str, object]:
    """The fields the artifact (and perf tracking) keeps per run."""
    summary: Dict[str, object] = {
        "p50_us": round(report.latency.p50_us, 3),
        "p99_us": round(report.latency.p99_us, 3),
        "p999_us": round(report.latency.p999_us, 3),
        "mean_us": round(report.latency.mean_us, 3),
        "throughput_rps": round(report.throughput_rps, 3),
        "offered_rate_rps": round(report.offered_rate_rps, 3),
        "slo_violation_rate": round(report.slo_violation_rate, 6),
        "blocks_read": report.blocks_read,
        "requests_shed": report.requests_shed,
        "shed_rate": round(report.shed_rate, 6),
        "unsupported_percentiles": report.latency.unsupported_percentiles(),
    }
    if report.device_bank is not None:
        summary["device_busy_us"] = [
            round(device["busy_us"], 1)
            for device in report.device_bank["per_device"]
        ]
        summary["table_mapping"] = report.device_bank["table_mapping"]
    return summary


def contention_sweep(store, warm_trace, serve_trace, sat_rps, num_requests):
    """Section 1: per-table vs shared accounting across the load sweep."""
    points = []
    for fraction in LOAD_FRACTIONS:
        rate = fraction * sat_rps
        point: Dict[str, object] = {
            "load_fraction": fraction,
            "arrival_rate_rps": round(rate, 1),
        }
        for mode, device in MODES.items():
            report = _serve(
                store,
                serve_trace,
                warm_trace,
                ServingConfig(
                    arrival_rate_rps=rate,
                    max_batch_requests=MAX_BATCH,
                    max_linger_us=MAX_LINGER_US,
                    slo_latency_us=SLO_LATENCY_US,
                    seed=13,
                    device=device,
                ),
                num_requests,
            )
            point[mode] = _summarise(report)
        shared = point["shared-1"]
        per_table = point["per-table"]
        point["shared_p999_excess"] = round(
            shared["p999_us"] / per_table["p999_us"], 3
        )
        points.append(point)
    capacity = {}
    for mode in MODES:
        ok = [
            p["arrival_rate_rps"]
            for p in points
            if p[mode]["slo_violation_rate"] <= CAPACITY_VIOLATION_RATE
        ]
        capacity[mode] = max(ok) if ok else 0.0
    return {"points": points, "capacity_rps": capacity}


def loop_comparison(store, warm_trace, serve_trace, sat_rps, num_requests):
    """Section 2: open vs closed loop at matched offered load."""
    arms = []
    for fraction in (0.8, 1.5):
        rate = fraction * sat_rps
        open_report = _serve(
            store,
            serve_trace,
            warm_trace,
            ServingConfig(
                arrival_rate_rps=rate,
                max_batch_requests=MAX_BATCH,
                max_linger_us=MAX_LINGER_US,
                slo_latency_us=SLO_LATENCY_US,
                seed=13,
                device=MODES["shared-1"],
            ),
            num_requests,
        )
        closed_report = _serve(
            store,
            serve_trace,
            warm_trace,
            ServingConfig(
                arrival_process="closed-loop",
                closed_loop_clients=CLOSED_LOOP_CLIENTS,
                closed_loop_think_s=CLOSED_LOOP_CLIENTS / rate,
                max_batch_requests=MAX_BATCH,
                max_linger_us=MAX_LINGER_US,
                slo_latency_us=SLO_LATENCY_US,
                seed=13,
                device=MODES["shared-1"],
            ),
            num_requests,
        )
        arms.append(
            {
                "load_fraction": fraction,
                "offered_rate_rps": round(rate, 1),
                "closed_loop_clients": CLOSED_LOOP_CLIENTS,
                "open": _summarise(open_report),
                "closed": _summarise(closed_report),
            }
        )
    return {"arms": arms}


def shedding_study(store, warm_trace, serve_trace, sat_rps, num_requests):
    """Section 3: admission control under a shared device at overload."""
    rate = SHED_OVERLOAD * sat_rps
    rows = []
    for slack in SHED_SLACKS:
        report = _serve(
            store,
            serve_trace,
            warm_trace,
            ServingConfig(
                arrival_rate_rps=rate,
                max_batch_requests=MAX_BATCH,
                max_linger_us=MAX_LINGER_US,
                slo_latency_us=SLO_LATENCY_US,
                seed=13,
                device=MODES["shared-1"],
                admission_queue_slack=slack,
            ),
            num_requests,
        )
        rows.append({"admission_queue_slack": slack, **_summarise(report)})
    return {"arrival_rate_rps": round(rate, 1), "rows": rows}


def run_suite(eval_multiplier: int, num_requests: int) -> Dict[str, object]:
    """All three sections at one workload size (deterministic in the seed)."""
    store, eval_trace = build_store(TABLES, eval_multiplier)
    warm_trace, serve_trace = eval_trace.split(WARMUP_FRACTION)
    sat_rps = saturation_rate_rps(store, warm_trace, serve_trace)
    return {
        "tables": list(TABLES),
        "eval_multiplier": eval_multiplier,
        "num_requests": num_requests,
        "saturation_rate_rps": round(sat_rps, 1),
        "slo_latency_us": SLO_LATENCY_US,
        "contention": contention_sweep(
            store, warm_trace, serve_trace, sat_rps, num_requests
        ),
        "loop": loop_comparison(store, warm_trace, serve_trace, sat_rps, num_requests),
        "shedding": shedding_study(
            store, warm_trace, serve_trace, sat_rps, num_requests
        ),
    }


def measure_wall_clock(eval_multiplier: int = 3) -> Dict[str, object]:
    """Wall-clock replay throughput of the suite's store (perf-track leg 2).

    Unlike everything else in this benchmark this number is machine-
    dependent; ``perf_track.py`` compares it with a loose ratio floor,
    tolerant of noisy runners but loud on order-of-magnitude regressions.
    """
    store, eval_trace = build_store(TABLES, eval_multiplier)
    simulate_store(store, eval_trace, include_baseline=False)  # warm, untimed
    started = time.perf_counter()
    result = simulate_store(
        store, eval_trace, include_baseline=False, reset_first=False
    )
    elapsed = time.perf_counter() - started
    lookups = sum(r.stats.lookups for r in result.per_table.values())
    return {
        "eval_multiplier": eval_multiplier,
        "lookups": int(lookups),
        "elapsed_s": round(elapsed, 4),
        "lookups_per_sec": round(lookups / elapsed, 1),
    }


def _pctl(summary: Dict[str, object], field: str) -> str:
    flag = "*" if field in summary.get("unsupported_percentiles", ()) else ""
    return f"{summary[field]:,.0f}{flag}"


def _format(result: Dict[str, object]) -> str:
    suite = result["smoke_reference"] if result["smoke"] else result["full"]
    lines = [
        f"shared-device study on {'+'.join(suite['tables'])} "
        f"({suite['num_requests']} requests/run, saturation "
        f"~{suite['saturation_rate_rps']:,.0f} rps)",
    ]
    headers = ["load", "mode", "p50 (us)", "p999 (us)", "tput (rps)", "SLO viol"]
    rows = []
    for point in suite["contention"]["points"]:
        for mode in MODES:
            s = point[mode]
            rows.append(
                [
                    f"{point['load_fraction']:.2f}x",
                    mode,
                    _pctl(s, "p50_us"),
                    _pctl(s, "p999_us"),
                    f"{s['throughput_rps']:,.0f}",
                    f"{100 * s['slo_violation_rate']:.1f}%",
                ]
            )
    lines.append(format_table(headers, rows))
    capacity = suite["contention"]["capacity_rps"]
    lines.append(
        "capacity (highest swept rate with <=1% SLO violations): "
        + ", ".join(f"{mode} {rate:,.0f} rps" for mode, rate in capacity.items())
    )
    headers = ["load", "arm", "offered", "tput", "p999 (us)", "SLO viol"]
    rows = []
    for arm in suite["loop"]["arms"]:
        for name in ("open", "closed"):
            s = arm[name]
            rows.append(
                [
                    f"{arm['load_fraction']:.2f}x",
                    name,
                    f"{s['offered_rate_rps']:,.0f}",
                    f"{s['throughput_rps']:,.0f}",
                    _pctl(s, "p999_us"),
                    f"{100 * s['slo_violation_rate']:.1f}%",
                ]
            )
    lines.append(format_table(headers, rows))
    headers = ["slack", "shed", "shed rate", "p999 (us)", "tput (rps)"]
    rows = []
    for row in suite["shedding"]["rows"]:
        slack = row["admission_queue_slack"]
        rows.append(
            [
                "off" if slack is None else f"{slack:.2f}",
                row["requests_shed"],
                f"{100 * row['shed_rate']:.1f}%",
                _pctl(row, "p999_us"),
                f"{row['throughput_rps']:,.0f}",
            ]
        )
    lines.append(
        f"admission shedding at {suite['shedding']['arrival_rate_rps']:,.0f} rps "
        "(shared device):"
    )
    lines.append(format_table(headers, rows))
    if any(
        p[mode]["unsupported_percentiles"]
        for p in suite["contention"]["points"]
        for mode in MODES
    ):
        lines.append(
            "* percentile computed from fewer samples than its rank requires"
        )
    return "\n".join(lines)


def _write_outputs(result: Dict[str, object], smoke: bool) -> None:
    if smoke:
        print(_format(result))
    else:
        save_result("shared_device", _format(result))
    with open(JSON_PATH, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    result: Dict[str, object] = {
        "smoke": smoke,
        "smoke_reference": run_suite(**SMOKE_PARAMS),
    }
    if not smoke:
        result["full"] = run_suite(**FULL_PARAMS)
        result["wall_clock"] = measure_wall_clock()
    _write_outputs(result, smoke)
