"""Perf tracking: compare fresh benchmark numbers against the committed JSONs.

Run from the repository root (the CI perf-track job does)::

    python benchmarks/perf_track.py

Every tracked artifact gets one or both of two leg kinds, with deliberately
different tolerances:

1. **Simulated metrics (tight).**  The artifact carries a ``smoke_reference``
   section produced at the owning benchmark's CI-sized ``SMOKE_PARAMS``
   configuration.  Each suite is a deterministic function of
   (store, trace, config, seed) — no wall clock anywhere — so this leg
   regenerates the section and compares **every** recorded number with a 1%
   relative tolerance (platform float drift only; any real behaviour change
   lands far outside it).  A mismatch means a change altered simulated
   behaviour without regenerating the benchmark artifact: either a
   regression, or an intended change whose author must rerun the owning
   benchmark and commit the JSON.
2. **Wall-clock throughput (loose).**  The committed artifact records a
   throughput measured at commit time.  CI runners are noisy and slower than
   dev machines, so this leg only fails when fresh throughput drops below
   ``WALL_CLOCK_FLOOR`` (default 0.2x) of the committed number — tolerant
   of runner noise, loud on order-of-magnitude algorithmic regressions.
   Skipped (with a notice) when the artifact has no wall-clock section
   (i.e. only ``--smoke`` runs were committed).

Tracked artifacts:

* ``BENCH_shared_device.json`` — tight smoke reference + loose replay
  wall clock (:mod:`bench_shared_device`).
* ``BENCH_scenarios.json`` — tight smoke reference + loose scenario-replay
  wall clock (:mod:`bench_scenarios`).
* ``BENCH_serving_latency.json`` — tight smoke reference: the full load
  sweep at the CI-sized configuration (:mod:`bench_serving_latency`).
* ``BENCH_replay_throughput.json`` — loose only: the whole artifact is
  wall-clock timings, gated through its CI-sized ``smoke_wall_clock``
  section (:mod:`bench_replay_throughput`).

Exit status is non-zero on any regression, and every offending metric is
printed with its committed and fresh values.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import json
import math
import sys
from typing import Any, Callable, Dict, List, Optional

import bench_replay_throughput
import bench_scenarios
import bench_serving_latency
import bench_shared_device

#: Relative tolerance of the simulated leg (deterministic numbers).
SIM_RTOL = 0.01
#: Fresh wall-clock throughput must stay above this fraction of committed.
WALL_CLOCK_FLOOR = 0.2
#: Keys that hold measured wall-clock durations — the only non-simulated
#: numbers inside a ``smoke_reference`` section (e.g. the lifecycle's SHP
#: retrain cost).  The tight leg skips them; runner speed is not behaviour.
WALL_CLOCK_KEYS = frozenset({"retrain_runtime_seconds"})


def compare_trees(committed: Any, fresh: Any, path: str, problems: List[str]) -> None:
    """Recursively compare two JSON trees, recording every numeric drift."""
    if isinstance(committed, dict) and isinstance(fresh, dict):
        for key in sorted(set(committed) | set(fresh)):
            if key in WALL_CLOCK_KEYS:
                continue
            if key not in committed or key not in fresh:
                problems.append(f"{path}.{key}: present on only one side")
                continue
            compare_trees(committed[key], fresh[key], f"{path}.{key}", problems)
    elif isinstance(committed, list) and isinstance(fresh, list):
        if len(committed) != len(fresh):
            problems.append(
                f"{path}: length {len(committed)} (committed) vs {len(fresh)} (fresh)"
            )
            return
        for i, (a, b) in enumerate(zip(committed, fresh)):
            compare_trees(a, b, f"{path}[{i}]", problems)
    elif isinstance(committed, bool) or isinstance(fresh, bool):
        if committed != fresh:
            problems.append(f"{path}: {committed} (committed) vs {fresh} (fresh)")
    elif isinstance(committed, (int, float)) and isinstance(fresh, (int, float)):
        if not math.isclose(committed, fresh, rel_tol=SIM_RTOL, abs_tol=1e-9):
            problems.append(f"{path}: {committed} (committed) vs {fresh} (fresh)")
    elif committed != fresh:
        problems.append(f"{path}: {committed!r} (committed) vs {fresh!r} (fresh)")


def check_simulated(
    artifact: str,
    committed: Dict[str, Any],
    regenerate: Callable[[], Dict[str, Any]],
    rerun_hint: str,
) -> List[str]:
    """Tight leg: the deterministic smoke-reference numbers must reproduce."""
    reference = committed.get("smoke_reference")
    if reference is None:
        return [f"{artifact} has no smoke_reference section; rerun {rerun_hint}"]
    fresh = regenerate()
    problems: List[str] = []
    compare_trees(reference, fresh, f"{artifact}:smoke_reference", problems)
    return problems


def check_wall_clock(
    artifact: str,
    committed: Optional[Dict[str, Any]],
    measure: Callable[[], Dict[str, Any]],
    rate_key: str,
) -> List[str]:
    """Loose leg: a wall-clock throughput must stay within a ratio floor."""
    if committed is None:
        print(
            f"perf-track: {artifact} has no wall-clock section "
            "(smoke-only run committed); skipping its wall-clock leg"
        )
        return []
    fresh = measure()
    committed_rate = float(committed[rate_key])
    fresh_rate = float(fresh[rate_key])
    ratio = fresh_rate / committed_rate
    print(
        f"perf-track: {artifact} {rate_key} {fresh_rate:,.0f} fresh vs "
        f"{committed_rate:,.0f} committed ({ratio:.2f}x, floor "
        f"{WALL_CLOCK_FLOOR:.2f}x)"
    )
    if ratio < WALL_CLOCK_FLOOR:
        return [
            f"{artifact}:{rate_key}: {fresh_rate:,.0f} fresh is below "
            f"{WALL_CLOCK_FLOOR:.2f}x of the committed {committed_rate:,.0f} — "
            "an order-of-magnitude regression, not runner noise"
        ]
    return []


def _load(json_path: str, name: str, problems: List[str]) -> Optional[Dict[str, Any]]:
    try:
        with open(json_path) as handle:
            data = json.load(handle)
            assert isinstance(data, dict)
            return data
    except FileNotFoundError:
        problems.append(
            f"{name} is missing; run its benchmark and commit the artifact"
        )
        return None


def check_shared_device(problems: List[str]) -> None:
    committed = _load(
        bench_shared_device.JSON_PATH, "BENCH_shared_device.json", problems
    )
    if committed is None:
        return
    problems += check_simulated(
        "BENCH_shared_device.json",
        committed,
        lambda: bench_shared_device.run_suite(**bench_shared_device.SMOKE_PARAMS),
        "python benchmarks/bench_shared_device.py",
    )
    wall = committed.get("wall_clock")
    problems += check_wall_clock(
        "BENCH_shared_device.json",
        wall,
        lambda: bench_shared_device.measure_wall_clock(
            eval_multiplier=wall["eval_multiplier"]
        ),
        "lookups_per_sec",
    )


def check_scenarios(problems: List[str]) -> None:
    committed = _load(bench_scenarios.JSON_PATH, "BENCH_scenarios.json", problems)
    if committed is None:
        return
    problems += check_simulated(
        "BENCH_scenarios.json",
        committed,
        lambda: bench_scenarios.run_suite(**bench_scenarios.SMOKE_PARAMS),
        "python benchmarks/bench_scenarios.py",
    )
    wall = committed.get("wall_clock")
    problems += check_wall_clock(
        "BENCH_scenarios.json",
        wall,
        lambda: bench_scenarios.measure_wall_clock(
            num_queries=wall["num_queries"]
        ),
        "queries_per_sec",
    )


def check_serving_latency(problems: List[str]) -> None:
    committed = _load(
        bench_serving_latency.JSON_PATH, "BENCH_serving_latency.json", problems
    )
    if committed is None:
        return
    problems += check_simulated(
        "BENCH_serving_latency.json",
        committed,
        lambda: bench_serving_latency.run_sweep(**bench_serving_latency.SMOKE_PARAMS),
        "python benchmarks/bench_serving_latency.py",
    )


def check_replay_throughput(problems: List[str]) -> None:
    committed = _load(
        bench_replay_throughput.JSON_PATH, "BENCH_replay_throughput.json", problems
    )
    if committed is None:
        return
    problems += check_wall_clock(
        "BENCH_replay_throughput.json",
        committed.get("smoke_wall_clock"),
        bench_replay_throughput.measure_smoke_wall_clock,
        "batched_lookups_per_sec",
    )


def main() -> int:
    problems: List[str] = []
    check_shared_device(problems)
    check_scenarios(problems)
    check_serving_latency(problems)
    check_replay_throughput(problems)
    if problems:
        print(f"perf-track: {len(problems)} regression(s) against committed artifacts:")
        for problem in problems:
            print(f"  {problem}")
        print(
            "If this change is intentional, rerun the owning benchmark(s) "
            "and commit the regenerated JSON artifact(s)."
        )
        return 1
    print("perf-track: all tracked numbers match the committed artifacts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
