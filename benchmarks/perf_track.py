"""Perf tracking: compare fresh benchmark numbers against the committed JSON.

Run from the repository root (the CI perf-track job does)::

    python benchmarks/perf_track.py

Two legs, with deliberately different tolerances:

1. **Simulated metrics (tight).**  ``BENCH_shared_device.json`` carries a
   ``smoke_reference`` section produced at the CI-sized configuration
   (:data:`bench_shared_device.SMOKE_PARAMS`).  The serving simulation is a
   deterministic function of (store, trace, config, seed) — no wall clock
   anywhere — so this leg regenerates the section and compares **every**
   recorded number with a 1% relative tolerance (platform float drift only;
   any real behaviour change lands far outside it).  A mismatch means a
   change altered simulated behaviour without regenerating the benchmark
   artifact: either a regression, or an intended change whose author must
   rerun ``python benchmarks/bench_shared_device.py`` and commit the JSON.
2. **Wall-clock throughput (loose).**  The committed artifact records the
   replay throughput (``wall_clock.lookups_per_sec``) measured at
   commit time.  CI runners are noisy and slower than dev machines, so this
   leg only fails when fresh throughput drops below
   ``WALL_CLOCK_FLOOR`` (default 0.2×) of the committed number — tolerant
   of runner noise, loud on order-of-magnitude algorithmic regressions.
   Skipped (with a notice) when the artifact has no ``wall_clock`` section
   (i.e. only ``--smoke`` runs were committed).

Exit status is non-zero on any regression, and every offending metric is
printed with its committed and fresh values.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import json
import math
import sys
from typing import Any, List

from bench_shared_device import (
    JSON_PATH,
    SMOKE_PARAMS,
    measure_wall_clock,
    run_suite,
)

#: Relative tolerance of the simulated leg (deterministic numbers).
SIM_RTOL = 0.01
#: Fresh wall-clock throughput must stay above this fraction of committed.
WALL_CLOCK_FLOOR = 0.2


def compare_trees(committed: Any, fresh: Any, path: str, problems: List[str]) -> None:
    """Recursively compare two JSON trees, recording every numeric drift."""
    if isinstance(committed, dict) and isinstance(fresh, dict):
        for key in sorted(set(committed) | set(fresh)):
            if key not in committed or key not in fresh:
                problems.append(f"{path}.{key}: present on only one side")
                continue
            compare_trees(committed[key], fresh[key], f"{path}.{key}", problems)
    elif isinstance(committed, list) and isinstance(fresh, list):
        if len(committed) != len(fresh):
            problems.append(
                f"{path}: length {len(committed)} (committed) vs {len(fresh)} (fresh)"
            )
            return
        for i, (a, b) in enumerate(zip(committed, fresh)):
            compare_trees(a, b, f"{path}[{i}]", problems)
    elif isinstance(committed, bool) or isinstance(fresh, bool):
        if committed != fresh:
            problems.append(f"{path}: {committed} (committed) vs {fresh} (fresh)")
    elif isinstance(committed, (int, float)) and isinstance(fresh, (int, float)):
        if not math.isclose(committed, fresh, rel_tol=SIM_RTOL, abs_tol=1e-9):
            problems.append(f"{path}: {committed} (committed) vs {fresh} (fresh)")
    elif committed != fresh:
        problems.append(f"{path}: {committed!r} (committed) vs {fresh!r} (fresh)")


def check_simulated(committed: dict) -> List[str]:
    """Leg 1: the deterministic smoke-reference numbers must reproduce."""
    reference = committed.get("smoke_reference")
    if reference is None:
        return [
            "BENCH_shared_device.json has no smoke_reference section; "
            "rerun python benchmarks/bench_shared_device.py"
        ]
    fresh = run_suite(**SMOKE_PARAMS)
    problems: List[str] = []
    compare_trees(reference, fresh, "smoke_reference", problems)
    return problems


def check_wall_clock(committed: dict) -> List[str]:
    """Leg 2: replay throughput must stay within a loose ratio floor."""
    reference = committed.get("wall_clock")
    if reference is None:
        print(
            "perf-track: no wall_clock section in the committed artifact "
            "(smoke-only run committed); skipping the wall-clock leg"
        )
        return []
    fresh = measure_wall_clock(eval_multiplier=reference["eval_multiplier"])
    committed_rate = reference["lookups_per_sec"]
    fresh_rate = fresh["lookups_per_sec"]
    ratio = fresh_rate / committed_rate
    print(
        f"perf-track: replay throughput {fresh_rate:,.0f} lookups/s fresh vs "
        f"{committed_rate:,.0f} committed ({ratio:.2f}x, floor "
        f"{WALL_CLOCK_FLOOR:.2f}x)"
    )
    if ratio < WALL_CLOCK_FLOOR:
        return [
            f"wall_clock.lookups_per_sec: {fresh_rate:,.0f} fresh is below "
            f"{WALL_CLOCK_FLOOR:.2f}x of the committed {committed_rate:,.0f} — "
            "an order-of-magnitude replay regression, not runner noise"
        ]
    return []


def main() -> int:
    try:
        with open(JSON_PATH) as handle:
            committed = json.load(handle)
    except FileNotFoundError:
        print("perf-track: BENCH_shared_device.json is missing; run "
              "python benchmarks/bench_shared_device.py and commit the artifact")
        return 1
    problems = check_simulated(committed)
    problems += check_wall_clock(committed)
    if problems:
        print(f"perf-track: {len(problems)} regression(s) against committed artifacts:")
        for problem in problems:
            print(f"  {problem}")
        print(
            "If this change is intentional, rerun "
            "python benchmarks/bench_shared_device.py and commit the new JSON."
        )
        return 1
    print("perf-track: all tracked numbers match the committed artifacts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
