"""Table 2 — miniature-cache threshold selection versus the full-cache oracle.

For several cache sizes, the full-cache "oracle" sweep finds the ideal
admission threshold; miniature caches pick a threshold from a spatially
sampled replay at 25 % / 10 % / 5 % of the traffic.  The benchmark reports the
chosen threshold and the bandwidth gain it achieves *at full size*, mirroring
the paper's Table 2 (which finds 0.1 % sampling sufficient at production
scale; the scaled workload needs higher rates because its absolute working set
is three orders of magnitude smaller).
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import cache_sizes_for, save_result, threshold_candidates
from repro.caching.miniature import MiniatureCacheTuner
from repro.caching.policies import AccessThresholdPolicy
from repro.simulation.report import format_table
from repro.simulation.runner import simulate_table

TABLE = "table2"
SAMPLING_RATES = [1.0, 0.25, 0.1, 0.05]


def run_table2(bundle):
    workload = bundle[TABLE]
    thresholds = threshold_candidates(workload)
    cache_sizes = cache_sizes_for(workload, fractions=(0.3, 0.5, 0.7, 0.9))

    def full_gain(threshold, cache_size):
        result = simulate_table(
            workload.evaluation,
            workload.shp_layout,
            AccessThresholdPolicy(workload.access_counts, threshold),
            cache_size=cache_size,
        )
        return result.bandwidth_increase

    rows = []
    summary = {}
    for cache_size in cache_sizes:
        row = [cache_size]
        for rate in SAMPLING_RATES:
            tuner = MiniatureCacheTuner(sampling_rate=rate, seed=5, thresholds=thresholds)
            selection = tuner.select_threshold(
                workload.evaluation, workload.shp_layout, workload.access_counts, cache_size
            )
            gain = full_gain(selection.threshold, cache_size)
            summary[(cache_size, rate)] = (selection.threshold, gain)
            row.append(f"t={selection.threshold:.0f} ({100 * gain:+.0f}%)")
        rows.append(row)
    headers = ["cache size"] + [
        ("full cache" if rate == 1.0 else f"{100 * rate:.0f}% sampling") for rate in SAMPLING_RATES
    ]
    return format_table(headers, rows), summary, cache_sizes


def test_table2_miniature_caches(bundle, benchmark):
    table, summary, cache_sizes = benchmark.pedantic(
        run_table2, args=(bundle,), rounds=1, iterations=1
    )
    save_result("table2_miniature_caches", table)
    # The sampled selections must achieve a gain close to the full-cache
    # oracle's at every cache size (the paper's Table 2 claim).
    for cache_size in cache_sizes:
        oracle_gain = summary[(cache_size, 1.0)][1]
        for rate in SAMPLING_RATES[1:]:
            assert summary[(cache_size, rate)][1] >= oracle_gain - 0.35
