"""Figure 8 — effective bandwidth increase of recursive (two-stage) K-means.

The recursive variant approximates flat K-means at a fraction of the runtime:
its effective-bandwidth increase is close to flat K-means with the same number
of leaf clusters and saturates beyond a few thousand sub-clusters.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import save_result
from repro.partitioning import KMeansPartitioner, RecursiveKMeansPartitioner
from repro.simulation.experiment import ExperimentSweep
from repro.simulation.runner import unlimited_cache_bandwidth_increase

LEAF_CLUSTERS = [64, 128, 256, 512, 1024]
TABLE = "table2"


def run_figure8(bundle, embedding_values):
    workload = bundle[TABLE]
    table_values = embedding_values(TABLE)
    sweep = ExperimentSweep("figure8", f"recursive K-means on {TABLE}, unlimited cache")
    for leaves in LEAF_CLUSTERS:
        partitioner = RecursiveKMeansPartitioner(
            num_top_clusters=16, num_sub_clusters=leaves, num_iterations=10, seed=0
        )
        result = partitioner.partition(workload.spec.num_vectors, table=table_values)
        gain = unlimited_cache_bandwidth_increase(workload.evaluation, result.layout(32))
        sweep.add(
            {"leaf_clusters": leaves},
            {"bw_increase": gain, "runtime_s": result.runtime_seconds},
        )
    # Reference: flat K-means at the largest leaf count.
    flat = KMeansPartitioner(num_clusters=LEAF_CLUSTERS[-1], num_iterations=10, seed=0).partition(
        workload.spec.num_vectors, table=table_values
    )
    flat_gain = unlimited_cache_bandwidth_increase(workload.evaluation, flat.layout(32))
    sweep.add({"leaf_clusters": f"flat-{LEAF_CLUSTERS[-1]}"}, {"bw_increase": flat_gain, "runtime_s": flat.runtime_seconds})
    return sweep


def test_fig08_recursive_kmeans(bundle, embedding_values, benchmark):
    sweep = benchmark.pedantic(
        run_figure8, args=(bundle, embedding_values), rounds=1, iterations=1
    )
    save_result("fig08_recursive_kmeans", sweep.to_table())
    gains = sweep.column("bw_increase")
    recursive_best = max(gains[:-1])
    flat_gain = gains[-1]
    # Recursive K-means achieves a gain comparable to flat K-means (Figure 8's
    # point: no loss of effective bandwidth from the two-stage approximation).
    assert recursive_best >= 0.5 * flat_gain
