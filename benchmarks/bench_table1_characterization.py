"""Table 1 — characterisation of the user-embedding tables.

Regenerates the paper's per-table statistics (vectors, average lookups per
request, share of total lookups, compulsory misses) from a share-split
synthetic model trace and renders them next to the paper's values — and,
since PR 10, does the same for *external* traces pulled through the
streaming loader (:mod:`repro.scenarios.loader`): the committed sample
fixtures under ``tests/data/`` are characterised by the identical code path
(:mod:`repro.workloads.characterization`) and reported side by side with
the paper's eight production rows.

Run directly (``python benchmarks/bench_table1_characterization.py``) to
write the machine-readable artifact ``BENCH_table1_characterization.json``
at the repository root; the printed tables persist under
``benchmarks/results/`` as before.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import json
import os

from benchmarks.common import BENCH_SCALE, save_result
from repro.scenarios import TraceLoaderConfig, characterization_report, load_trace
from repro.simulation.report import format_table
from repro.workloads import generate_model_trace, scaled_table_specs
from repro.workloads.characterization import characterize_model

TOTAL_LOOKUPS = 250_000

JSON_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_table1_characterization.json"
)

#: Committed sample traces characterised through the streaming loader.
FIXTURES = {
    "twitter": ("tests/data/sample_twitter_trace.csv", "twitter"),
    "columnar": ("tests/data/sample_columnar_trace.csv", "columnar"),
}


def run_table1():
    specs = scaled_table_specs(BENCH_SCALE)
    model_trace = generate_model_trace(
        specs, total_lookups=TOTAL_LOOKUPS, seed=42, split="share"
    )
    rows = []
    characterizations = characterize_model(model_trace)
    for name, spec in specs.items():
        row = characterizations[name]
        rows.append(
            [
                name,
                spec.num_vectors,
                f"{row.avg_lookups_per_query:.2f} / {spec.avg_lookups_per_query:.2f}",
                f"{100 * row.lookup_share:.2f}% / {100 * spec.lookup_share:.2f}%",
                f"{100 * row.compulsory_miss_rate:.2f}% / {100 * spec.compulsory_miss_rate:.2f}%",
            ]
        )
    table = format_table(
        [
            "table",
            "vectors (scaled)",
            "avg lookups (measured/paper)",
            "% of lookups (measured/paper)",
            "compulsory misses (measured/paper)",
        ],
        rows,
    )
    return table, characterizations, specs


def synthetic_rows(characterizations, specs):
    """Machine-readable measured-vs-paper rows for the synthetic tables."""
    rows = []
    for name, spec in specs.items():
        row = characterizations[name]
        rows.append(
            {
                "name": name,
                "num_vectors_scaled": int(spec.num_vectors),
                "measured": {
                    "avg_lookups_per_query": round(row.avg_lookups_per_query, 4),
                    "lookup_share": round(row.lookup_share, 6),
                    "compulsory_miss_rate": round(row.compulsory_miss_rate, 6),
                },
                "paper": {
                    "avg_lookups_per_query": float(spec.avg_lookups_per_query),
                    "lookup_share": float(spec.lookup_share),
                    "compulsory_miss_rate": float(spec.compulsory_miss_rate),
                },
            }
        )
    return rows


def loaded_reports():
    """The sample fixtures, loader-normalised and set against Table 1."""
    reports = {}
    for name, (path, fmt) in FIXTURES.items():
        loaded = load_trace(TraceLoaderConfig(path=path, format=fmt))
        reports[name] = characterization_report(loaded, name=f"sample-{name}")
    return reports


def _format_loaded(reports):
    headers = [
        "trace",
        "queries",
        "ids",
        "avg lookups/query",
        "compulsory misses",
    ]
    rows = []
    for name, report in reports.items():
        measured = report["measured"]
        rows.append(
            [
                name,
                measured["num_queries"],
                measured["num_vectors"],
                f"{measured['avg_lookups_per_query']:.2f}",
                f"{100 * measured['compulsory_miss_rate']:.2f}%",
            ]
        )
    for spec in next(iter(reports.values()))["paper_table1"]:
        rows.append(
            [
                f"paper {spec['name']}",
                "-",
                spec["num_vectors"],
                f"{spec['avg_lookups_per_query']:.2f}",
                f"{100 * spec['compulsory_miss_rate']:.2f}%",
            ]
        )
    return format_table(headers, rows)


def run_artifact():
    """The full machine-readable artifact plus its printable rendering."""
    table, characterizations, specs = run_table1()
    reports = loaded_reports()
    artifact = {
        "total_lookups": TOTAL_LOOKUPS,
        "bench_scale": float(BENCH_SCALE),
        "synthetic": synthetic_rows(characterizations, specs),
        "loaded": reports,
    }
    rendered = "\n".join(
        [table, "", "loaded external traces vs paper Table 1:", _format_loaded(reports)]
    )
    return artifact, rendered


def test_table1_characterization(benchmark):
    table, characterizations, specs = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_result("table1_characterization", table)
    shares = {name: c.lookup_share for name, c in characterizations.items()}
    misses = {name: c.compulsory_miss_rate for name, c in characterizations.items()}
    # Shape checks: table 2 serves one of the largest lookup shares (query
    # de-duplication at the reduced scale shaves its very large requests, so
    # "top two" rather than strictly first) and table 8 is the least
    # cacheable, as in the paper's Table 1.
    top_two = sorted(shares, key=shares.get, reverse=True)[:2]
    assert "table2" in top_two
    assert max(misses, key=misses.get) == "table8"
    assert misses["table2"] < misses["table6"]


if __name__ == "__main__":
    artifact, rendered = run_artifact()
    save_result("table1_characterization", rendered)
    with open(JSON_PATH, "w") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
