"""Table 1 — characterisation of the user-embedding tables.

Regenerates the paper's per-table statistics (vectors, average lookups per
request, share of total lookups, compulsory misses) from a share-split
synthetic model trace and prints them next to the paper's values.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import BENCH_SCALE, save_result
from repro.simulation.report import format_table
from repro.workloads import generate_model_trace, scaled_table_specs
from repro.workloads.characterization import characterize_model

TOTAL_LOOKUPS = 250_000


def run_table1():
    specs = scaled_table_specs(BENCH_SCALE)
    model_trace = generate_model_trace(
        specs, total_lookups=TOTAL_LOOKUPS, seed=42, split="share"
    )
    rows = []
    characterizations = characterize_model(model_trace)
    for name, spec in specs.items():
        row = characterizations[name]
        rows.append(
            [
                name,
                spec.num_vectors,
                f"{row.avg_lookups_per_query:.2f} / {spec.avg_lookups_per_query:.2f}",
                f"{100 * row.lookup_share:.2f}% / {100 * spec.lookup_share:.2f}%",
                f"{100 * row.compulsory_miss_rate:.2f}% / {100 * spec.compulsory_miss_rate:.2f}%",
            ]
        )
    table = format_table(
        [
            "table",
            "vectors (scaled)",
            "avg lookups (measured/paper)",
            "% of lookups (measured/paper)",
            "compulsory misses (measured/paper)",
        ],
        rows,
    )
    return table, characterizations, specs


def test_table1_characterization(benchmark):
    table, characterizations, specs = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_result("table1_characterization", table)
    shares = {name: c.lookup_share for name, c in characterizations.items()}
    misses = {name: c.compulsory_miss_rate for name, c in characterizations.items()}
    # Shape checks: table 2 serves one of the largest lookup shares (query
    # de-duplication at the reduced scale shaves its very large requests, so
    # "top two" rather than strictly first) and table 8 is the least
    # cacheable, as in the paper's Table 1.
    top_two = sorted(shares, key=shares.get, reverse=True)[:2]
    assert "table2" in top_two
    assert max(misses, key=misses.get) == "table8"
    assert misses["table2"] < misses["table6"]
