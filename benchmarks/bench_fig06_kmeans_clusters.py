"""Figure 6 — effective bandwidth increase versus number of K-means clusters.

Semantic placement with flat K-means, unlimited DRAM cache: the gain grows
with the cluster count (finer grouping) and saturates, and is well below SHP's
gain on the same table (Figure 9 / benchmark fig09).
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import save_result
from repro.partitioning import KMeansPartitioner
from repro.simulation.experiment import ExperimentSweep
from repro.simulation.runner import unlimited_cache_bandwidth_increase

CLUSTER_COUNTS = [1, 4, 16, 64, 256, 1024]
TABLE = "table2"


def run_figure6(bundle, embedding_values):
    workload = bundle[TABLE]
    table_values = embedding_values(TABLE)
    sweep = ExperimentSweep(
        "figure6", f"K-means placement on {TABLE}, unlimited cache"
    )
    for clusters in CLUSTER_COUNTS:
        partitioner = KMeansPartitioner(num_clusters=clusters, num_iterations=10, seed=0)
        result = partitioner.partition(workload.spec.num_vectors, table=table_values)
        layout = result.layout(32)
        gain = unlimited_cache_bandwidth_increase(workload.evaluation, layout)
        sweep.add(
            {"clusters": clusters},
            {"bw_increase": gain, "runtime_s": result.runtime_seconds},
        )
    return sweep


def test_fig06_kmeans_clusters(bundle, embedding_values, benchmark):
    sweep = benchmark.pedantic(
        run_figure6, args=(bundle, embedding_values), rounds=1, iterations=1
    )
    save_result("fig06_kmeans_clusters", sweep.to_table())
    gains = sweep.column("bw_increase")
    # Shape: one cluster is an arbitrary ordering (≈ no gain over the original
    # layout); enough clusters give a clearly positive gain.
    assert gains[-1] > gains[0]
    assert max(gains) > 0.3
