"""Store-replay throughput: per-request serving vs interleaved sharded replay.

Replays a multi-table placement-study configuration (unlimited per-table
caches, cache-all-block prefetch over SHP placements — the replay behind the
paper's store-wide placement numbers) through three schedules that produce
bit-identical per-table ``ReplayStats``:

* ``per-request`` — the representative production schedule: one
  ``BandanaStore.lookup_request`` call per multi-table request.  This is
  the schedule the interleaved engine exists to accelerate.
* ``table-sequential`` — the historical ``simulate_store`` path: one bulk
  ``lookup_batch`` per table.
* ``interleaved-Nw`` — the interleaved store-replay engine
  (:mod:`repro.simulation.interleaved`): one chunked pass over the request
  stream, tables sharded across N worker processes.

Every schedule's timed region covers exactly the candidate replay (the
no-prefetch baselines are computed once, outside all timing, and the
analytic unlimited-cache shortcut is cross-checked against the replayed
baseline), so the numbers compare identical work.  Counters are verified
equal across all schedules.  Results are printed, persisted under
``benchmarks/results/`` and written as JSON to ``BENCH_store_replay.json``
at the repository root.  The headline ``speedup`` is per-request vs.
interleaved with 4 workers; ``speedup_vs_sequential`` tracks the same
engine against the bulk table-sequential path (on a single-core container
the worker sharding adds no parallel win and the sharded modes trail the
bulk path on pure overhead — multi-core hosts are where both numbers
rise).

Run directly (``python benchmarks/bench_store_replay.py``), optionally with
``--smoke`` for a seconds-long CI-sized configuration.
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import json
import os
import sys
import time

from benchmarks.common import build_table_workload, save_result
from repro.caching.engine import replay_table_cache_batched
from repro.caching.lru import LRUCache
from repro.caching.policies import CacheAllBlockPolicy, NoPrefetchPolicy
from repro.caching.replay import ReplayStats
from repro.core.bandana import BandanaStore, BandanaTableState
from repro.core.config import BandanaConfig, TableCacheConfig
from repro.nvm.device import NVMDevice
from repro.simulation import iter_store_requests, simulate_store
from repro.simulation.report import format_table
from repro.workloads import scaled_table_specs
from repro.workloads.trace import ModelTrace

#: The four highest-traffic tables (the paper's per-table study set).
TABLES = ["table1", "table2", "table6", "table7"]
#: Steady-state multiplier over the standard evaluation trace length.
EVAL_MULTIPLIER = 192
#: Timing rounds per schedule (best-of is reported).
ROUNDS = 2
#: Worker counts reported for the interleaved engine.
WORKER_COUNTS = (1, 2, 4)

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_store_replay.json")


def _counters(stats: ReplayStats):
    return stats.counters()


def build_placement_store(workloads) -> BandanaStore:
    """A placement-study store: unlimited caches, cache-all-block prefetch."""
    config = BandanaConfig(
        total_cache_vectors=sum(w.spec.num_vectors for w in workloads.values()),
        tune_thresholds=False,
        partitioner="shp",
    )
    tables = {}
    for name, workload in workloads.items():
        layout = workload.shp_layout
        num_vectors = layout.num_vectors
        tables[name] = BandanaTableState(
            name=name,
            layout=layout,
            cache=LRUCache(num_vectors),
            policy=CacheAllBlockPolicy(),
            device=NVMDevice(num_blocks=layout.num_blocks, block_bytes=config.block_bytes),
            cache_config=TableCacheConfig(cache_size_vectors=num_vectors),
            access_counts=workload.access_counts,
            stats=ReplayStats(
                vector_bytes=config.vector_bytes,
                block_bytes=config.block_bytes,
            ),
        )
    return BandanaStore(config, tables)


def _per_request_mode(store: BandanaStore, eval_trace: ModelTrace):
    """The representative schedule, served the pre-existing way."""
    for request in iter_store_requests(eval_trace):
        store.lookup_request(request)
    return {name: state.stats for name, state in store.tables.items()}


def _simulate_mode(store, eval_trace, interleaved, num_workers):
    result = simulate_store(
        store,
        eval_trace,
        include_baseline=False,  # baselines are verified outside the timing
        interleaved=interleaved,
        num_workers=num_workers,
    )
    return {name: r.stats for name, r in result.per_table.items()}


def _verify_baselines(store: BandanaStore, eval_trace: ModelTrace):
    """Replay the no-prefetch baselines once (untimed) and cross-check the
    analytic unlimited-cache shortcut the interleaved engine would use."""
    from repro.simulation import baseline_stats_for

    baselines = {}
    for name, trace in eval_trace.items():
        state = store.tables[name]
        replayed = replay_table_cache_batched(
            trace.queries,
            state.layout,
            NoPrefetchPolicy(),
            cache_size=state.cache_config.cache_size_vectors,
            vector_bytes=store.config.vector_bytes,
        )
        analytic = baseline_stats_for(
            trace.queries,
            state.layout,
            state.cache_config.cache_size_vectors,
            vector_bytes=store.config.vector_bytes,
        )
        if _counters(analytic) != _counters(replayed):
            raise AssertionError(f"analytic baseline diverged on {name!r}")
        baselines[name] = replayed
    return baselines


def run_store_replay(eval_multiplier=EVAL_MULTIPLIER, rounds=ROUNDS, tables=TABLES):
    specs = scaled_table_specs(1.0 / 1000.0, names=tables)
    workloads = {
        name: build_table_workload(spec, seed=100 + i, shp_iterations=8)
        for i, (name, spec) in enumerate(specs.items())
    }
    eval_trace = ModelTrace(
        {
            name: workload.generator.generate_lookups(
                eval_multiplier * workload.evaluation.num_lookups
            )
            for name, workload in workloads.items()
        }
    )
    num_requests = max(len(trace) for trace in eval_trace.tables.values())
    total_lookups = eval_trace.total_lookups

    modes = [("per-request", lambda store: _per_request_mode(store, eval_trace))]
    modes.append(
        ("table-sequential", lambda store: _simulate_mode(store, eval_trace, False, 1))
    )
    for workers in WORKER_COUNTS:
        modes.append(
            (
                f"interleaved-{workers}w",
                lambda store, w=workers: _simulate_mode(store, eval_trace, True, w),
            )
        )

    _verify_baselines(build_placement_store(workloads), eval_trace)

    timings = {}
    reference_counters = None
    for mode_name, run in modes:
        best = float("inf")
        for _ in range(rounds):
            store = build_placement_store(workloads)
            start = time.perf_counter()
            stats = run(store)
            best = min(best, time.perf_counter() - start)
        mode_counters = {name: _counters(stats[name]) for name in eval_trace}
        if reference_counters is None:
            reference_counters = mode_counters
        elif mode_counters != reference_counters:
            raise AssertionError(
                f"schedule {mode_name!r} diverged from per-request counters"
            )
        timings[mode_name] = {
            "seconds": round(best, 4),
            "lookups_per_sec": round(total_lookups / best),
        }

    headline = timings["per-request"]["seconds"] / timings["interleaved-4w"]["seconds"]
    return {
        "tables": list(tables),
        "eval_lookups": int(total_lookups),
        "num_requests": int(num_requests),
        "eval_multiplier": int(eval_multiplier),
        "cpu_count": os.cpu_count(),
        "modes": timings,
        # Headline: the representative per-request store replay against the
        # interleaved sharded engine at 4 workers.
        "speedup": round(headline, 2),
        "speedup_vs_sequential": round(
            timings["table-sequential"]["seconds"]
            / timings["interleaved-4w"]["seconds"],
            2,
        ),
    }


def _format(result):
    headers = ["schedule", "seconds", "lookups/s"]
    rows = [
        [name, f"{cfg['seconds']:.3f}", f"{cfg['lookups_per_sec']:,}"]
        for name, cfg in result["modes"].items()
    ]
    lines = [
        f"store replay on {'+'.join(result['tables'])} "
        f"({result['eval_lookups']} lookups, {result['num_requests']} requests, "
        f"{result['cpu_count']} cpu)",
        format_table(headers, rows),
        f"headline speedup (per-request vs interleaved-4w): {result['speedup']:.2f}x",
        f"vs table-sequential: {result['speedup_vs_sequential']:.2f}x",
    ]
    return "\n".join(lines)


def _write_outputs(result, persist=True):
    if not persist:
        # Smoke runs print only: the persisted artifacts must always hold
        # full-run numbers.
        print(_format(result))
        return
    save_result("store_replay", _format(result))
    with open(JSON_PATH, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    if smoke:
        # CI-sized run: exercises every schedule (counter equality included)
        # but is far too small to amortise worker start-up, so neither the
        # speedup bar nor the tracked JSON applies.
        result = run_store_replay(eval_multiplier=2, rounds=1, tables=TABLES[:2])
    else:
        result = run_store_replay()
    if not smoke and result["speedup"] < 2.0:
        # Fail before persisting: the tracked artifacts must only ever
        # record bar-passing runs.
        print(_format(result))
        raise SystemExit(f"expected >= 2x speedup, measured {result['speedup']:.2f}x")
    _write_outputs(result, persist=not smoke)
    print(f"headline speedup: {result['speedup']:.2f}x")
