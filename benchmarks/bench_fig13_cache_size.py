"""Figure 13 — end-to-end effective bandwidth increase versus total cache size.

The full Bandana pipeline (SHP placement, hit-rate-curve DRAM split, miniature
cache threshold tuning) is built once per total-DRAM budget and replayed over
held-out traces for all eight tables.  Gains grow with the cache size, and
cacheable tables (1, 2, 7) gain far more than near-uniform ones (8).
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import save_result
from benchmarks.conftest import ALL_TABLES
from repro.core.bandana import BandanaStore
from repro.core.config import BandanaConfig
from repro.simulation.experiment import ExperimentSweep
from repro.simulation.runner import simulate_store
from repro.workloads.trace import ModelTrace

#: Total DRAM budgets as multiples of the aggregate evaluation working set
#: (the paper's 1–5 M vector sweep spans a similar range relative to its
#: working set).
BUDGET_FRACTIONS = [0.5, 1.0, 1.5, 2.0]


def build_store(bundle, total_cache_vectors):
    train = ModelTrace({name: bundle[name].train for name in ALL_TABLES})
    config = BandanaConfig(
        total_cache_vectors=total_cache_vectors,
        partitioner="shp",
        shp_iterations=8,
        mini_cache_sampling_rate=0.25,
        seed=3,
    )
    num_vectors = {name: bundle[name].spec.num_vectors for name in ALL_TABLES}
    return BandanaStore.build(train, config, num_vectors=num_vectors)


def run_figure13(bundle):
    eval_trace = ModelTrace({name: bundle[name].evaluation for name in ALL_TABLES})
    total_working_set = sum(bundle[name].eval_unique for name in ALL_TABLES)
    sweep = ExperimentSweep("figure13", "end-to-end bandwidth increase vs total cache size")
    per_table_gains = {}
    overall = {}
    for fraction in BUDGET_FRACTIONS:
        budget = max(256, int(round(total_working_set * fraction)))
        store = build_store(bundle, budget)
        result = simulate_store(store, eval_trace)
        overall[fraction] = result.bandwidth_increase
        for name, table_result in result.per_table.items():
            per_table_gains[(name, fraction)] = table_result.bandwidth_increase
            sweep.add(
                {"cache_fraction_of_ws": fraction, "cache_vectors": budget, "table": name},
                {"bw_increase": table_result.bandwidth_increase},
            )
        sweep.add(
            {"cache_fraction_of_ws": fraction, "cache_vectors": budget, "table": "ALL"},
            {"bw_increase": result.bandwidth_increase},
        )
    return sweep, overall, per_table_gains


def test_fig13_cache_size(bundle, benchmark):
    sweep, overall, per_table = benchmark.pedantic(
        run_figure13, args=(bundle,), rounds=1, iterations=1
    )
    save_result("fig13_cache_size", sweep.to_table())
    fractions = sorted(overall)
    # Gains are positive once the cache is comparable to the working set and
    # grow (weakly) with the budget.
    assert overall[fractions[-1]] > 0
    assert overall[fractions[-1]] >= overall[fractions[0]] - 0.02
    # Cacheable table 2 ends up gaining more than the near-uniform table 8.
    assert per_table[("table2", fractions[-1])] >= per_table[("table8", fractions[-1])]
