"""Figure 10 — caching every prefetched vector with a limited cache.

Treating all 32 vectors of a fetched block like the demanded vector floods the
LRU queue: with a limited cache the effective bandwidth *decreases* relative
to the no-prefetch baseline, both for the SHP-partitioned tables and for the
original (unsorted) tables.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import cache_sizes_for, save_result
from repro.caching.policies import CacheAllBlockPolicy
from repro.simulation.experiment import ExperimentSweep
from repro.simulation.runner import simulate_table

TABLE = "table2"


def run_figure10(bundle):
    workload = bundle[TABLE]
    sweep = ExperimentSweep(
        "figure10", f"cache-all-block policy on {TABLE}, limited cache"
    )
    results = {}
    for cache_size in cache_sizes_for(workload):
        for layout_name, layout in (
            ("partitioned", workload.shp_layout),
            ("original", workload.identity_layout),
        ):
            result = simulate_table(
                workload.evaluation, layout, CacheAllBlockPolicy(), cache_size=cache_size
            )
            results[(layout_name, cache_size)] = result.bandwidth_increase
            sweep.add(
                {"layout": layout_name, "cache_size": cache_size},
                {
                    "bw_increase": result.bandwidth_increase,
                    "hit_rate": result.cache_stats.hit_rate,
                },
            )
    return sweep, results


def test_fig10_cache_all_block(bundle, benchmark):
    sweep, results = benchmark.pedantic(run_figure10, args=(bundle,), rounds=1, iterations=1)
    save_result("fig10_cache_all_block", sweep.to_table())
    # Figure 10's message: with a limited cache, caching whole blocks reduces
    # effective bandwidth versus the no-prefetch baseline for both layouts.
    negative = [gain for gain in results.values() if gain < 0]
    assert len(negative) >= len(results) * 0.75
