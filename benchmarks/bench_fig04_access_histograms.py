"""Figure 4 — access histograms of the user embedding tables with the most lookups.

Each histogram shows how many vectors were read a given number of times; the
paper's histograms are extremely heavy-tailed (most vectors are read a handful
of times, a few are read orders of magnitude more often).
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import numpy as np

from benchmarks.common import save_result
from benchmarks.conftest import TOP_TABLES
from repro.simulation.report import format_table
from repro.workloads.characterization import access_counts, access_histogram

NUM_BINS = 8


def run_figure4(bundle):
    rows = []
    stats = {}
    for name in TOP_TABLES:
        workload = bundle[name]
        counts = access_counts(workload.evaluation)
        edges, histogram = access_histogram(workload.evaluation, num_bins=NUM_BINS)
        touched = counts[counts > 0]
        stats[name] = (touched, histogram)
        rows.append(
            [
                name,
                int(touched.size),
                int(touched.max()) if touched.size else 0,
                f"{touched.mean():.1f}" if touched.size else "0",
            ]
            + histogram.tolist()
        )
    headers = ["table", "vectors touched", "max reads", "mean reads"] + [
        f"bin{i}" for i in range(NUM_BINS)
    ]
    return format_table(headers, rows), stats


def test_fig04_access_histograms(bundle, benchmark):
    table, stats = benchmark.pedantic(run_figure4, args=(bundle,), rounds=1, iterations=1)
    save_result("fig04_access_histograms", table)
    for name, (touched, histogram) in stats.items():
        # Heavy tail: the lowest-count bin holds the most vectors and the
        # maximum count is far above the mean, as in the paper's Figure 4.
        assert histogram[0] == histogram.max()
        assert touched.max() > 5 * touched.mean()
