"""Serving-latency load sweep: arrival rate vs end-to-end percentiles.

The serving-side counterpart of the paper's Figure 5: an open-loop Poisson
arrival process drives a built Bandana store through the event-driven serving
front-end (:mod:`repro.serving`) at several arrival rates — from a lightly
loaded device up to (and past) its saturation point — once with dynamic
batching and once unbatched.  For every point the harness reports the
end-to-end request latency percentiles (p50/p95/p99/p999), the sustained
throughput, the observed device queue depth and the SLO violation rate.

The saturation point is calibrated in two steps.  An analytic bound first
comes from the workload itself: a warm replay measures the steady NVM block
reads per request, and the device's unloaded block rate divided by that cost
bounds the servable arrival rate.  Because loaded-latency feedback makes the
device slower than its unloaded rate well before that bound, the *effective*
capacity is then measured empirically — one batched probe run offered twice
the analytic bound, whose sustained throughput is the saturation rate the
sweep fractions refer to.  The sweep's top point offers more than that, so
the open-loop queueing blow-up is visible in the numbers.  Every measured
run first replays a warm-up prefix of the trace untimed (the paper's
steady-state framing): otherwise the cold-start miss burst transiently
saturates the device and smears every percentile, regardless of the offered
rate.

Results are printed, persisted under ``benchmarks/results/`` and written as
JSON to ``BENCH_serving_latency.json`` at the repository root.  The artifact
always carries a ``smoke_reference`` section computed at the CI-sized
:data:`SMOKE_PARAMS` configuration — the sweep is simulated time only, so
``benchmarks/perf_track.py`` regenerates that section on any runner and
compares every number with tight tolerances.  Run directly
(``python benchmarks/bench_serving_latency.py``), optionally with ``--smoke``
for a seconds-long run that refreshes only the smoke section.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import json
import os
import sys

from benchmarks.common import build_table_workload, save_result
from repro.core.bandana import BandanaStore
from repro.core.config import BandanaConfig, ServingConfig, TracingConfig
from repro.nvm.latency import NVMLatencyModel
from repro.serving import simulate_serving
from repro.simulation import simulate_store
from repro.simulation.report import format_table
from repro.workloads import scaled_table_specs
from repro.workloads.trace import ModelTrace

#: Tables served together (the paper's high-traffic study set).
TABLES = ["table1", "table2", "table6", "table7"]
#: Steady-state multiplier over the standard evaluation trace length.
EVAL_MULTIPLIER = 8
#: Arrival rates as fractions of the measured device-saturation throughput.
LOAD_FRACTIONS = (0.1, 0.5, 0.95, 1.2)
#: Batching knobs of the batched arm (the unbatched arm uses max_batch=1).
MAX_BATCH = 16
MAX_LINGER_US = 300.0
SLO_LATENCY_US = 2000.0
#: Fraction of the evaluation trace replayed untimed to warm the caches.
WARMUP_FRACTION = 0.3
#: Slow requests whose per-stage breakdown lands in the artifact; traced
#: (repro.tracing) on the highest load point only — that is where the tail
#: lives, and tracing every point would bloat the JSON for no insight.
TOP_K_SLOW = 5

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_serving_latency.json")

#: The CI-sized configuration behind the artifact's ``smoke_reference``
#: section: the whole sweep (every load point, both arms) on two tables and
#: a short request stream.  The sweep is a deterministic function of
#: (stores, traces, configs, seeds) — simulated time only — so
#: ``benchmarks/perf_track.py`` regenerates this section on any runner and
#: compares every number with tight tolerances.
SMOKE_PARAMS = dict(eval_multiplier=1, tables=list(TABLES[:2]), num_requests=200)


def build_store(tables, eval_multiplier, total_cache_fraction=0.5):
    """A tuned store plus a steady-state evaluation trace for the sweep."""
    specs = scaled_table_specs(1.0 / 1000.0, names=tables)
    workloads = {
        name: build_table_workload(spec, seed=100 + i, shp_iterations=8)
        for i, (name, spec) in enumerate(specs.items())
    }
    eval_trace = ModelTrace(
        {
            name: workload.generator.generate_lookups(
                eval_multiplier * workload.evaluation.num_lookups
            )
            for name, workload in workloads.items()
        }
    )
    working_set = sum(
        trace.unique_vectors().size for trace in eval_trace.tables.values()
    )
    train_trace = ModelTrace({name: w.train for name, w in workloads.items()})
    store = BandanaStore.build(
        train_trace,
        BandanaConfig(
            total_cache_vectors=max(1, int(working_set * total_cache_fraction)),
            partitioner="shp",
            shp_iterations=8,
            tune_thresholds=False,
            seed=7,
        ),
    )
    return store, eval_trace


def warm_store(store, warm_trace):
    """Cold-reset the store, then replay the warm-up prefix untimed."""
    result = simulate_store(store, warm_trace, include_baseline=False)
    return result


def saturation_rate_rps(store, warm_trace, serve_trace):
    """Arrival rate at which demand misses alone saturate the NVM device.

    An untimed warm replay followed by a replay of the serving portion
    measures the workload's steady blocks-per-request; the device's block
    rate at the store's queue depth divided by that cost is the saturating
    arrival rate.
    """
    warm_store(store, warm_trace)
    before = store.aggregate_stats().misses
    simulate_store(store, serve_trace, include_baseline=False, reset_first=False)
    blocks = store.aggregate_stats().misses - before
    num_requests = max(len(trace) for trace in serve_trace.tables.values())
    blocks_per_request = blocks / num_requests
    model = NVMLatencyModel(block_bytes=store.config.block_bytes)
    return model.blocks_per_second(store.config.queue_depth) / blocks_per_request


def measured_capacity_rps(store, warm_trace, serve_trace, analytic_rps, num_requests):
    """Sustained batched throughput under a deliberately saturating offer."""
    warm_store(store, warm_trace)
    probe = simulate_serving(
        store,
        serve_trace,
        ServingConfig(
            arrival_rate_rps=2.0 * analytic_rps,
            max_batch_requests=MAX_BATCH,
            max_linger_us=MAX_LINGER_US,
            seed=13,
        ),
        num_requests=num_requests,
        reset_first=False,
    )
    return probe.throughput_rps


def run_sweep(eval_multiplier=EVAL_MULTIPLIER, tables=TABLES, num_requests=None):
    store, eval_trace = build_store(tables, eval_multiplier)
    warm_trace, serve_trace = eval_trace.split(WARMUP_FRACTION)
    analytic_rps = saturation_rate_rps(store, warm_trace, serve_trace)
    sat_rps = measured_capacity_rps(
        store, warm_trace, serve_trace, analytic_rps, num_requests
    )
    arms = {
        "batched": dict(max_batch_requests=MAX_BATCH, max_linger_us=MAX_LINGER_US),
        "unbatched": dict(max_batch_requests=1),
    }
    sweep = []
    for fraction in LOAD_FRACTIONS:
        rate = fraction * sat_rps
        traced = fraction == LOAD_FRACTIONS[-1]
        point = {"load_fraction": fraction, "arrival_rate_rps": round(rate, 1)}
        for arm, knobs in arms.items():
            warm_store(store, warm_trace)
            report = simulate_serving(
                store,
                serve_trace,
                ServingConfig(
                    arrival_rate_rps=rate,
                    slo_latency_us=SLO_LATENCY_US,
                    seed=13,
                    **knobs,
                ),
                num_requests=num_requests,
                reset_first=False,
                tracing=(
                    TracingConfig(enabled=True, top_k_slow=TOP_K_SLOW)
                    if traced
                    else None
                ),
            )
            point[arm] = report.to_dict()
        sweep.append(point)
    return {
        "tables": list(tables),
        "eval_multiplier": int(eval_multiplier),
        "num_requests": sweep[0]["batched"]["num_requests"],
        "analytic_saturation_rps": round(analytic_rps, 1),
        "saturation_rate_rps": round(sat_rps, 1),
        "max_batch_requests": MAX_BATCH,
        "max_linger_us": MAX_LINGER_US,
        "slo_latency_us": SLO_LATENCY_US,
        "sweep": sweep,
    }


def _pctl(latency, field):
    """One formatted percentile, starred when its rank outruns the samples."""
    flag = "*" if field in latency.get("unsupported_percentiles", ()) else ""
    return f"{latency[field]:.0f}{flag}"


def _format_top_slow(trace):
    """Readable top-K slow-request rows from a tracer summary dict."""
    lines = []
    for entry in trace["top_slow"]:
        stages = ", ".join(
            f"{name} {us:,.0f}us"
            for name, us in list(entry["stage_totals_us"].items())[:4]
        )
        lines.append(
            f"  request {entry['request_id']}: "
            f"{entry['latency_us']:,.0f}us ({stages})"
        )
    return lines


def _format(result):
    headers = [
        "load", "rate (rps)", "arm", "p50 (us)", "p95 (us)", "p99 (us)",
        "p999 (us)", "tput (rps)", "mean qd", "SLO viol",
    ]
    rows = []
    flagged = False
    for point in result["sweep"]:
        for arm in ("batched", "unbatched"):
            report = point[arm]
            flagged = flagged or bool(report["latency"]["unsupported_percentiles"])
            rows.append(
                [
                    f"{point['load_fraction']:.2f}x",
                    f"{point['arrival_rate_rps']:,.0f}",
                    arm,
                    _pctl(report["latency"], "p50_us"),
                    _pctl(report["latency"], "p95_us"),
                    _pctl(report["latency"], "p99_us"),
                    _pctl(report["latency"], "p999_us"),
                    f"{report['throughput_rps']:,.0f}",
                    f"{report['mean_queue_depth']:.1f}",
                    f"{100 * report['slo_violation_rate']:.1f}%",
                ]
            )
    lines = [
        f"serving latency on {'+'.join(result['tables'])} "
        f"({result['num_requests']} requests/run, device saturation "
        f"~{result['saturation_rate_rps']:,.0f} rps, "
        f"batch<= {result['max_batch_requests']}, "
        f"linger {result['max_linger_us']:.0f} us)",
        format_table(headers, rows),
    ]
    if flagged:
        lines.append(
            "* percentile computed from fewer samples than its rank requires"
            " (interpolation quotes ~the max, not a tail estimate)"
        )
    top = result["sweep"][-1]
    for arm in ("batched", "unbatched"):
        trace = top[arm].get("trace")
        if trace:
            lines.append(
                f"slowest requests at {top['load_fraction']:.2f}x ({arm}), "
                "per-stage time:"
            )
            lines.extend(_format_top_slow(trace))
    return "\n".join(lines)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    artifact = {"smoke": smoke, "smoke_reference": run_sweep(**SMOKE_PARAMS)}
    if smoke:
        result = artifact["smoke_reference"]
        print(_format(result))
    else:
        result = run_sweep()
        artifact["full"] = result
        save_result("serving_latency", _format(result))
    with open(JSON_PATH, "w") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    top = result["sweep"][-1]
    print(
        f"at {top['load_fraction']:.2f}x saturation: batched p99 "
        f"{top['batched']['latency']['p99_us']:,.0f} us vs unbatched "
        f"{top['unbatched']['latency']['p99_us']:,.0f} us"
    )
