"""Figure 16 — end-to-end effective bandwidth versus embedding-vector size.

Smaller vectors pack more vectors into each 4 KB block, so a single block read
prefetches more useful neighbours and the effective-bandwidth increase grows;
larger vectors shrink the opportunity.  The benchmark rebuilds the per-table
placement and cache for 64 / 128 / 256 B vectors.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import save_result
from repro.caching.policies import AccessThresholdPolicy, NoPrefetchPolicy
from repro.caching.replay import effective_bandwidth_increase, replay_table_cache
from repro.partitioning import SHPPartitioner
from repro.simulation.experiment import ExperimentSweep

from benchmarks.common import threshold_candidates

TABLES = ["table1", "table2", "table7"]
VECTOR_BYTES = [64, 128, 256]
BLOCK_BYTES = 4096


def run_figure16(bundle):
    sweep = ExperimentSweep("figure16", "bandwidth increase vs vector size (bytes)")
    gains = {}
    for name in TABLES:
        workload = bundle[name]
        # The paper's end-to-end sweep uses a cache comfortably larger than
        # the per-hour working set (4 M vectors); mirror that regime so the
        # extra prefetch opportunities of small vectors are not drowned out by
        # eviction pressure.
        cache_size = int(round(workload.eval_unique * 1.3))
        thresholds = threshold_candidates(workload)
        best_threshold = thresholds[len(thresholds) // 2]
        for vector_bytes in VECTOR_BYTES:
            vectors_per_block = BLOCK_BYTES // vector_bytes
            layout = (
                SHPPartitioner(
                    vectors_per_block=vectors_per_block, num_iterations=8, seed=2
                )
                .partition(workload.spec.num_vectors, trace=workload.train)
                .layout(vectors_per_block)
            )
            baseline = replay_table_cache(
                workload.evaluation.queries,
                layout,
                NoPrefetchPolicy(),
                cache_size=cache_size,
                vector_bytes=vector_bytes,
            )
            stats = replay_table_cache(
                workload.evaluation.queries,
                layout,
                AccessThresholdPolicy(workload.access_counts, best_threshold),
                cache_size=cache_size,
                vector_bytes=vector_bytes,
            )
            gain = effective_bandwidth_increase(baseline, stats)
            gains[(name, vector_bytes)] = gain
            sweep.add(
                {"table": name, "vector_bytes": vector_bytes, "vectors_per_block": vectors_per_block},
                {"bw_increase": gain},
            )
    return sweep, gains


def test_fig16_vector_size(bundle, benchmark):
    sweep, gains = benchmark.pedantic(run_figure16, args=(bundle,), rounds=1, iterations=1)
    save_result("fig16_vector_size", sweep.to_table())
    # Smaller vectors (more vectors per block) never do worse than larger ones
    # on the cacheable tables — the paper's Figure 16 trend.
    for name in TABLES:
        assert gains[(name, 64)] >= gains[(name, 256)] - 0.05
