"""Ablation — how much of SHP's win is co-access mining versus hot/cold separation.

Not a figure from the paper: DESIGN.md calls out the question of whether a
trivial frequency ordering (pack vectors by training access count) captures
most of SHP's benefit.  The ablation compares, under an unlimited cache,
the original layout, frequency ordering, K-means placement and SHP on a
cacheable table and on the near-uniform table 8.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import save_result
from repro.partitioning import FrequencyPartitioner, KMeansPartitioner
from repro.simulation.experiment import ExperimentSweep
from repro.simulation.runner import unlimited_cache_bandwidth_increase

TABLES = ["table2", "table8"]


def run_ablation(bundle, embedding_values):
    sweep = ExperimentSweep("ablation", "placement families, unlimited cache")
    gains = {}
    for name in TABLES:
        workload = bundle[name]
        layouts = {
            "original": workload.identity_layout,
            "frequency": FrequencyPartitioner()
            .partition(workload.spec.num_vectors, trace=workload.train)
            .layout(32),
            "kmeans-256": KMeansPartitioner(num_clusters=256, num_iterations=10, seed=0)
            .partition(workload.spec.num_vectors, table=embedding_values(name))
            .layout(32),
            "shp": workload.shp_layout,
        }
        for label, layout in layouts.items():
            gain = unlimited_cache_bandwidth_increase(workload.evaluation, layout)
            gains[(name, label)] = gain
            sweep.add({"table": name, "placement": label}, {"bw_increase": gain})
    return sweep, gains


def test_ablation_placement(bundle, embedding_values, benchmark):
    sweep, gains = benchmark.pedantic(
        run_ablation, args=(bundle, embedding_values), rounds=1, iterations=1
    )
    save_result("ablation_placement", sweep.to_table())
    # Supervised placements (frequency, SHP) beat the original layout on the
    # cacheable table, and SHP beats pure geometry (K-means).
    assert gains[("table2", "shp")] > gains[("table2", "original")]
    assert gains[("table2", "shp")] > gains[("table2", "kmeans-256")]
    # On the near-uniform table 8 every placement is close to the original.
    assert gains[("table8", "shp")] < gains[("table2", "shp")]
