"""Fault-scenario sweep: what each failure mode costs in p999 and availability.

A tuned four-table Bandana store is promoted to a simulated cluster
(:mod:`repro.cluster`: consistent-hash sharding, R-way replication,
fan-out/fan-in serving) and replayed under an open-loop Poisson arrival
process while the fault-injection layer degrades it.  One row per scenario:

* ``healthy`` — no faults, the baseline every other row reads against;
* ``crash R=1`` / ``crash R=2`` — one node crashes mid-run and recovers
  cold; unreplicated this costs availability, replicated it costs only tail
  latency (retries + hedges keep every request whole);
* ``slow x4/x20/x100`` — one node's service times stretched, the
  degradation ladder behind the hedging and circuit-breaker machinery;
* ``flaky 1%/5%/20%`` — one link drops attempts (each burning the shard
  timeout before a backoff retry) at increasing loss rates;
* ``compound`` — a crash, a slow node and a degraded link at once.

Every row reports availability (fraction of requests with all shard groups
served), latency percentiles over *all* requests (degraded included), and
the robustness counters (timeouts, retries, sheds, hedges, breaker
ejections, cold restarts).  The fault window covers the middle half of each
run, so every row also measures healthy ramp-in/out traffic — scenario cost
shows up in the tail, exactly where production failures live.

Results are printed, persisted under ``benchmarks/results/`` and written as
JSON to ``BENCH_cluster_failures.json`` at the repository root.  Run
directly (``python benchmarks/bench_cluster_failures.py``), optionally with
``--smoke`` for a seconds-long CI-sized configuration (the JSON is written
either way — the chaos-smoke CI job uploads it as an artifact — with a
``"smoke"`` flag separating CI payloads from tracked full-run numbers).
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import json
import os
import sys

from benchmarks.common import build_table_workload, save_result
from repro.cluster import run_scenario
from repro.core.bandana import BandanaStore
from repro.core.config import (
    BandanaConfig,
    ClusterConfig,
    ServingConfig,
    TracingConfig,
)
from repro.simulation.report import format_table
from repro.workloads import scaled_table_specs
from repro.workloads.trace import ModelTrace

#: Tables served together (the paper's high-traffic study set).
TABLES = ["table1", "table2", "table6", "table7"]
#: Cluster shape of every row (replication overridden per row).
NUM_NODES = 4
REPLICATION = 2
#: Offered load and SLO of the sweep.  800 rps keeps the healthy cluster
#: comfortably below saturation (availability 1.0, p999 under the SLO), so
#: every fault row's cost is attributable to the fault, not to overload.
ARRIVAL_RATE_RPS = 800.0
SLO_LATENCY_US = 2000.0
#: Slow requests whose per-stage breakdown (repro.tracing) each scenario row
#: carries in the artifact — the "why" behind its p999-vs-healthy ratio.
TOP_K_SLOW = 3

JSON_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_cluster_failures.json"
)


def build_store(tables, eval_multiplier, total_cache_fraction=0.5):
    """A tuned store plus a steady-state evaluation trace (serving-bench twin)."""
    specs = scaled_table_specs(1.0 / 1000.0, names=tables)
    workloads = {
        name: build_table_workload(spec, seed=100 + i, shp_iterations=8)
        for i, (name, spec) in enumerate(specs.items())
    }
    eval_trace = ModelTrace(
        {
            name: workload.generator.generate_lookups(
                eval_multiplier * workload.evaluation.num_lookups
            )
            for name, workload in workloads.items()
        }
    )
    working_set = sum(
        trace.unique_vectors().size for trace in eval_trace.tables.values()
    )
    train_trace = ModelTrace({name: w.train for name, w in workloads.items()})
    store = BandanaStore.build(
        train_trace,
        BandanaConfig(
            total_cache_vectors=max(1, int(working_set * total_cache_fraction)),
            partitioner="shp",
            shp_iterations=8,
            tune_thresholds=False,
            seed=7,
        ),
    )
    return store, eval_trace


def scenario_rows(makespan_s):
    """The sweep: (label, scenario, replication, factory overrides) rows.

    The fault window spans the middle half of the expected run, so each
    scenario is bracketed by healthy traffic.
    """
    window = dict(start_s=0.25 * makespan_s, duration_s=0.5 * makespan_s)
    return [
        ("healthy", "none", REPLICATION, {}),
        ("crash R=1", "crash_recover", 1, dict(window)),
        ("crash R=2", "crash_recover", REPLICATION, dict(window)),
        ("slow x4", "slow_node", REPLICATION, dict(window, multiplier=4.0)),
        ("slow x20", "slow_node", REPLICATION, dict(window, multiplier=20.0)),
        ("slow x100", "slow_node", REPLICATION, dict(window, multiplier=100.0)),
        ("flaky 1%", "flaky_link", REPLICATION, dict(window, loss_prob=0.01)),
        ("flaky 5%", "flaky_link", REPLICATION, dict(window, loss_prob=0.05)),
        ("flaky 20%", "flaky_link", REPLICATION, dict(window, loss_prob=0.20)),
        ("compound", "degraded_cluster", REPLICATION, dict(window)),
    ]


def run_sweep(eval_multiplier=24, num_requests=4000, warmup_requests=1000):
    store, eval_trace = build_store(TABLES, eval_multiplier)
    from repro.simulation import iter_store_requests

    available = len(list(iter_store_requests(eval_trace)))
    if available < warmup_requests + num_requests:
        raise ValueError(
            f"trace supplies {available} requests but the sweep needs "
            f"{warmup_requests} warmup + {num_requests} measured; "
            "raise eval_multiplier"
        )
    serving = ServingConfig(
        arrival_rate_rps=ARRIVAL_RATE_RPS, slo_latency_us=SLO_LATENCY_US
    )
    makespan_s = num_requests / ARRIVAL_RATE_RPS
    rows = []
    for label, scenario, replication, overrides in scenario_rows(makespan_s):
        cluster_config = ClusterConfig(
            num_nodes=NUM_NODES,
            replication=replication,
            # Cooloff sized to the run (the default 0.25 s would eject a
            # node for most of a short sweep): long enough to skip a burst
            # of strikes, short enough to re-probe within the fault window.
            breaker_cooloff_s=0.02 * makespan_s,
            default_slo_us=SLO_LATENCY_US,
        )
        report = run_scenario(
            store,
            eval_trace,
            scenario=scenario,
            cluster_config=cluster_config,
            serving_config=serving,
            num_requests=num_requests,
            scenario_overrides=overrides,
            warmup_requests=warmup_requests,
            tracing=TracingConfig(enabled=True, top_k_slow=TOP_K_SLOW),
        )
        rows.append(
            {"label": label, "overrides": overrides, **report.to_dict()}
        )
    baseline = rows[0]
    for row in rows:
        row["p999_vs_healthy"] = round(
            row["latency"]["p999_us"] / baseline["latency"]["p999_us"], 2
        )
    return {
        "tables": list(TABLES),
        "num_nodes": NUM_NODES,
        "num_requests": num_requests,
        "warmup_requests": warmup_requests,
        "arrival_rate_rps": ARRIVAL_RATE_RPS,
        "slo_latency_us": SLO_LATENCY_US,
        "scenarios": rows,
    }


def _pctl(latency, field):
    """One formatted percentile, starred when its rank outruns the samples."""
    flag = "*" if field in latency.get("unsupported_percentiles", ()) else ""
    return f"{latency[field]:.0f}{flag}"


def _format_top_slow(row):
    """The row's slowest requests with their per-stage time, one line each."""
    lines = [f"slowest requests under '{row['label']}', per-stage time:"]
    for entry in row["trace"]["top_slow"]:
        stages = ", ".join(
            f"{name} {us:,.0f}us"
            for name, us in list(entry["stage_totals_us"].items())[:4]
        )
        degraded = " [degraded]" if entry["degraded"] else ""
        lines.append(
            f"  request {entry['request_id']}: "
            f"{entry['latency_us']:,.0f}us{degraded} ({stages})"
        )
    return lines


def _format(result):
    headers = [
        "scenario",
        "R",
        "avail",
        "p50 us",
        "p99 us",
        "p999 us",
        "x999",
        "timeouts",
        "retries",
        "sheds",
        "hedges",
        "eject",
        "restart",
    ]
    rows = []
    flagged = False
    for row in result["scenarios"]:
        c = row["counters"]
        flagged = flagged or bool(row["latency"]["unsupported_percentiles"])
        rows.append(
            [
                row["label"],
                row["replication"],
                f"{row['availability']:.4f}",
                _pctl(row["latency"], "p50_us"),
                _pctl(row["latency"], "p99_us"),
                _pctl(row["latency"], "p999_us"),
                f"{row['p999_vs_healthy']:.2f}x",
                c["timeouts"],
                c["retries"],
                c["sheds"],
                f"{c['hedges_launched']}/{c['hedges_won']}/{c['hedges_lost']}",
                c["breaker_ejections"],
                c["cold_restarts"],
            ]
        )
    lines = [
        f"fault-scenario sweep on {'+'.join(result['tables'])} "
        f"({result['num_requests']} requests at {result['arrival_rate_rps']:.0f} rps, "
        f"{result['num_nodes']} nodes)",
        format_table(headers, rows),
        "x999: p999 latency relative to the healthy baseline row; "
        "hedges: launched/won/lost",
    ]
    if flagged:
        lines.append(
            "* percentile computed from fewer samples than its rank requires"
            " (interpolation quotes ~the max, not a tail estimate)"
        )
    # The "why" behind the worst ratios: per-stage breakdowns of the slowest
    # requests in the three most-inflated scenarios.
    worst = sorted(
        (row for row in result["scenarios"] if row.get("trace")),
        key=lambda row: -row["p999_vs_healthy"],
    )[:3]
    for row in worst:
        lines.extend(_format_top_slow(row))
    return "\n".join(lines)


def _write_outputs(result, smoke):
    result = {"smoke": smoke, **result}
    if smoke:
        # The chaos-smoke CI job uploads the JSON artifact; keep the text
        # artifact full-run only.
        print(_format(result))
    else:
        save_result("cluster_failures", _format(result))
    with open(JSON_PATH, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    if smoke:
        result = run_sweep(eval_multiplier=2, num_requests=300, warmup_requests=120)
    else:
        result = run_sweep()
    _write_outputs(result, smoke)
