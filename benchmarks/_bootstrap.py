"""``sys.path`` bootstrap so benchmarks run without a manual ``PYTHONPATH``.

``python benchmarks/bench_foo.py`` from the repository root puts only the
``benchmarks/`` directory on ``sys.path``, so neither ``repro`` (which lives
under ``src/``) nor the ``benchmarks`` package itself would resolve.  Every
benchmark therefore starts with ``import _bootstrap`` — resolvable precisely
because ``benchmarks/`` is on the path in that mode — which prepends the
repository root and ``src/`` here.  Under pytest the same import works
because pytest inserts each conftest's rootless directory into ``sys.path``;
``conftest.py`` imports this module first so collection resolves
``benchmarks.common`` too.
"""

from __future__ import annotations

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

for _path in (os.path.join(_ROOT, "src"), _ROOT):
    if _path not in sys.path:
        sys.path.insert(0, _path)
