"""Figure 3 — hit-rate curves of the user embedding tables with the most lookups.

The paper computes Mattson stack distances over an infinite LRU per table and
plots the hit rate as a function of the DRAM dedicated to the table.  The
benchmark reports each curve at cache sizes expressed as fractions of the
table's evaluation working set.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import numpy as np

from benchmarks.common import save_result
from benchmarks.conftest import TOP_TABLES
from repro.caching.stack_distance import hit_rate_curve
from repro.simulation.report import format_table

FRACTIONS = [0.05, 0.1, 0.2, 0.4, 0.8, 1.2]


def run_figure3(bundle):
    rows = []
    curves = {}
    for name in TOP_TABLES:
        workload = bundle[name]
        sizes = [max(1, int(round(workload.eval_unique * f))) for f in FRACTIONS]
        curve = hit_rate_curve(workload.evaluation, cache_sizes=sizes)
        curves[name] = curve
        rows.append(
            [name] + [f"{rate:.2f}" for rate in curve.hit_rates]
        )
    headers = ["table"] + [f"cache={f:.2f}x WS" for f in FRACTIONS]
    return format_table(headers, rows), curves


def test_fig03_hit_rate_curves(bundle, benchmark):
    table, curves = benchmark.pedantic(run_figure3, args=(bundle,), rounds=1, iterations=1)
    save_result("fig03_hit_rate_curves", table)
    for name, curve in curves.items():
        # Curves are monotone and saturate below 1 - compulsory-miss rate.
        assert (np.diff(curve.hit_rates) >= -1e-9).all()
        assert curve.hit_rates[-1] <= 1.0
    # Table 2 (lowest compulsory-miss rate) caches best at the largest size.
    assert curves["table2"].hit_rates[-1] >= curves["table6"].hit_rates[-1] - 0.05
