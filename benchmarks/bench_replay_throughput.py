"""Replay-engine throughput: reference loop vs. vectorized batch engine.

Times :func:`repro.caching.replay.replay_table_cache` (the per-vector
reference loop) against :func:`repro.caching.engine.replay_table_cache_batched`
on the standard synthetic workload (table2, SHP placement) over a long
steady-state evaluation stream, and verifies that both produce bit-identical
``ReplayStats`` counters while timing them.

Three configurations cover the replay regimes the repository actually runs:

* ``placement-study`` — unlimited cache, cache-all-block prefetch: the replay
  behind the paper's placement evaluations (Figures 6, 8, 9).  This is the
  headline configuration whose speedup seeds the perf trajectory.
* ``serving-tuned`` — limited cache with the tuned access-threshold policy:
  Bandana's deployed serving configuration (Figure 12 operating point).
* ``baseline-no-prefetch`` — limited cache, no prefetching: the paper's
  comparison baseline.

Results are printed, persisted under ``benchmarks/results/`` and written as
machine-readable JSON to ``BENCH_replay_throughput.json`` at the repository
root (lookups/sec per engine and configuration, plus the headline speedup) so
future PRs can track the perf trajectory.
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

import json
import os
import time

import numpy as np

from benchmarks.common import (
    build_table_workload,
    cache_sizes_for,
    save_result,
    threshold_candidates,
)
from repro.caching.engine import BatchReplayEngine
from repro.caching.replay import replay_table_cache
from repro.caching.policies import (
    AccessThresholdPolicy,
    CacheAllBlockPolicy,
    NoPrefetchPolicy,
)
from repro.workloads import scaled_table_specs

TABLE = "table2"
#: Steady-state multiplier over the standard evaluation trace length.
EVAL_MULTIPLIER = 8
#: Interleaved timing rounds per engine (best-of is reported).
ROUNDS = 3

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_replay_throughput.json")

#: Steady-state multiplier of the CI-sized ``smoke_wall_clock`` section
#: (the loose perf-track leg re-times this configuration on every runner).
SMOKE_EVAL_MULTIPLIER = 1


def _counters(stats):
    return stats.counters()


def _time_config(queries, layout, make_policy, cache_size, vector_bytes=128):
    """Best-of-N interleaved timing of both engines; returns a result dict."""
    ref_times, bat_times = [], []
    ref_stats = bat_stats = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        ref_stats = replay_table_cache(
            queries, layout, make_policy(), cache_size=cache_size,
            vector_bytes=vector_bytes,
        )
        ref_times.append(time.perf_counter() - start)

        engine = BatchReplayEngine(
            layout, make_policy(), cache_size=cache_size, vector_bytes=vector_bytes
        )
        start = time.perf_counter()
        bat_stats = engine.replay(queries)
        bat_times.append(time.perf_counter() - start)

    if _counters(ref_stats) != _counters(bat_stats):
        raise AssertionError(
            f"engine mismatch: reference {_counters(ref_stats)} "
            f"!= batched {_counters(bat_stats)}"
        )
    lookups = ref_stats.lookups
    ref_lps = lookups / min(ref_times)
    bat_lps = lookups / min(bat_times)
    return {
        "lookups": int(lookups),
        "hit_rate": round(ref_stats.hit_rate, 4),
        "reference_lookups_per_sec": round(ref_lps),
        "batched_lookups_per_sec": round(bat_lps),
        "speedup": round(bat_lps / ref_lps, 2),
    }


def run_throughput(workload):
    eval_trace = workload.generator.generate_lookups(
        EVAL_MULTIPLIER * workload.evaluation.num_lookups
    )
    queries = eval_trace.queries
    layout = workload.shp_layout
    sizes = cache_sizes_for(workload)
    thresholds = threshold_candidates(workload)
    serving_cache = sizes[-1]           # 60 % of the evaluation working set
    serving_threshold = thresholds[-1]  # selective tuned operating point

    configs = {
        "placement-study": _time_config(
            queries, layout, CacheAllBlockPolicy, cache_size=None
        ),
        "serving-tuned": _time_config(
            queries,
            layout,
            lambda: AccessThresholdPolicy(workload.access_counts, serving_threshold),
            cache_size=serving_cache,
        ),
        "baseline-no-prefetch": _time_config(
            queries, layout, NoPrefetchPolicy, cache_size=serving_cache
        ),
    }
    result = {
        "table": TABLE,
        "eval_lookups": int(eval_trace.num_lookups),
        "num_vectors": int(workload.spec.num_vectors),
        "serving_cache_size": int(serving_cache),
        "serving_threshold": float(serving_threshold),
        "configs": configs,
        # Headline: the unlimited-cache placement replay, the single most
        # common replay in the repository's experiment suite.
        "speedup": configs["placement-study"]["speedup"],
        "smoke_wall_clock": measure_smoke_wall_clock(workload),
    }
    return result


def measure_smoke_wall_clock(workload=None):
    """CI-sized wall-clock reference: the batched engine on the headline
    (placement-study) configuration over a short evaluation stream.

    ``benchmarks/perf_track.py`` re-times this on every runner and compares
    ``batched_lookups_per_sec`` against the committed number with a loose
    ratio floor — tolerant of runner noise, loud on order-of-magnitude
    engine regressions.  The reference loop is deliberately excluded: it is
    ~10x slower and its parity with the batched engine is already enforced
    counter-for-counter by :func:`_time_config`.
    """
    if workload is None:
        spec = scaled_table_specs(1.0 / 1000.0, names=[TABLE])[TABLE]
        workload = build_table_workload(spec, seed=101)
    eval_trace = workload.generator.generate_lookups(
        SMOKE_EVAL_MULTIPLIER * workload.evaluation.num_lookups
    )
    times = []
    stats = None
    for _ in range(ROUNDS):
        engine = BatchReplayEngine(workload.shp_layout, CacheAllBlockPolicy())
        start = time.perf_counter()
        stats = engine.replay(eval_trace.queries)
        times.append(time.perf_counter() - start)
    lookups = int(stats.lookups)
    return {
        "eval_lookups": lookups,
        "hit_rate": round(stats.hit_rate, 4),
        "batched_lookups_per_sec": round(lookups / min(times)),
    }


def _format_table(result):
    lines = [
        f"replay throughput on {result['table']} "
        f"({result['eval_lookups']} lookups, {result['num_vectors']} vectors)",
        f"{'config':<22} {'hit':>5} {'reference/s':>12} {'batched/s':>12} {'speedup':>8}",
    ]
    for name, cfg in result["configs"].items():
        lines.append(
            f"{name:<22} {cfg['hit_rate']:>5.2f} "
            f"{cfg['reference_lookups_per_sec']:>12,} "
            f"{cfg['batched_lookups_per_sec']:>12,} {cfg['speedup']:>7.2f}x"
        )
    lines.append(f"headline speedup (placement-study): {result['speedup']:.2f}x")
    return "\n".join(lines)


def _write_outputs(result):
    save_result("replay_throughput", _format_table(result))
    with open(JSON_PATH, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")


def test_replay_throughput(bundle):
    result = run_throughput(bundle[TABLE])
    _write_outputs(result)
    # The acceptance bar for the vectorized engine: at least 5x the reference
    # loop on the headline configuration (counters already verified equal).
    assert result["speedup"] >= 5.0, result


if __name__ == "__main__":
    spec = scaled_table_specs(1.0 / 1000.0, names=[TABLE])[TABLE]
    result = run_throughput(build_table_workload(spec, seed=101))
    _write_outputs(result)
    print(f"headline speedup: {result['speedup']:.2f}x")
