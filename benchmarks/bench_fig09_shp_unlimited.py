"""Figure 9 — effective bandwidth increase of SHP placement, unlimited cache.

SHP is trained on traces of increasing length (the paper uses 200 M / 1 B /
5 B requests) and evaluated on a held-out trace: more training data produces a
better placement, and the per-table gains follow the tables' cacheability
(table 2 highest, table 8 lowest).
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import save_result
from repro.partitioning import SHPPartitioner
from repro.simulation.experiment import ExperimentSweep
from repro.simulation.runner import unlimited_cache_bandwidth_increase

#: Training-trace length as a multiple of the evaluation trace, mirroring the
#: paper's 200 M / 1 B / 5 B sweep (0.2x / 1x / 5x of the evaluation trace).
TRAINING_RATIOS = [0.2, 1.0, 3.0]
TABLES = ["table1", "table2", "table6", "table7", "table8"]


def run_figure9(bundle):
    sweep = ExperimentSweep("figure9", "SHP placement, unlimited cache, per training size")
    gains = {}
    for name in TABLES:
        workload = bundle[name]
        total_queries = len(workload.train)
        for ratio in TRAINING_RATIOS:
            num_queries = max(2, int(round(total_queries * ratio / max(TRAINING_RATIOS))))
            training = workload.train.head(num_queries)
            layout = (
                SHPPartitioner(vectors_per_block=32, num_iterations=12, seed=1)
                .partition(workload.spec.num_vectors, trace=training)
                .layout(32)
            )
            gain = unlimited_cache_bandwidth_increase(workload.evaluation, layout)
            gains[(name, ratio)] = gain
            sweep.add({"table": name, "training_ratio": ratio}, {"bw_increase": gain})
    return sweep, gains


def test_fig09_shp_unlimited(bundle, benchmark):
    sweep, gains = benchmark.pedantic(run_figure9, args=(bundle,), rounds=1, iterations=1)
    save_result("fig09_shp_unlimited", sweep.to_table())
    largest = max(TRAINING_RATIOS)
    smallest = min(TRAINING_RATIOS)
    # More training data never hurts much and usually helps (Figure 9).
    for name in ["table1", "table2"]:
        assert gains[(name, largest)] >= gains[(name, smallest)] * 0.9
    # Cacheable tables gain far more than the near-uniform table 8.
    assert gains[("table2", largest)] > gains[("table8", largest)]
    assert gains[("table2", largest)] > 1.0  # > 100% increase
