"""Figure 15 — end-to-end effective bandwidth versus SHP training-set size.

The whole pipeline is rebuilt with placements trained on increasing slices of
the training trace (the paper's 200 M / 1 B / 5 B sweep): more training data
improves the placement and therefore the end-to-end gain.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import save_result
from repro.core.bandana import BandanaStore
from repro.core.config import BandanaConfig
from repro.simulation.experiment import ExperimentSweep
from repro.simulation.runner import simulate_store
from repro.workloads.trace import ModelTrace

TABLES = ["table1", "table2", "table6", "table7"]
TRAINING_FRACTIONS = [0.1, 0.4, 1.0]


def run_figure15(bundle):
    eval_trace = ModelTrace({name: bundle[name].evaluation for name in TABLES})
    num_vectors = {name: bundle[name].spec.num_vectors for name in TABLES}
    total_working_set = sum(bundle[name].eval_unique for name in TABLES)
    budget = int(round(total_working_set * 1.2))
    sweep = ExperimentSweep("figure15", "end-to-end gain vs SHP training-set size")
    overall = {}
    for fraction in TRAINING_FRACTIONS:
        train = ModelTrace(
            {
                name: bundle[name].train.head(
                    max(2, int(round(len(bundle[name].train) * fraction)))
                )
                for name in TABLES
            }
        )
        config = BandanaConfig(
            total_cache_vectors=budget,
            partitioner="shp",
            shp_iterations=8,
            mini_cache_sampling_rate=0.25,
            seed=4,
        )
        store = BandanaStore.build(train, config, num_vectors=num_vectors)
        result = simulate_store(store, eval_trace)
        overall[fraction] = result.bandwidth_increase
        for name, table_result in result.per_table.items():
            sweep.add(
                {"training_fraction": fraction, "table": name},
                {"bw_increase": table_result.bandwidth_increase},
            )
        sweep.add(
            {"training_fraction": fraction, "table": "ALL"},
            {"bw_increase": result.bandwidth_increase},
        )
    return sweep, overall


def test_fig15_training_size(bundle, benchmark):
    sweep, overall = benchmark.pedantic(run_figure15, args=(bundle,), rounds=1, iterations=1)
    save_result("fig15_training_size", sweep.to_table())
    fractions = sorted(overall)
    # Every training size must produce a positive end-to-end gain.  Note: at
    # this reduced scale the *monotone growth* with training size that the
    # paper reports does not always hold, because the admission thresholds are
    # absolute access counts and longer training traces inflate every count
    # (see EXPERIMENTS.md for the discussion); the benchmark therefore only
    # checks positivity for all sizes.
    assert all(overall[f] > 0 for f in fractions)
