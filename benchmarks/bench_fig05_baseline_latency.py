"""Figure 5 — mean/P99 latency versus application throughput for the baseline policy.

The baseline policy issues a 4 KB block read but uses only 128 B of it (~3 %
effective bandwidth), so the device saturates at a small application
throughput; reading 4 KB of useful data per block (100 % effective bandwidth)
sustains ~32× more application throughput before latency spikes.
"""

import _bootstrap  # noqa: F401  (sys.path setup: run benchmarks from the repo root)

from benchmarks.common import save_result
from repro.nvm.latency import NVMLatencyModel
from repro.simulation.report import format_table

THROUGHPUTS_MBPS = [25, 50, 75, 100, 500, 1000, 2000]


def run_figure5():
    model = NVMLatencyModel()
    baseline_fraction = 128 / 4096
    rows = []
    for throughput in THROUGHPUTS_MBPS:
        baseline = model.application_latency(throughput, baseline_fraction)
        full = model.application_latency(throughput, 1.0)
        rows.append(
            [
                throughput,
                f"{baseline.mean_us:.0f}",
                f"{baseline.p99_us:.0f}",
                f"{full.mean_us:.0f}",
                f"{full.p99_us:.0f}",
            ]
        )
    return format_table(
        [
            "app throughput (MB/s)",
            "baseline mean (us)",
            "baseline p99 (us)",
            "100% eff. BW mean (us)",
            "100% eff. BW p99 (us)",
        ],
        rows,
    )


def test_fig05_baseline_latency(benchmark):
    table = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    save_result("fig05_baseline_latency", table)
    model = NVMLatencyModel()
    baseline_fraction = 128 / 4096
    # At 100 MB/s of application traffic the baseline is already saturated
    # while the 100% effective-bandwidth configuration is not (Figure 5).
    assert model.application_latency(100, baseline_fraction).mean_us > 10 * model.application_latency(100, 1.0).mean_us
    # At low load the two configurations are comparable.
    assert model.application_latency(10, baseline_fraction).mean_us < 3 * model.application_latency(10, 1.0).mean_us
