"""Quickstart: store one embedding table on (simulated) NVM with Bandana.

The script walks the full pipeline on a single scaled-down table:

1. generate a production-like lookup trace (training + evaluation slices),
2. build a :class:`repro.BandanaStore` — SHP placement, DRAM cache sizing and
   miniature-cache threshold tuning happen inside ``build`` —,
3. serve the evaluation trace and report hit rate, effective bandwidth and the
   block-read reduction versus the paper's baseline policy.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import BandanaConfig, BandanaStore
from repro.embeddings import EmbeddingModel, EmbeddingTable, synthesize_topic_vectors
from repro.simulation import simulate_store
from repro.workloads import (
    SyntheticTraceGenerator,
    paper_shaped_lookups,
    scaled_table_specs,
)
from repro.workloads.trace import ModelTrace


def main() -> None:
    # ------------------------------------------------------------------ data
    # Use the paper's "table 2" (the busiest user-embedding table), scaled to
    # 1/1000 of its production size so the example runs in seconds.
    spec = scaled_table_specs(1 / 1000, names=["table2"])["table2"]
    eval_lookups = paper_shaped_lookups(spec)
    generator = SyntheticTraceGenerator(spec, seed=1, expected_lookups=eval_lookups)

    train_trace = ModelTrace({spec.name: generator.generate_lookups(3 * eval_lookups)})
    eval_trace = ModelTrace({spec.name: generator.generate_lookups(eval_lookups)})

    # Synthetic embedding values whose geometry mirrors the workload's
    # co-access topics (only needed because we want real vectors back).
    values = synthesize_topic_vectors(generator.topic_of(), dim=64, noise=0.45, seed=2)
    embedding_model = EmbeddingModel(
        {spec.name: EmbeddingTable(spec.name, spec.num_vectors, dim=64, values=values)}
    )

    # ----------------------------------------------------------------- build
    working_set = eval_trace[spec.name].unique_vectors().size
    config = BandanaConfig(
        total_cache_vectors=int(round(working_set * 1.3)),
        partitioner="shp",
        mini_cache_sampling_rate=0.25,
        seed=0,
    )
    store = BandanaStore.build(train_trace, config, embedding_model=embedding_model)
    state = store.tables[spec.name]
    print(f"table {spec.name}: {spec.num_vectors} vectors, "
          f"{state.layout.num_blocks} NVM blocks of {config.block_bytes} B")
    print(f"DRAM cache: {state.cache_config.cache_size_vectors} vectors, "
          f"tuned admission threshold t={state.cache_config.threshold:.0f}")

    # ----------------------------------------------------------------- serve
    first_query = eval_trace[spec.name].queries[0]
    vectors = store.lookup(spec.name, first_query)
    print(f"served a query of {len(first_query)} ids -> vectors of shape {vectors.shape}")

    result = simulate_store(store, eval_trace)
    stats = store.table_stats()[spec.name]
    bandwidth = store.effective_bandwidth()
    print(f"evaluation trace: {stats.lookups} lookups, hit rate {stats.hit_rate:.2f}")
    print(f"effective bandwidth: {bandwidth.fraction:.2f} application bytes per NVM byte "
          f"(baseline policy: {128 / 4096:.3f})")
    print(f"block reads vs no-prefetch baseline: "
          f"{result.total_block_reads} vs {result.total_baseline_block_reads} "
          f"({100 * result.bandwidth_increase:+.0f}% effective bandwidth)")

    # TCO framing from the paper's introduction: DRAM needed with Bandana
    # versus keeping the whole table in DRAM.
    all_dram_bytes = embedding_model.nbytes
    print(f"DRAM footprint: {store.dram_bytes() / 1024:.0f} KiB cached "
          f"vs {all_dram_bytes / 1024:.0f} KiB for an all-DRAM deployment")


if __name__ == "__main__":
    main()
