"""Capacity planning: how much DRAM does each embedding table deserve?

A datacenter operator running Bandana has a fixed DRAM budget per host and
must decide (a) how to split it across embedding tables, (b) which admission
threshold to use per table, and (c) whether the retraining cadence fits the
NVM endurance budget.  The paper answers (a) with hit-rate curves from
miniature caches and a Dynacache-style static assignment, (b) with the
miniature-cache threshold search, and (c) with a drive-writes-per-day check.

This example walks all three steps for four tables and prints the resulting
plan, comparing the hit-rate-aware DRAM split against a naive proportional
split.

Run with ``python examples/capacity_planning.py``.
"""

from __future__ import annotations

from repro.caching import (
    MiniatureCacheTuner,
    allocate_dram_budget,
    hit_rate_curve,
)
from repro.nvm import EnduranceTracker
from repro.partitioning import SHPPartitioner
from repro.simulation.report import format_table
from repro.workloads import (
    SyntheticTraceGenerator,
    paper_shaped_lookups,
    scaled_table_specs,
)
from repro.workloads.characterization import access_counts

TABLES = ["table1", "table2", "table6", "table8"]
SCALE = 1 / 1000
RETRAININGS_PER_DAY = 15  # the paper quotes 10-20 table rewrites per day


def main() -> None:
    specs = scaled_table_specs(SCALE, names=TABLES)

    # ------------------------------------------------------------ workloads
    workloads = {}
    for index, (name, spec) in enumerate(specs.items()):
        lookups = paper_shaped_lookups(spec)
        generator = SyntheticTraceGenerator(spec, seed=50 + index, expected_lookups=lookups)
        train = generator.generate_lookups(3 * lookups)
        tune = generator.generate_lookups(lookups)
        layout = (
            SHPPartitioner(vectors_per_block=32, num_iterations=10, seed=index)
            .partition(spec.num_vectors, trace=train)
            .layout(32)
        )
        workloads[name] = {
            "spec": spec,
            "train": train,
            "tune": tune,
            "layout": layout,
            "counts": access_counts(train),
            "curve": hit_rate_curve(tune),
        }

    # -------------------------------------------------- DRAM split (step a)
    total_budget = int(
        0.9 * sum(w["tune"].unique_vectors().size for w in workloads.values())
    )
    curves = {name: w["curve"] for name, w in workloads.items()}
    hit_rate_split = allocate_dram_budget(curves, total_budget)
    total_lookups = sum(w["tune"].num_lookups for w in workloads.values())
    proportional_split = {
        name: int(round(total_budget * w["tune"].num_lookups / total_lookups))
        for name, w in workloads.items()
    }

    def expected_hits(split):
        return sum(curves[name].hits_at(split[name]) for name in workloads)

    print(f"DRAM budget: {total_budget} cached vectors "
          f"({total_budget * 128 / 1024:.0f} KiB at 128 B/vector)\n")

    # ------------------------------------------- thresholds + plan (step b)
    rows = []
    for name, workload in workloads.items():
        cache_size = max(32, hit_rate_split[name])
        counts = workload["counts"]
        touched = counts[counts > 0]
        thresholds = [0.0] + sorted(
            {float(int(v)) for v in (touched.mean(), *map(float, [50, 100, 200]))}
        )
        tuner = MiniatureCacheTuner(sampling_rate=0.25, seed=3, thresholds=thresholds)
        selection = tuner.select_threshold(
            workload["tune"], workload["layout"], counts, cache_size
        )
        rows.append(
            [
                name,
                workload["spec"].num_vectors,
                hit_rate_split[name],
                proportional_split[name],
                f"{selection.threshold:.0f}",
                f"{curves[name].hit_rate_at(cache_size):.2f}",
            ]
        )
    print(format_table(
        [
            "table",
            "vectors",
            "DRAM (hit-rate split)",
            "DRAM (proportional)",
            "admission threshold",
            "expected hit rate",
        ],
        rows,
    ))
    improvement = expected_hits(hit_rate_split) / max(1.0, expected_hits(proportional_split))
    print(f"\nhit-rate-aware split serves {100 * (improvement - 1):+.1f}% more lookups from DRAM "
          "than a proportional split at the same budget")

    # ------------------------------------------------- endurance (step c)
    total_bytes = sum(w["spec"].num_vectors * 128 for w in workloads.values())
    tracker = EnduranceTracker(capacity_bytes=total_bytes, dwpd_limit=30)
    tracker.record_write(RETRAININGS_PER_DAY * total_bytes)
    tracker.advance_time(1.0)
    print(f"\nendurance: {RETRAININGS_PER_DAY} retraining pushes/day = "
          f"{tracker.drive_writes_per_day:.0f} device writes/day "
          f"({'within' if tracker.within_budget else 'EXCEEDS'} the 30 DWPD budget, "
          f"headroom {tracker.headroom():.0f})")


if __name__ == "__main__":
    main()
