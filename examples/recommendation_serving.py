"""Serving a DLRM-style recommendation model from NVM-backed embeddings.

The scenario from the paper's introduction: a ranking service must score many
candidate posts per user request.  User-embedding tables are moved from DRAM
to NVM behind a :class:`repro.BandanaStore`; the dense ranking network stays in
DRAM and consumes the pooled embedding features the store returns.

The script builds a two-table model (a "pages liked" table and a "clicks"
table), replays a stream of ranking requests through the store and through an
all-DRAM reference, and reports ranking agreement, cache behaviour, NVM load
and the DRAM cost of both deployments.

Run with ``python examples/recommendation_serving.py``.
"""

from __future__ import annotations

import numpy as np

from repro import BandanaConfig, BandanaStore
from repro.embeddings import (
    EmbeddingModel,
    EmbeddingTable,
    RecommendationModel,
    synthesize_topic_vectors,
)
from repro.nvm import DRAMModel, NVMLatencyModel
from repro.workloads import SyntheticTraceGenerator, scaled_table_specs, paper_shaped_lookups
from repro.workloads.trace import ModelTrace


def build_workload():
    """Two user-embedding tables with consistent traces and values."""
    specs = scaled_table_specs(1 / 1000, names=["table1", "table7"])
    generators = {}
    train, evaluation = {}, {}
    embedding_model = EmbeddingModel()
    for index, (name, spec) in enumerate(specs.items()):
        lookups = paper_shaped_lookups(spec)
        generator = SyntheticTraceGenerator(spec, seed=10 + index, expected_lookups=lookups)
        generators[name] = generator
        train[name] = generator.generate_lookups(3 * lookups)
        evaluation[name] = generator.generate_lookups(lookups // 2)
        values = synthesize_topic_vectors(generator.topic_of(), dim=32, noise=0.45, seed=index)
        embedding_model.add_table(
            EmbeddingTable(name, spec.num_vectors, dim=32, values=values)
        )
    return specs, ModelTrace(train), ModelTrace(evaluation), embedding_model


def main() -> None:
    specs, train_trace, eval_trace, embedding_model = build_workload()
    ranking_model = RecommendationModel(embedding_model, hidden_dims=(64, 32), seed=0)

    working_set = sum(t.unique_vectors().size for t in eval_trace.tables.values())
    store = BandanaStore.build(
        train_trace,
        BandanaConfig(
            total_cache_vectors=int(working_set * 0.9),
            partitioner="shp",
            mini_cache_sampling_rate=0.25,
            seed=1,
        ),
        embedding_model=embedding_model,
    )
    print("per-table cache configuration:")
    for name, state in store.tables.items():
        print(
            f"  {name}: cache {state.cache_config.cache_size_vectors} vectors, "
            f"admission threshold t={state.cache_config.threshold:.0f}"
        )

    # ---------------------------------------------------------------- serving
    # Interleave the tables' queries into ranking requests: each request reads
    # one query from every table, scores it, and compares against the all-DRAM
    # reference (they must agree exactly — Bandana changes placement, not data).
    names = list(eval_trace.tables)
    num_requests = min(len(eval_trace[name]) for name in names)
    mismatches = 0
    scores = []
    for i in range(num_requests):
        request = {name: eval_trace[name].queries[i] for name in names}
        pooled_from_store = store.pooled_features(request)
        score = ranking_model.score(request, pooled=pooled_from_store)
        reference = ranking_model.score(request)
        if not np.isclose(score, reference):
            mismatches += 1
        scores.append(score)

    stats = store.aggregate_stats()
    bandwidth = store.effective_bandwidth()
    print(f"\nserved {num_requests} ranking requests "
          f"({stats.lookups} embedding lookups), score mismatches vs DRAM: {mismatches}")
    print(f"cache hit rate {stats.hit_rate:.2f}, "
          f"prefetches admitted {stats.prefetch_admitted}, used {stats.prefetch_hits}")
    print(f"NVM blocks read: {stats.block_reads} "
          f"(effective bandwidth {bandwidth.fraction:.2f} app bytes / NVM byte)")

    # ----------------------------------------------------------- latency/TCO
    latency_model = NVMLatencyModel()
    app_mbps = 150.0
    baseline = latency_model.application_latency(app_mbps, 128 / 4096)
    bandana = latency_model.application_latency(app_mbps, min(1.0, bandwidth.fraction))
    print(f"\nat {app_mbps:.0f} MB/s of embedding traffic: "
          f"baseline policy mean latency {baseline.mean_us:.0f} us, "
          f"Bandana {bandana.mean_us:.0f} us")

    dram = DRAMModel()
    saving = dram.savings_vs_all_dram(embedding_model.nbytes, store.dram_bytes())
    print(f"TCO: {100 * saving:.0f}% cheaper than keeping both tables fully in DRAM "
          f"({store.dram_bytes() / 1024:.0f} KiB DRAM cache vs "
          f"{embedding_model.nbytes / 1024:.0f} KiB all-DRAM)")


if __name__ == "__main__":
    main()
