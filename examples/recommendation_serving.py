"""Serving a DLRM-style recommendation model from NVM-backed embeddings.

The scenario from the paper's introduction: a ranking service must score many
candidate posts per user request.  User-embedding tables are moved from DRAM
to NVM behind a :class:`repro.BandanaStore`; the dense ranking network stays
in DRAM and consumes the pooled embedding features the store returns.

The script builds a two-table model (a "pages liked" table and a "clicks"
table), checks that the NVM-backed store ranks exactly like an all-DRAM
reference, and then drives the store through the event-driven batch-serving
front-end (:mod:`repro.serving`): an open-loop Poisson arrival stream is
queued, dynamically batched and priced against the NVM device's
load-feedback latency model, yielding the end-to-end latency percentiles,
throughput and SLO behaviour a user of the service would see — batched
versus unbatched, at a comfortable load and near device saturation.

Two production-shaped variations follow: the same overload served on a
genuinely *shared* NVM device (``ServingConfig.device`` — both tables
pinned to one physical device, so one table's miss burst inflates the
other's tail) with admission control shedding against the SLO, and a
**closed-loop** client population (fixed concurrency + think time) whose
feedback turns the open loop's queueing blow-up into a throughput plateau.

Run with ``python examples/recommendation_serving.py`` (no ``PYTHONPATH``
needed).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

import numpy as np

from repro import BandanaConfig, BandanaStore, ServingConfig
from repro.core.config import DeviceBankConfig
from repro.embeddings import (
    EmbeddingModel,
    EmbeddingTable,
    RecommendationModel,
    synthesize_topic_vectors,
)
from repro.nvm import DRAMModel
from repro.serving import simulate_serving
from repro.workloads import SyntheticTraceGenerator, scaled_table_specs, paper_shaped_lookups
from repro.workloads.trace import ModelTrace


def build_workload():
    """Two user-embedding tables with consistent traces and values."""
    specs = scaled_table_specs(1 / 1000, names=["table1", "table7"])
    train, evaluation = {}, {}
    embedding_model = EmbeddingModel()
    for index, (name, spec) in enumerate(specs.items()):
        lookups = paper_shaped_lookups(spec)
        generator = SyntheticTraceGenerator(spec, seed=10 + index, expected_lookups=lookups)
        train[name] = generator.generate_lookups(3 * lookups)
        evaluation[name] = generator.generate_lookups(lookups)
        values = synthesize_topic_vectors(generator.topic_of(), dim=32, noise=0.45, seed=index)
        embedding_model.add_table(
            EmbeddingTable(name, spec.num_vectors, dim=32, values=values)
        )
    return specs, ModelTrace(train), ModelTrace(evaluation), embedding_model


def check_ranking_agreement(store, ranking_model, eval_trace, num_requests=32):
    """The store must rank exactly like all-DRAM: Bandana moves data, not math."""
    names = list(eval_trace.tables)
    mismatches = 0
    for i in range(num_requests):
        request = {name: eval_trace[name].queries[i] for name in names}
        pooled_from_store = store.pooled_features(request)
        score = ranking_model.score(request, pooled=pooled_from_store)
        if not np.isclose(score, ranking_model.score(request)):
            mismatches += 1
    return mismatches


def main() -> None:
    specs, train_trace, eval_trace, embedding_model = build_workload()
    ranking_model = RecommendationModel(embedding_model, hidden_dims=(64, 32), seed=0)

    working_set = sum(t.unique_vectors().size for t in eval_trace.tables.values())
    store = BandanaStore.build(
        train_trace,
        BandanaConfig(
            total_cache_vectors=int(working_set * 0.9),
            partitioner="shp",
            mini_cache_sampling_rate=0.25,
            seed=1,
        ),
        embedding_model=embedding_model,
    )
    print("per-table cache configuration:")
    for name, state in store.tables.items():
        print(
            f"  {name}: cache {state.cache_config.cache_size_vectors} vectors, "
            f"admission threshold t={state.cache_config.threshold:.0f}"
        )

    mismatches = check_ranking_agreement(store, ranking_model, eval_trace)
    print(f"\nranking agreement vs all-DRAM reference: {mismatches} mismatches")

    # ---------------------------------------------------------------- serving
    # Drive the same evaluation stream through the batch-serving front-end at
    # two offered loads: comfortable, and past the device's saturation point.
    slo_us = 2000.0
    print(f"\nopen-loop serving (Poisson arrivals, SLO {slo_us:.0f} us):")
    print(f"{'rate (rps)':>11} | {'arm':<9} | {'p50':>6} | {'p95':>7} | "
          f"{'p99':>7} | {'tput (rps)':>10} | {'SLO miss':>8} | {'hit rate':>8}")
    reports = {}
    for rate in (4_000, 40_000):
        for arm, knobs in (
            ("batched", dict(max_batch_requests=16, max_linger_us=300.0)),
            ("unbatched", dict(max_batch_requests=1)),
        ):
            report = simulate_serving(
                store,
                eval_trace,
                ServingConfig(arrival_rate_rps=rate, slo_latency_us=slo_us, **knobs),
            )
            reports[(rate, arm)] = report
            latency = report.latency
            print(
                f"{rate:>11,} | {arm:<9} | {latency.p50_us:>6,.0f} | "
                f"{latency.p95_us:>7,.0f} | {latency.p99_us:>7,.0f} | "
                f"{report.throughput_rps:>10,.0f} | "
                f"{100 * report.slo_violation_rate:>7.1f}% | "
                f"{100 * report.hit_rate:>7.1f}%"
            )

    hot = reports[(40_000, "batched")]
    print(
        f"\nat 40k rps the batcher forms ~{hot.mean_batch_size:.1f}-request "
        f"batches and the device runs at queue depth ~{hot.mean_queue_depth:.0f}; "
        f"steady-state device model cross-check: mean "
        f"{hot.steady_state.mean_us:.0f} us, p99 {hot.steady_state.p99_us:.0f} us "
        f"per read under that load"
    )

    # ------------------------------------------------- shared device + shedding
    # The paper's single host puts *all* tables behind the same physical NVM
    # device.  Re-serve the overload point with both tables pinned to one
    # shared device — cross-table contention the per-table accounting above
    # cannot produce — then let admission control shed against the SLO.
    print("\nshared NVM device at 120k rps (both tables on one device):")
    shared_device = DeviceBankConfig(accounting="shared", devices_per_host=1)
    for label, slack in (("no shedding", None), ("shed at 1.0x SLO backlog", 1.0)):
        report = simulate_serving(
            store,
            eval_trace,
            ServingConfig(
                arrival_rate_rps=120_000,
                slo_latency_us=slo_us,
                max_batch_requests=16,
                max_linger_us=300.0,
                device=shared_device,
                admission_queue_slack=slack,
            ),
        )
        print(
            f"  {label:<24}: p99 {report.latency.p99_us:>7,.0f} us, "
            f"SLO miss {100 * report.slo_violation_rate:>5.1f}%, "
            f"shed {100 * report.shed_rate:>5.1f}% "
            f"({report.requests_shed} requests)"
        )

    # --------------------------------------------------------- closed loop
    # A fixed population of RPC clients (at most one request in flight each,
    # exponential think time) offering the same nominal rate: saturation
    # slows the *clients* down instead of growing the queue without bound.
    clients, think_s = 64, 64 / 40_000
    closed = simulate_serving(
        store,
        eval_trace,
        ServingConfig(
            arrival_process="closed-loop",
            closed_loop_clients=clients,
            closed_loop_think_s=think_s,
            slo_latency_us=slo_us,
            max_batch_requests=16,
            max_linger_us=300.0,
            device=shared_device,
        ),
    )
    print(
        f"\nclosed loop, same offered load ({clients} clients, "
        f"{1e3 * think_s:.1f} ms think = {closed.offered_rate_rps:,.0f} rps "
        f"nominal): tput {closed.throughput_rps:,.0f} rps, "
        f"p99 {closed.latency.p99_us:,.0f} us, "
        f"SLO miss {100 * closed.slo_violation_rate:.1f}% — concurrency is "
        "capped at the population, so the tail stays bounded"
    )

    # ----------------------------------------------------------------- TCO
    dram = DRAMModel()
    saving = dram.savings_vs_all_dram(embedding_model.nbytes, store.dram_bytes())
    print(f"\nTCO: {100 * saving:.0f}% cheaper than keeping both tables fully in DRAM "
          f"({store.dram_bytes() / 1024:.0f} KiB DRAM cache vs "
          f"{embedding_model.nbytes / 1024:.0f} KiB all-DRAM)")


if __name__ == "__main__":
    main()
