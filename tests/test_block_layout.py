"""Unit and property tests for the NVM block layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.block import BlockLayout


class TestBlockLayoutBasics:
    def test_identity_layout(self):
        layout = BlockLayout.identity(100, 32)
        assert layout.num_blocks == 4
        assert layout.block_of([0, 31, 32, 99]).tolist() == [0, 0, 1, 3]
        assert layout.slot_of([0, 31, 33]).tolist() == [0, 31, 1]

    def test_custom_order(self):
        order = np.array([3, 1, 0, 2])
        layout = BlockLayout(order, vectors_per_block=2)
        assert layout.block_of([3, 1]).tolist() == [0, 0]
        assert layout.block_of([0, 2]).tolist() == [1, 1]
        np.testing.assert_array_equal(layout.vectors_in_block(0), [3, 1])

    def test_partial_last_block(self):
        layout = BlockLayout.identity(10, 4)
        assert layout.num_blocks == 3
        assert layout.vectors_in_block(2).tolist() == [8, 9]

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            BlockLayout([0, 0, 1], vectors_per_block=2)
        with pytest.raises(ValueError):
            BlockLayout([0, 1, 5], vectors_per_block=2)

    def test_empty_order_rejected(self):
        with pytest.raises(ValueError):
            BlockLayout([], vectors_per_block=2)

    def test_out_of_range_lookup_rejected(self):
        layout = BlockLayout.identity(10, 4)
        with pytest.raises(IndexError):
            layout.block_of([10])
        with pytest.raises(IndexError):
            layout.vectors_in_block(3)


class TestFanout:
    def test_fanout_single_block(self):
        layout = BlockLayout.identity(64, 32)
        assert layout.fanout([0, 1, 2]) == 1
        assert layout.fanout([0, 32]) == 2

    def test_empty_query_fanout(self):
        layout = BlockLayout.identity(64, 32)
        assert layout.fanout([]) == 0

    def test_average_fanout(self):
        layout = BlockLayout.identity(64, 32)
        assert layout.average_fanout([[0, 1], [0, 32]]) == pytest.approx(1.5)

    def test_average_fanout_empty(self):
        layout = BlockLayout.identity(64, 32)
        assert layout.average_fanout([]) == pytest.approx(0.0)


@given(
    num_vectors=st.integers(min_value=1, max_value=300),
    vectors_per_block=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_layout_roundtrip_property(num_vectors, vectors_per_block, seed):
    """Every vector maps to exactly one (block, slot) and back."""
    order = np.random.default_rng(seed).permutation(num_vectors)
    layout = BlockLayout(order, vectors_per_block)
    ids = np.arange(num_vectors)
    blocks = layout.block_of(ids)
    # Each vector appears in the block it maps to.
    for block_id in range(layout.num_blocks):
        members = layout.vectors_in_block(block_id)
        assert len(members) <= vectors_per_block
        assert (blocks[members] == block_id).all()
    # Blocks partition the table.
    total = sum(layout.vectors_in_block(b).size for b in range(layout.num_blocks))
    assert total == num_vectors
