"""Shared fixtures: a small synthetic table/workload reused across the suite.

The fixtures are deliberately tiny (a few thousand vectors, tens of thousands
of lookups) so the full suite runs in well under a minute, while still
exercising the same code paths the benchmarks use at larger scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings import EmbeddingTable, synthesize_topic_vectors
from repro.partitioning import SHPPartitioner
from repro.workloads import SyntheticTraceGenerator, TableSpec
from repro.workloads.trace import Trace

VECTORS_PER_BLOCK = 32


def make_spec(
    name: str = "test-table",
    num_vectors: int = 4096,
    avg_lookups: float = 24.0,
    compulsory: float = 0.15,
    alpha: float = 0.9,
) -> TableSpec:
    """A small table spec usable by any test."""
    return TableSpec(
        name=name,
        num_vectors=num_vectors,
        avg_lookups_per_query=avg_lookups,
        lookup_share=0.25,
        compulsory_miss_rate=compulsory,
        popularity_alpha=alpha,
        num_topics=64,
    )


@pytest.fixture(scope="session")
def small_spec() -> TableSpec:
    return make_spec()


@pytest.fixture(scope="session")
def generator(small_spec) -> SyntheticTraceGenerator:
    return SyntheticTraceGenerator(small_spec, seed=7, expected_lookups=6000)


@pytest.fixture(scope="session")
def train_trace(generator) -> Trace:
    return generator.generate_lookups(12000)


@pytest.fixture(scope="session")
def eval_trace(generator) -> Trace:
    return generator.generate_lookups(6000)


@pytest.fixture(scope="session")
def shp_layout(small_spec, train_trace):
    partitioner = SHPPartitioner(
        vectors_per_block=VECTORS_PER_BLOCK, num_iterations=8, seed=0
    )
    result = partitioner.partition(small_spec.num_vectors, trace=train_trace)
    return result.layout(VECTORS_PER_BLOCK)


@pytest.fixture(scope="session")
def embedding_table(small_spec, generator) -> EmbeddingTable:
    values = synthesize_topic_vectors(
        generator.topic_of(), dim=16, noise=0.4, seed=3, dtype=np.float32
    )
    return EmbeddingTable(
        small_spec.name, small_spec.num_vectors, dim=16, dtype=np.float32, values=values
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
