"""The reference-vs-fast-path contract of the vectorized batch replay engine.

The batched engine (:mod:`repro.caching.engine`) must produce **bit-identical**
:class:`~repro.caching.replay.ReplayStats` counters — and the same final cache
contents in the same recency order — as the reference per-vector loop, for any
trace, layout, policy and cache size.  These tests sweep randomized traces
across all six policies and degenerate cache sizes to enforce that contract,
plus the ``LRUCache`` positional-insert edge cases the engine has to replicate.
"""

import numpy as np
import pytest

from repro.caching.engine import (
    ArrayLRUCache,
    BatchReplayEngine,
    replay_table_cache_batched,
    replay_table_cache_multi,
)
from repro.caching.lru import LRUCache
from repro.caching.miniature import MiniatureCacheTuner
from repro.caching.policies import (
    AccessThresholdPolicy,
    CacheAllBlockPolicy,
    CombinedPolicy,
    InsertAtPositionPolicy,
    NoPrefetchPolicy,
    ShadowAdmissionPolicy,
)
from repro.caching.replay import ReplayStats, replay_table_cache
from repro.nvm.block import BlockLayout
from repro.nvm.device import NVMDevice
from repro.workloads.trace import Trace


def counters(stats: ReplayStats):
    return stats.counters()


def random_workload(seed: int):
    """A random layout, trace and access counts exercising duplicates/skew."""
    rng = np.random.default_rng(seed)
    num_vectors = int(rng.integers(40, 400))
    vectors_per_block = int(rng.choice([4, 8, 32]))
    layout = BlockLayout(rng.permutation(num_vectors).astype(np.int64), vectors_per_block)
    queries = [
        (rng.integers(0, num_vectors, size=int(rng.integers(1, 12))) ** 2 % num_vectors)
        .astype(np.int64)
        for _ in range(120)
    ]
    access_counts = rng.integers(0, 30, size=num_vectors).astype(np.int64)
    return layout, queries, access_counts


POLICY_FACTORIES = {
    "no-prefetch": lambda counts: NoPrefetchPolicy(),
    "cache-all-block": lambda counts: CacheAllBlockPolicy(),
    "insert-at-position": lambda counts: InsertAtPositionPolicy(0.5),
    "insert-at-bottom": lambda counts: InsertAtPositionPolicy(1.0),
    "shadow-admission": lambda counts: ShadowAdmissionPolicy(
        real_cache_size=30, multiplier=1.5
    ),
    "combined": lambda counts: CombinedPolicy(real_cache_size=30, position=0.7),
    "access-threshold": lambda counts: AccessThresholdPolicy(counts, 10),
}

#: Cache sizes spanning unlimited, comfortable, block-sized, churning and
#: degenerate regimes (clipped to the table size per workload).
CACHE_SIZES = (None, 100, 48, 9, 3, 1, 0)


class TestEngineEquivalence:
    @pytest.mark.parametrize("policy_name", sorted(POLICY_FACTORIES))
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_traces_all_cache_sizes(self, policy_name, seed):
        layout, queries, access_counts = random_workload(seed)
        factory = POLICY_FACTORIES[policy_name]
        for cache_size in CACHE_SIZES:
            if cache_size is not None and cache_size > layout.num_vectors:
                continue
            reference_cache = LRUCache(
                layout.num_vectors if cache_size is None else cache_size
            )
            reference = replay_table_cache(
                queries, layout, factory(access_counts), cache=reference_cache
            )
            engine = BatchReplayEngine(layout, factory(access_counts), cache_size=cache_size)
            batched = engine.replay(queries)
            assert counters(batched) == counters(reference), (policy_name, cache_size)
            # The cache contents and their recency order must match too, so
            # continued serving stays equivalent.
            assert engine.cache.keys() == reference_cache.keys(), (policy_name, cache_size)

    def test_continued_serving_across_calls(self):
        """Serving in many calls equals one reference replay of the stream.

        (Repeated *reference* calls are not the baseline here: the reference
        loop forgets its pending-prefetch set between calls, losing
        prefetch-hit attribution.  The engine carries that state, so online
        serving matches a single uninterrupted replay — the intended
        semantics.)
        """
        layout, queries, access_counts = random_workload(99)
        reference = replay_table_cache(
            queries, layout, AccessThresholdPolicy(access_counts, 5), cache_size=64
        )
        engine = BatchReplayEngine(
            layout, AccessThresholdPolicy(access_counts, 5), cache_size=64
        )
        for query in queries:  # one call per query, like BandanaStore.lookup
            engine.replay_query(query)
        assert counters(engine.stats) == counters(reference)

    def test_device_accounting_matches(self):
        layout, queries, _ = random_workload(7)
        ref_device = NVMDevice(num_blocks=layout.num_blocks)
        bat_device = NVMDevice(num_blocks=layout.num_blocks)
        reference = replay_table_cache(
            queries, layout, CacheAllBlockPolicy(), cache_size=32, device=ref_device
        )
        batched = replay_table_cache_batched(
            queries, layout, CacheAllBlockPolicy(), cache_size=32, device=bat_device
        )
        assert counters(batched) == counters(reference)
        assert batched.total_latency_us == reference.total_latency_us
        assert bat_device.blocks_read == ref_device.blocks_read

    def test_out_of_range_ids_rejected(self):
        layout = BlockLayout.identity(64, 32)
        engine = BatchReplayEngine(layout, NoPrefetchPolicy(), cache_size=8)
        with pytest.raises(IndexError):
            engine.replay_query(np.array([3, 64]))
        with pytest.raises(IndexError):
            engine.replay_query(np.array([-1]))

    def test_geometry_mismatch_rejected(self):
        layout = BlockLayout.identity(64, 32)
        stats = ReplayStats(vector_bytes=64, block_bytes=1024)
        with pytest.raises(ValueError):
            BatchReplayEngine(layout, NoPrefetchPolicy(), cache_size=8, stats=stats)

    def test_multi_replay_matches_individual_replays(self):
        layout, queries, access_counts = random_workload(3)
        thresholds = (0, 5, 12)
        policies = [NoPrefetchPolicy()] + [
            AccessThresholdPolicy(access_counts, t) for t in thresholds
        ]
        sizes = [40] * len(policies)
        multi = replay_table_cache_multi(queries, layout, policies, sizes)
        for policy, stats in zip(policies, multi):
            fresh = (
                NoPrefetchPolicy()
                if isinstance(policy, NoPrefetchPolicy)
                else AccessThresholdPolicy(access_counts, policy.threshold)
            )
            alone = replay_table_cache(queries, layout, fresh, cache_size=40)
            assert counters(stats) == counters(alone)

    def test_multi_replay_rejects_mismatched_lengths(self):
        layout = BlockLayout.identity(64, 32)
        with pytest.raises(ValueError):
            replay_table_cache_multi(
                [np.array([0])], layout, [NoPrefetchPolicy()], cache_sizes=[4, 8]
            )


class TestMiniatureTunerEquivalence:
    def test_single_pass_matches_reference_loop(self):
        layout, queries, access_counts = random_workload(11)
        trace = Trace(queries, num_vectors=layout.num_vectors)
        batched = MiniatureCacheTuner(
            sampling_rate=0.4, seed=2, thresholds=(0, 5, 12), use_batched_engine=True
        ).select_threshold(trace, layout, access_counts, cache_size=60)
        reference = MiniatureCacheTuner(
            sampling_rate=0.4, seed=2, thresholds=(0, 5, 12), use_batched_engine=False
        ).select_threshold(trace, layout, access_counts, cache_size=60)
        assert batched.threshold == reference.threshold
        assert batched.gains == reference.gains
        assert counters(batched.baseline_stats) == counters(reference.baseline_stats)
        for threshold in (0, 5, 12):
            assert counters(batched.per_threshold_stats[threshold]) == counters(
                reference.per_threshold_stats[threshold]
            )

    def test_hoisted_sampling_matches_per_size_runs(self):
        layout, queries, access_counts = random_workload(13)
        trace = Trace(queries, num_vectors=layout.num_vectors)
        tuner = MiniatureCacheTuner(sampling_rate=0.3, seed=1, thresholds=(0, 8))
        joint = tuner.select_thresholds_for_sizes(
            trace, layout, access_counts, cache_sizes=[40, 90]
        )
        for size in (40, 90):
            alone = tuner.select_threshold(trace, layout, access_counts, size)
            assert joint[size].threshold == alone.threshold
            assert joint[size].gains == alone.gains
            assert joint[size].miniature_cache_size == alone.miniature_cache_size


class TestArrayLRUCacheEdgeCases:
    """Positional-insert edge cases, mirrored against the reference LRUCache."""

    def test_capacity_zero_stores_nothing(self):
        reference = LRUCache(0)
        array = ArrayLRUCache(0, num_slots=8)
        assert reference.insert(1) is None
        assert array.insert_at(1, 0.0) is None
        for cache in (reference, array):
            assert len(cache) == 0
            assert 1 not in cache

    def test_capacity_one_positional_insert(self):
        reference = LRUCache(1)
        array = ArrayLRUCache(1, num_slots=8)
        for key, position in [(1, 0.0), (2, 1.0), (3, 0.5), (3, 0.0), (4, 1.0)]:
            assert reference.insert(key, position) == array.insert_at(key, position)
            assert reference.keys() == array.keys()

    def test_position_one_tie_breaking(self):
        """Bottom insertion lands strictly below the current LRU entry."""
        reference = LRUCache(4)
        array = ArrayLRUCache(4, num_slots=16)
        for cache, insert in ((reference, reference.insert), (array, array.insert_at)):
            insert(1, 0.0)
            insert(2, 0.0)
            insert(3, 1.0)  # below 1 and 2
            insert(4, 1.0)  # below 3
            assert cache.keys() == [2, 1, 3, 4]
        # Next eviction removes the most recent bottom insertion first.
        assert reference.insert(5, 0.0) == 4
        assert array.insert_at(5, 0.0) == 4

    def test_promote_batch_matches_sequential_gets(self):
        reference = LRUCache(6)
        array = ArrayLRUCache(6, num_slots=16)
        for key in (1, 2, 3):
            reference.insert(key)
            array.stamp_top(key)
        for key in (1, 3, 1):
            reference.get(key)
        array.promote_batch(np.array([1, 3, 1]))
        assert reference.keys() == array.keys()

    def test_eviction_counter(self):
        array = ArrayLRUCache(2, num_slots=8)
        array.insert_at(1, 0.0)
        array.insert_at(2, 0.0)
        array.insert_at(3, 0.0)
        assert array.evictions == 1
        array.clear()
        assert array.evictions == 0 and len(array) == 0

    def test_capacity_zero_positional_inserts_are_noops(self):
        reference = LRUCache(0)
        array = ArrayLRUCache(0, num_slots=8)
        for key, position in [(0, 0.0), (3, 1.0), (3, 0.5), (7, 0.0)]:
            assert reference.insert(key, position) is None
            assert array.insert_at(key, position) is None
        assert len(array) == 0 and array.evictions == 0
        assert array.keys() == reference.keys() == []

    def test_capacity_one_churn_matches_reference(self):
        """Every insert at capacity 1 evicts the sole resident, in lockstep."""
        reference = LRUCache(1)
        array = ArrayLRUCache(1, num_slots=16)
        rng = np.random.default_rng(0)
        for _ in range(200):
            key = int(rng.integers(0, 16))
            position = float(rng.choice([0.0, 0.3, 1.0]))
            assert reference.insert(key, position) == array.insert_at(key, position)
            assert reference.keys() == array.keys()
        assert array.evictions == reference.evictions > 0

    def test_reinsert_after_evict(self):
        """An evicted key must re-enter cleanly (no stale heap interference)."""
        reference = LRUCache(2)
        array = ArrayLRUCache(2, num_slots=8)
        for cache, insert in ((reference, reference.insert), (array, array.insert_at)):
            insert(1, 0.0)
            insert(2, 0.0)
            evicted = insert(3, 0.0)  # evicts 1
            assert evicted == 1
            assert insert(1, 0.0) == 2  # re-insert the evicted key, evicting 2
            assert cache.keys() == [1, 3]
        assert 1 in array and 2 not in array
        assert array.evictions == reference.evictions == 2

    def test_promote_batch_on_empty_cache(self):
        """An empty key batch is a no-op on an empty (or any) cache."""
        array = ArrayLRUCache(4, num_slots=8)
        array.promote_batch(np.empty(0, dtype=np.int64))
        assert len(array) == 0 and array._heap == []
        array.clear()
        array.promote_batch(np.empty(0, dtype=np.int64))
        assert array.keys() == []

    def test_compaction_keeps_heap_bounded_at_tiny_capacity(self):
        """_maybe_compact at capacity 1: heavy churn must not grow the heap."""
        array = ArrayLRUCache(1, num_slots=4)
        for round_ in range(2000):
            array.insert_at(round_ % 4, 0.0)
        # Only one entry is live; the amortised compaction schedule keeps the
        # lazy heap within a small multiple of _COMPACT_MIN.
        assert len(array._heap) <= 2 * ArrayLRUCache._COMPACT_MIN
        assert len(array) == 1 and array.evictions == 1999

    def test_compaction_noop_at_capacity_zero(self):
        """Capacity 0 stores nothing, so compaction finds an empty heap."""
        array = ArrayLRUCache(0, num_slots=4)
        for round_ in range(500):
            array.insert_at(round_ % 4, 0.0)
        array._maybe_compact()
        assert array._heap == [] and len(array) == 0


class TestStoreBatchedServing:
    """The store's batched serving path equals the reference serving path."""

    @staticmethod
    def _build_store(use_batched_engine):
        from repro.core.bandana import BandanaStore
        from repro.core.config import BandanaConfig
        from repro.workloads.trace import ModelTrace

        rng = np.random.default_rng(5)
        queries = [
            rng.integers(0, 512, size=int(rng.integers(2, 10))).astype(np.int64)
            for _ in range(80)
        ]
        train = ModelTrace({"alpha": Trace(queries, num_vectors=512)})
        config = BandanaConfig(
            partitioner="identity",
            total_cache_vectors=96,
            tune_thresholds=False,
            default_threshold=1.0,
            use_batched_engine=use_batched_engine,
        )
        eval_queries = [
            rng.integers(0, 512, size=int(rng.integers(2, 10))).astype(np.int64)
            for _ in range(80)
        ]
        return (
            BandanaStore.build(train, config, num_vectors={"alpha": 512}),
            ModelTrace({"alpha": Trace(eval_queries, num_vectors=512)}),
        )

    def test_simulate_store_matches_reference_path(self):
        from repro.simulation.runner import simulate_store

        batched_store, eval_trace = self._build_store(True)
        reference_store, _ = self._build_store(False)
        batched = simulate_store(batched_store, eval_trace)
        reference = simulate_store(reference_store, eval_trace)
        b = batched.per_table["alpha"].stats
        r = reference.per_table["alpha"].stats
        # Hit/miss/admission/eviction counters are engine-exact; the batched
        # path additionally keeps prefetch attribution across queries, which
        # repeated reference-loop calls forget (see engine docs).
        assert (b.lookups, b.hits, b.misses, b.prefetch_admitted, b.evictions) == (
            r.lookups, r.hits, r.misses, r.prefetch_admitted, r.evictions
        )
        assert batched.total_baseline_block_reads == reference.total_baseline_block_reads

    def test_lookup_batch_matches_per_query_lookups(self):
        store, eval_trace = self._build_store(True)
        queries = eval_trace["alpha"].queries
        store.lookup_batch("alpha", queries)
        batched = counters(store.tables["alpha"].stats)

        store.reset_serving_state()
        for query in queries:
            store.lookup("alpha", query)
        assert counters(store.tables["alpha"].stats) == batched


class TestLRUCacheHeapCompaction:
    def test_heap_stays_bounded_under_restamping(self):
        cache = LRUCache(16)
        for key in range(16):
            cache.insert(key)
        for round_ in range(2000):
            cache.get(round_ % 16)
        # Without compaction the heap would hold ~2016 entries.
        assert len(cache._heap) <= max(64, 4 * len(cache._priority)) + 1

    def test_compaction_preserves_eviction_order(self):
        compacted = LRUCache(8)
        for key in range(8):
            compacted.insert(key)
        for round_ in range(1000):
            compacted.get(round_ % 7)  # key 7 stays LRU
        assert compacted.insert(100) == 7

    def test_array_cache_heap_stays_bounded(self):
        array = ArrayLRUCache(16, num_slots=32)
        for key in range(16):
            array.stamp_top(key)
        for round_ in range(2000):
            array.promote_batch(np.arange(8))
        # 16k stamps were issued; compaction must keep the heap near the live
        # entry count (the amortised schedule allows a small multiple).
        assert len(array._heap) <= 256
