"""Tests for the per-request span-tracing layer (repro.tracing).

Covers the tracing PR end to end: tracer unit behaviour (recording,
sampling, eviction, the no-op singleton), the structural trace invariants
(nesting, monotonicity, conservation) over real batched-serving and
fault-injected cluster runs, the acceptance criterion that a replicated
crash's p999 inflation is attributed to failover spans rather than device
service, the metrics-correctness satellites (queue-depth zero bucket,
percentile sample-rank flagging, hedge accounting), and the lint coverage
guaranteeing the tracing package stays on the simulated clock.
"""

import numpy as np
import pytest

from test_cluster_store import run as run_cluster_scenario
from test_serving import build_store_and_trace

from repro.core.config import ClusterConfig, ServingConfig, TracingConfig
from repro.serving import simulate_serving
from repro.serving.report import (
    LatencySummary,
    depth_histogram,
    percentile_min_samples,
)
from repro.tracing import (
    ATTR_OVERLAP_OK,
    NULL_TRACER,
    STAGE_ATTEMPT_LINK_LOSS,
    STAGE_ATTEMPT_TIMEOUT,
    STAGE_BACKOFF,
    STAGE_BATCH_QUEUE,
    STAGE_DEVICE_QUEUE,
    STAGE_DEVICE_SERVICE,
    STAGE_HEDGE_WON,
    STAGE_NODE_QUEUE,
    STAGE_NODE_SERVICE,
    STAGE_OVERHEAD,
    STAGE_REQUEST,
    NullTracer,
    Tracer,
    resolve_tracer,
    validate_trace,
)
from repro_lint import lint_source
from repro_lint.rules import CONFIG_CLASSES, WALL_CLOCK_ALLOWED_MODULES


def all_retained_traces_valid(tracer):
    problems = []
    for trace in tracer.traces.values():
        problems.extend(validate_trace(trace))
    return problems


def stage_total(trace, *names):
    return sum(s.duration_us for s in trace.spans if s.name in names)


# ---------------------------------------------------------------- tracer unit
class TestTracerUnit:
    def test_manual_trace_records_and_queries(self):
        tracer = Tracer()
        root = tracer.begin_request(7, 100.0)
        tracer.span(7, STAGE_BATCH_QUEUE, 100.0, 140.0, batch=0)
        sid = tracer.open_span(7, STAGE_DEVICE_SERVICE, 140.0)
        tracer.close_span(7, sid, 190.0, block_reads=3)
        tracer.end_request(7, 200.0)
        spans = tracer.spans_for_request(7)
        assert [s.name for s in spans] == [
            STAGE_REQUEST,
            STAGE_BATCH_QUEUE,
            STAGE_DEVICE_SERVICE,
        ]
        assert spans[0].span_id == root
        assert spans[0].parent_id is None
        assert all(s.parent_id == root for s in spans[1:])
        assert spans[2].attributes["block_reads"] == 3
        assert validate_trace(tracer.traces[7]) == []
        # The critical path follows the latest-ending child chain.
        assert [s.name for s in tracer.critical_path(7)] == [
            STAGE_REQUEST,
            STAGE_DEVICE_SERVICE,
        ]

    def test_duplicate_begin_raises(self):
        tracer = Tracer()
        tracer.begin_request(1, 0.0)
        with pytest.raises(ValueError):
            tracer.begin_request(1, 5.0)

    def test_close_unknown_span_raises(self):
        tracer = Tracer()
        tracer.begin_request(1, 0.0)
        with pytest.raises(KeyError):
            tracer.close_span(1, 999, 10.0)

    def test_overlap_flag_exempts_speculative_losers(self):
        tracer = Tracer()
        root = tracer.begin_request(0, 0.0)
        group = tracer.open_span(0, "shard_group", 0.0)
        # A lost hedge that finished after the group closed: valid only
        # because it carries the overlap flag.
        tracer.span(0, "hedge.lost", 5.0, 50.0, parent_id=group, **{ATTR_OVERLAP_OK: True})
        tracer.close_span(0, group, 20.0)
        tracer.end_request(0, 20.0)
        assert validate_trace(tracer.traces[0]) == []
        assert root is not None

    def test_invalid_nesting_is_flagged(self):
        tracer = Tracer()
        root = tracer.begin_request(0, 0.0)
        tracer.span(0, "child", 0.0, 50.0, parent_id=root)  # ends after root
        tracer.end_request(0, 20.0)
        problems = validate_trace(tracer.traces[0])
        assert any("ends after its parent" in p for p in problems)

    def test_null_tracer_is_shared_noop(self):
        assert resolve_tracer(None) is NULL_TRACER
        assert resolve_tracer(TracingConfig()) is NULL_TRACER  # disabled default
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled and Tracer.enabled
        assert NULL_TRACER.begin_request(3, 0.0) == -1
        NULL_TRACER.span(3, "x", 0.0, 1.0)
        NULL_TRACER.end_request(3, 1.0)
        assert NULL_TRACER.traces == {}
        assert NULL_TRACER.counters()["requests_started"] == 0

    def test_resolve_passthrough_and_enabled_config(self):
        mine = Tracer()
        assert resolve_tracer(mine) is mine
        made = resolve_tracer(
            TracingConfig(enabled=True, sample_every=4), slo_latency_us=123.0
        )
        assert made is not NULL_TRACER
        assert made.config.sample_every == 4
        assert made.slo_latency_us == pytest.approx(123.0)


# ------------------------------------------------------- sampling and eviction
class TestSamplingAndEviction:
    @staticmethod
    def _run_requests(tracer, latencies_us):
        for i, latency in enumerate(latencies_us):
            tracer.begin_request(i, 1000.0 * i)
            tracer.end_request(i, 1000.0 * i + latency)

    def test_sample_every_keeps_every_nth(self):
        tracer = Tracer(
            TracingConfig(
                enabled=True, sample_every=3, always_sample_slo_violations=False
            )
        )
        self._run_requests(tracer, [10.0] * 10)
        assert sorted(tracer.traces) == [0, 3, 6, 9]
        counters = tracer.counters()
        assert counters["requests_started"] == counters["requests_ended"] == 10
        assert counters["requests_retained"] == 4
        assert counters["requests_sampled_out"] == 6

    def test_slo_violators_bypass_sampling(self):
        tracer = Tracer(
            TracingConfig(enabled=True, sample_every=1000), slo_latency_us=50.0
        )
        self._run_requests(tracer, [10.0, 10.0, 99.0, 10.0])
        assert sorted(tracer.traces) == [0, 2]  # seq 0 sampled, seq 2 violator
        assert tracer.traces[2].slo_violated
        assert not tracer.traces[0].slo_violated

    def test_bounded_sink_evicts_oldest(self):
        tracer = Tracer(TracingConfig(enabled=True, max_requests=2))
        self._run_requests(tracer, [10.0] * 5)
        assert sorted(tracer.traces) == [3, 4]
        counters = tracer.counters()
        assert counters["requests_evicted"] == 3
        # Conservation: retained counts retention decisions, not residency.
        assert counters["requests_retained"] == 5
        assert counters["requests_started"] == counters["requests_ended"] == 5


# ------------------------------------------------------- single-host serving
class TestSingleHostServing:
    @pytest.fixture(scope="class")
    def traced_run(self):
        store, eval_trace = build_store_and_trace()
        tracer = Tracer(TracingConfig(enabled=True), slo_latency_us=3000.0)
        report = simulate_serving(
            store,
            eval_trace,
            ServingConfig(
                arrival_rate_rps=4000,
                max_batch_requests=8,
                max_linger_us=300.0,
                slo_latency_us=3000.0,
            ),
            tracing=tracer,
        )
        return store, eval_trace, tracer, report

    def test_every_request_traced_exactly_once(self, traced_run):
        _, _, tracer, report = traced_run
        counters = tracer.counters()
        assert counters["requests_started"] == report.num_requests
        assert counters["requests_ended"] == report.num_requests
        assert counters["requests_retained"] == report.num_requests
        assert sorted(tracer.traces) == list(range(report.num_requests))

    def test_traces_satisfy_structural_invariants(self, traced_run):
        _, _, tracer, _ = traced_run
        assert all_retained_traces_valid(tracer) == []

    def test_stages_tile_the_request_exactly(self, traced_run):
        # batcher.queue + device.queue + device.service + overhead is not an
        # approximation of end-to-end latency: on the simulated clock the
        # four stages tile it exactly, for every request.
        _, _, tracer, _ = traced_run
        for trace in tracer.traces.values():
            staged = stage_total(
                trace,
                STAGE_BATCH_QUEUE,
                STAGE_DEVICE_QUEUE,
                STAGE_DEVICE_SERVICE,
                STAGE_OVERHEAD,
            )
            assert staged == pytest.approx(trace.latency_us, abs=1e-6)

    def test_report_carries_trace_summary(self, traced_run):
        _, _, _, report = traced_run
        assert report.trace is not None
        assert report.trace["counters"]["requests_started"] == report.num_requests
        assert STAGE_DEVICE_SERVICE in report.trace["breakdown_by_stage"]
        assert report.to_dict()["trace"] == report.trace

    def test_disabled_tracing_is_observationally_free(self, traced_run):
        store, eval_trace, _, enabled_report = traced_run
        config = ServingConfig(
            arrival_rate_rps=4000,
            max_batch_requests=8,
            max_linger_us=300.0,
            slo_latency_us=3000.0,
        )
        off_none = simulate_serving(store, eval_trace, config, tracing=None)
        off_config = simulate_serving(
            store, eval_trace, config, tracing=TracingConfig(enabled=False)
        )
        assert off_none.trace is None and off_config.trace is None
        assert off_none.to_dict() == off_config.to_dict()
        # Tracing is purely observational: the enabled run differs from the
        # disabled one only by the trace payload.
        enabled = dict(enabled_report.to_dict())
        disabled = dict(off_none.to_dict())
        enabled.pop("trace")
        disabled.pop("trace")
        assert enabled == disabled


# ------------------------------------------------------------ cluster serving
class TestClusterServing:
    CONFIG = dict(num_nodes=4, replication=2)

    @pytest.fixture(scope="class")
    def crash_run(self):
        tracer = Tracer(TracingConfig(enabled=True), slo_latency_us=2000.0)
        report = run_cluster_scenario(
            1, "crash_recover", ClusterConfig(**self.CONFIG), tracing=tracer
        )
        return tracer, report

    @pytest.fixture(scope="class")
    def healthy_run(self):
        tracer = Tracer(TracingConfig(enabled=True), slo_latency_us=2000.0)
        report = run_cluster_scenario(
            1, "none", ClusterConfig(**self.CONFIG), tracing=tracer
        )
        return tracer, report

    def test_every_request_traced_exactly_once(self, crash_run):
        tracer, report = crash_run
        counters = tracer.counters()
        assert counters["requests_started"] == report.num_requests
        assert counters["requests_ended"] == report.num_requests
        assert counters["requests_retained"] == report.num_requests
        assert sorted(tracer.traces) == list(range(report.num_requests))

    def test_traces_satisfy_structural_invariants(self, crash_run, healthy_run):
        for tracer, _ in (crash_run, healthy_run):
            assert all_retained_traces_valid(tracer) == []

    def test_report_carries_trace_summary(self, crash_run):
        tracer, report = crash_run
        assert report.trace is not None
        assert report.trace["counters"] == tracer.counters()
        assert report.to_dict()["trace"] == report.trace

    def test_crash_tail_attributed_to_failover_not_device(
        self, crash_run, healthy_run
    ):
        # The acceptance criterion: with R=2, a crash inflates p999 and the
        # traces say *why* — the slow requests burn their time on crash
        # consequences (timeout/backoff failover spans, plus the queue
        # backlog piling onto the surviving replica), not in node service:
        # the devices are no slower, the paths to them are.
        crash_tracer, crash_report = crash_run
        healthy_tracer, healthy_report = healthy_run
        assert crash_report.latency.p999_us > healthy_report.latency.p999_us
        failover_stages = (
            STAGE_ATTEMPT_TIMEOUT,
            STAGE_ATTEMPT_LINK_LOSS,
            STAGE_BACKOFF,
        )
        for trace in healthy_tracer.traces.values():
            assert stage_total(trace, *failover_stages) == pytest.approx(0.0)
        # Failover spans exist, and every request that hit the dead node
        # spent more on failover than on the service it finally got.
        failed_over = [
            trace
            for trace in crash_tracer.traces.values()
            if stage_total(trace, *failover_stages) > 0.0
        ]
        assert failed_over
        for trace in failed_over:
            assert stage_total(trace, *failover_stages) > stage_total(
                trace, STAGE_NODE_SERVICE
            )
        # And the overall tail is crash-shaped: in each of the slowest
        # traces, failover burn plus replica queue backlog dwarfs device
        # service time.
        for trace in crash_tracer.slowest_requests(3):
            crash_cost_us = stage_total(
                trace, *failover_stages
            ) + stage_total(trace, STAGE_NODE_QUEUE)
            assert crash_cost_us > stage_total(trace, STAGE_NODE_SERVICE)

    def test_hedge_accounting_is_conserved(self):
        # Launched-but-lost hedges are first-class: every launched hedge is
        # either won or lost, and the hedge.won spans in a fully-sampled
        # trace set agree with the counter.
        tracer = Tracer(TracingConfig(enabled=True), slo_latency_us=2000.0)
        report = run_cluster_scenario(
            1,
            "slow_node",
            ClusterConfig(**self.CONFIG),
            overrides=dict(start_s=0.005, duration_s=0.03, multiplier=20.0),
            tracing=tracer,
        )
        c = report.counters
        assert c.hedges_launched > 0
        assert c.hedges_launched == c.hedges_won + c.hedges_lost
        won_spans = sum(
            1
            for trace in tracer.traces.values()
            for span in trace.spans
            if span.name == STAGE_HEDGE_WON
        )
        assert won_spans == c.hedges_won


# ----------------------------------------------------- metrics-fix satellites
class TestReportSatellites:
    def test_depth_histogram_zero_bucket_is_exact(self):
        hist = depth_histogram(np.array([0.0, 0.0, 0.5, 1.0, 2.0, 3.0, 8.0]))
        assert hist == {0: 2, 1: 2, 2: 1, 4: 1, 8: 1}

    def test_depth_histogram_no_idle_no_zero_bucket(self):
        assert 0 not in depth_histogram(np.array([1.0, 2.0]))
        assert depth_histogram(np.array([])) == {}

    def test_percentile_min_samples_ranks(self):
        assert percentile_min_samples(50.0) == 2
        assert percentile_min_samples(95.0) == 20
        assert percentile_min_samples(99.0) == 100
        assert percentile_min_samples(99.9) == 1000
        with pytest.raises(ValueError):
            percentile_min_samples(100.0)

    def test_latency_summary_flags_unsupported_tails(self):
        short = LatencySummary.from_samples(np.arange(1, 51, dtype=np.float64))
        assert short.samples == 50
        assert short.unsupported_percentiles() == ["p99_us", "p999_us"]
        long = LatencySummary.from_samples(np.arange(1, 1001, dtype=np.float64))
        assert long.samples == 1000
        assert long.unsupported_percentiles() == []
        empty = LatencySummary.from_samples(np.array([]))
        assert empty.samples == 0
        assert empty.unsupported_percentiles() == [
            "p50_us",
            "p95_us",
            "p99_us",
            "p999_us",
        ]

    def test_latency_summary_dict_carries_sample_metadata(self):
        summary = LatencySummary.from_samples(np.arange(1, 31, dtype=np.float64))
        doc = summary.to_dict()
        assert doc["samples"] == 30
        assert doc["unsupported_percentiles"] == ["p99_us", "p999_us"]


# ------------------------------------------------------------- lint coverage
class TestLintCoverage:
    def test_tracing_package_is_not_wall_clock_allowlisted(self):
        # repro.tracing runs on the simulated clock; R2 must keep flagging
        # any wall-clock read that sneaks into it.
        assert not any(
            mod.startswith("repro.tracing") for mod in WALL_CLOCK_ALLOWED_MODULES
        )
        bad = "import time\nnow = time.time()\n"
        result = lint_source(bad, "src/repro/tracing/tracer.py")
        assert [v.rule for v in result.violations] == ["R2"]

    def test_tracing_config_is_a_validated_config_class(self):
        assert "TracingConfig" in CONFIG_CLASSES
