"""Tests for the ``repro_lint`` static-analysis framework and its rules.

Each rule gets a *catching* fixture (known-bad code the rule must flag) and a
*passing* fixture (idiomatic code the rule must leave alone), so a regression
in either direction — rules going blind or rules going trigger-happy — fails
loudly.  The framework itself (suppressions, the meta rule, the reporters,
the file walker and the CLI) is covered alongside, and a final self-check
lints the real ``src`` tree.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro_lint import (
    JSON_SCHEMA_VERSION,
    META_RULE_ID,
    FileContext,
    all_rules,
    known_rule_ids,
    lint_paths,
    lint_source,
    render_text,
    to_json_dict,
)
from repro_lint.__main__ import main

REPO_ROOT = Path(__file__).resolve().parent.parent

SRC_PATH = "src/repro/caching/example.py"  # a simulated-clock module
TEST_PATH = "tests/test_example.py"


def rule_ids(result):
    return sorted(v.rule for v in result.violations)


# --------------------------------------------------------------------- registry
class TestRegistry:
    def test_all_five_rules_registered(self):
        # R0 is the framework's own suppression-audit meta rule; R1-R5 are
        # the AST rules.  All six ids are valid in disable= comments.
        assert known_rule_ids() == {"R0", "R1", "R2", "R3", "R4", "R5"}

    def test_meta_rule_is_reserved(self):
        assert META_RULE_ID == "R0"
        assert META_RULE_ID not in {rule.id for rule in all_rules()}

    def test_rules_carry_rationale(self):
        for rule in all_rules():
            assert rule.rationale, f"{rule.id} has no rationale"


# ----------------------------------------------------------------- R1 fixtures
class TestBareRandomState:
    def test_catches_np_random_module_functions(self):
        bad = "import numpy as np\nids = np.random.randint(0, 10, size=4)\n"
        result = lint_source(bad, SRC_PATH)
        assert rule_ids(result) == ["R1"]

    def test_catches_np_random_seed(self):
        result = lint_source("import numpy as np\nnp.random.seed(0)\n", SRC_PATH)
        assert rule_ids(result) == ["R1"]

    def test_catches_stdlib_random_module_state(self):
        # Both the import site and the use site are flagged.
        result = lint_source("import random\nx = random.random()\n", SRC_PATH)
        assert rule_ids(result) == ["R1", "R1"]

    def test_catches_aliased_import(self):
        bad = "import numpy.random as npr\nx = npr.rand(3)\n"
        result = lint_source(bad, SRC_PATH)
        assert rule_ids(result) == ["R1"]

    def test_allows_explicit_generators(self):
        good = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "gen = np.random.Generator(np.random.PCG64(3))\n"
        )
        assert lint_source(good, SRC_PATH).clean

    def test_allows_stdlib_random_instances(self):
        # Explicitly seeded Random instances are fine; the bare-module import
        # is what carries the global state, so the instance must come in via
        # a from-import.
        good = "from random import Random\nrng = Random(11)\nx = rng.random()\n"
        assert lint_source(good, SRC_PATH).clean

    def test_rng_home_module_is_exempt(self):
        bad = "import numpy as np\nnp.random.seed(0)\n"
        assert lint_source(bad, "src/repro/utils/rng.py").clean
        # ... but only that module.
        assert not lint_source(bad, "src/repro/utils/validation.py").clean


# ----------------------------------------------------------------- R2 fixtures
class TestWallClock:
    def test_catches_time_time_in_sim_module(self):
        bad = "import time\nnow = time.time()\n"
        result = lint_source(bad, SRC_PATH)
        assert rule_ids(result) == ["R2"]

    def test_catches_from_import_alias(self):
        # Import site and aliased call site are both flagged.
        bad = "from time import perf_counter as pc\nstart = pc()\n"
        result = lint_source(bad, SRC_PATH)
        assert rule_ids(result) == ["R2", "R2"]

    def test_catches_datetime_now(self):
        bad = "import datetime\nstamp = datetime.datetime.now()\n"
        result = lint_source(bad, SRC_PATH)
        assert rule_ids(result) == ["R2"]

    def test_partitioning_package_is_allowlisted(self):
        # Partitioning runtime is measured wall-clock by design (the paper's
        # placement cost is real compute, not simulated time).
        good = "import time\nstart = time.perf_counter()\n"
        assert lint_source(good, "src/repro/partitioning/kmeans.py").clean

    def test_non_repro_files_are_out_of_scope(self):
        ok = "import time\nnow = time.time()\n"
        assert lint_source(ok, "benchmarks/bench_example.py").clean
        assert lint_source(ok, TEST_PATH).clean


# ----------------------------------------------------------------- R3 fixtures
class TestTimeUnitMix:
    def test_catches_us_assigned_from_seconds(self):
        result = lint_source("timeout_us = window_s\n", SRC_PATH)
        assert rule_ids(result) == ["R3"]

    def test_catches_keyword_argument_mismatch(self):
        result = lint_source("run(timeout_us=window_s)\n", SRC_PATH)
        assert rule_ids(result) == ["R3"]

    def test_allows_explicit_conversion_call(self):
        good = (
            "from repro.utils.units import s_to_us\n"
            "timeout_us = s_to_us(window_s)\n"
        )
        assert lint_source(good, SRC_PATH).clean

    def test_allows_arithmetic_conversion(self):
        assert lint_source("timeout_us = window_s * 1_000_000\n", SRC_PATH).clean

    def test_allows_same_unit_assignment(self):
        assert lint_source("timeout_us = other_us\n", SRC_PATH).clean


# ----------------------------------------------------------------- R4 fixtures
class TestUnvalidatedConfigField:
    def test_catches_unreferenced_field(self):
        bad = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class ServingConfig:\n"
            "    batch_size: int = 8\n"
            "    linger_us: float = 50.0\n"
            "    def __post_init__(self):\n"
            "        check_positive(self.batch_size, 'batch_size')\n"
        )
        result = lint_source(bad, "src/repro/core/config.py")
        assert rule_ids(result) == ["R4"]
        assert "linger_us" in result.violations[0].message

    def test_catches_missing_validator_entirely(self):
        bad = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class ClusterConfig:\n"
            "    num_nodes: int = 4\n"
        )
        result = lint_source(bad, "src/repro/core/config.py")
        assert rule_ids(result) == ["R4"]

    def test_passes_when_every_field_is_checked(self):
        good = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class ServingConfig:\n"
            "    batch_size: int = 8\n"
            "    def __post_init__(self):\n"
            "        check_positive(self.batch_size, 'batch_size')\n"
        )
        assert lint_source(good, "src/repro/core/config.py").clean

    def test_object_setattr_counts_as_reference(self):
        good = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class ClusterConfig:\n"
            "    seed: int = 0\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'seed', check_seed(self.seed, 'seed'))\n"
        )
        assert lint_source(good, "src/repro/core/config.py").clean

    def test_classvar_fields_are_ignored(self):
        good = (
            "from dataclasses import dataclass\n"
            "from typing import ClassVar\n"
            "@dataclass\n"
            "class BandanaConfig:\n"
            "    kind: ClassVar[str] = 'bandana'\n"
            "    def __post_init__(self):\n"
            "        pass\n"
        )
        assert lint_source(good, "src/repro/core/config.py").clean

    def test_other_class_names_are_out_of_scope(self):
        ok = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class SomeOtherConfig:\n"
            "    knob: int = 1\n"
        )
        assert lint_source(ok, "src/repro/core/config.py").clean


# ----------------------------------------------------------------- R5 fixtures
class TestFloatEquality:
    def test_catches_float_literal_equality(self):
        result = lint_source("assert report.hit_rate == 0.5\n", TEST_PATH)
        assert rule_ids(result) == ["R5"]

    def test_catches_negated_float_literal(self):
        result = lint_source("assert delta != -0.25\n", TEST_PATH)
        assert rule_ids(result) == ["R5"]

    def test_allows_pytest_approx(self):
        good = (
            "import pytest\n"
            "def test_x():\n"
            "    assert report.hit_rate == pytest.approx(0.5)\n"
        )
        assert lint_source(good, TEST_PATH).clean

    def test_allows_integer_equality(self):
        assert lint_source("assert count == 3\n", TEST_PATH).clean

    def test_only_applies_to_tests(self):
        src = "ok = value == 0.5\n"
        assert lint_source(src, SRC_PATH).clean
        assert not lint_source(src, TEST_PATH).clean


# --------------------------------------------------------------- suppressions
class TestSuppressions:
    def test_disable_comment_suppresses_violation(self):
        src = "import time\nnow = time.time()  # repro-lint: disable=R2\n"
        result = lint_source(src, SRC_PATH)
        assert result.clean
        assert result.suppressed == 1

    def test_disable_comment_is_rule_scoped(self):
        # The comment names R1 but the violation is R2: not suppressed, and
        # the unused R1 suppression is itself reported.
        src = "import time\nnow = time.time()  # repro-lint: disable=R1\n"
        result = lint_source(src, SRC_PATH)
        assert rule_ids(result) == [META_RULE_ID, "R2"]

    def test_multiple_rules_in_one_comment(self):
        src = (
            "import random  # repro-lint: disable=R1\n"
            "def test_x():\n"
            "    assert random.random() == 0.5  # repro-lint: disable=R1,R5\n"
        )
        result = lint_source(src, TEST_PATH)
        assert result.clean
        assert result.suppressed == 3

    def test_unused_suppression_is_reported(self):
        src = "x = 1  # repro-lint: disable=R5\n"
        result = lint_source(src, TEST_PATH)
        assert rule_ids(result) == [META_RULE_ID]
        assert "unused suppression" in result.violations[0].message

    def test_unknown_rule_id_is_reported(self):
        src = "x = 1  # repro-lint: disable=R99\n"
        result = lint_source(src, SRC_PATH)
        assert rule_ids(result) == [META_RULE_ID]
        assert "R99" in result.violations[0].message


# ------------------------------------------------------------------ reporters
class TestReporters:
    def _dirty_result(self):
        return lint_source("import time\nnow = time.time()\n", SRC_PATH)

    def test_text_report_format(self):
        text = render_text(self._dirty_result())
        assert f"{SRC_PATH}:2:" in text
        assert "R2" in text
        assert "repro-lint: 1 violation in 1 files (0 suppressed)" in text

    def test_json_schema(self):
        doc = to_json_dict(self._dirty_result())
        assert doc["schema_version"] == JSON_SCHEMA_VERSION
        assert doc["clean"] is False
        assert doc["files_checked"] == 1
        assert doc["suppressed"] == 0
        assert doc["violation_counts"] == {"R2": 1}
        (violation,) = doc["violations"]
        assert set(violation) == {"rule", "name", "path", "line", "col", "message"}
        assert violation["rule"] == "R2"
        assert violation["name"] == "wall-clock"
        assert violation["path"] == SRC_PATH
        assert violation["line"] == 2

    def test_json_round_trips(self):
        from repro_lint import render_json

        doc = json.loads(render_json(self._dirty_result()))
        assert doc["schema_version"] == JSON_SCHEMA_VERSION


# ---------------------------------------------------------------- file walker
class TestWalkerAndPaths:
    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "caching"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import time\nnow = time.time()\n")
        (pkg / "good.py").write_text("x = 1\n")
        (pkg / "__pycache__").mkdir()
        (pkg / "__pycache__" / "bad.py").write_text("import time\nt = time.time()\n")
        result = lint_paths(["src"], root=tmp_path)
        assert result.files_checked == 2  # __pycache__ skipped
        assert rule_ids(result) == ["R2"]
        assert result.violations[0].path == "src/repro/caching/bad.py"

    def test_syntax_error_becomes_meta_violation(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        result = lint_paths([str(bad)], root=tmp_path)
        assert rule_ids(result) == [META_RULE_ID]
        assert "does not parse" in result.violations[0].message

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths(["no/such/dir"], root=tmp_path)


# ------------------------------------------------------------------------ CLI
class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["--root", str(tmp_path), "ok.py"]) == 0

    def test_exit_one_on_violations(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nnow = time.time()\n")
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "sim.py").write_text("import time\nnow = time.time()\n")
        assert main(["--root", str(tmp_path), "src"]) == 1
        assert "R2" in capsys.readouterr().out

    def test_exit_two_on_usage_error(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path)]) == 2
        assert main(["--root", str(tmp_path), "nope"]) == 2

    def test_json_output(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "sim.py").write_text("import time\nnow = time.time()\n")
        assert main(["--root", str(tmp_path), "--json", "src"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == JSON_SCHEMA_VERSION
        assert doc["violation_counts"] == {"R2": 1}

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in sorted(known_rule_ids() - {META_RULE_ID}):
            assert rule_id in out

    def test_module_entry_point(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro_lint", "--root", str(tmp_path), "ok.py"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr


# ------------------------------------------------------------- import tracking
class TestFileContext:
    def test_module_resolution(self):
        ctx = FileContext("x", "pass", rel_path="src/repro/caching/engine.py")
        assert ctx.module == "repro.caching.engine"
        assert not ctx.is_test

    def test_test_detection(self):
        ctx = FileContext("x", "pass", rel_path="tests/test_engine.py")
        assert ctx.module is None
        assert ctx.is_test

    def test_dotted_name_expands_aliases(self):
        ctx = FileContext(
            "x",
            "import numpy as np\nfrom time import perf_counter as pc\n",
            rel_path=SRC_PATH,
        )
        import ast as ast_mod

        node = ast_mod.parse("np.random.seed").body[0].value
        assert ctx.dotted_name(node) == "numpy.random.seed"
        node = ast_mod.parse("pc").body[0].value
        assert ctx.dotted_name(node) == "time.perf_counter"


# ------------------------------------------------------------------ self-check
class TestRepoSelfCheck:
    def test_repo_is_lint_clean(self):
        result = lint_paths(["src", "tests", "benchmarks"], root=REPO_ROOT)
        assert result.files_checked > 50
        dirty = "\n".join(
            f"{v.path}:{v.line} {v.rule} {v.message}"
            for v in result.sorted_violations()
        )
        assert result.clean, f"repo must be repro-lint clean:\n{dirty}"
