"""Tests for the sparse-id densifying shim (repro.workloads.remap)."""

import numpy as np
import pytest

from repro.caching.engine import replay_table_cache_batched
from repro.caching.policies import CacheAllBlockPolicy
from repro.nvm.block import BlockLayout
from repro.workloads import IdRemapper, densify_model_trace, densify_trace
from repro.workloads.trace import ModelTrace, Trace


def sparse_queries(rng, universe, num_queries=40, max_len=6):
    return [
        rng.choice(universe, size=rng.integers(1, max_len + 1), replace=False)
        for _ in range(num_queries)
    ]


class TestIdRemapper:
    def test_round_trip_and_rank_order(self):
        remapper = IdRemapper(np.array([2**62, 7, 10**15, 7, 3]))
        assert remapper.num_ids == 4
        # Dense ids are sorted-rank: mapping is order-stable, not order-of-appearance.
        np.testing.assert_array_equal(remapper.to_dense([3, 7, 10**15, 2**62]), [0, 1, 2, 3])
        sparse = np.array([10**15, 3, 2**62])
        np.testing.assert_array_equal(remapper.to_sparse(remapper.to_dense(sparse)), sparse)

    def test_unknown_ids_raise(self):
        remapper = IdRemapper(np.array([5, 9]))
        with pytest.raises(KeyError):
            remapper.to_dense([5, 6])
        with pytest.raises(KeyError):
            remapper.to_dense([10**18])  # beyond every observed id
        with pytest.raises(KeyError):
            remapper.to_sparse([2])

    def test_stable_across_slices_of_same_universe(self):
        # Two traces drawn from one universe get compatible mappings as long
        # as the remapper is built over their union.
        rng = np.random.default_rng(0)
        universe = rng.choice(2**60, size=64, replace=False)
        head = sparse_queries(rng, universe)
        tail = sparse_queries(rng, universe)
        remapper = IdRemapper.from_queries(head + tail)
        joint = IdRemapper.from_queries(tail + head)
        np.testing.assert_array_equal(remapper.sparse_ids, joint.sparse_ids)

    def test_empty(self):
        remapper = IdRemapper.from_queries([])
        assert remapper.num_ids == 0
        assert remapper.to_dense(np.empty(0, dtype=np.int64)).size == 0


class TestDensifyTrace:
    def test_densified_trace_fits_engine_bound(self):
        # The point of the shim: sparse 64-bit ids would imply an absurd
        # dense universe; after remapping the engine's flat arrays are sized
        # by the number of *distinct* ids.
        rng = np.random.default_rng(1)
        universe = rng.choice(2**63 - 1, size=96, replace=False)
        trace = Trace(sparse_queries(rng, universe, num_queries=100))
        assert trace.num_vectors > 2**32  # unusable directly
        dense, remapper = densify_trace(trace)
        assert dense.num_vectors == remapper.num_ids <= 96
        layout = BlockLayout.identity(dense.num_vectors, 8)
        stats = replay_table_cache_batched(
            dense.queries, layout, CacheAllBlockPolicy(), cache_size=32
        )
        assert stats.lookups == trace.num_lookups

    def test_replay_counters_invariant_under_remapping(self):
        # Remapping renames ids; with a layout renamed the same way the
        # replay is step-for-step identical.  Compare a dense trace against
        # a shuffled-rename of itself.
        rng = np.random.default_rng(2)
        n = 64
        perm = rng.permutation(n).astype(np.int64) * 1000 + 17  # sparse rename
        dense_trace = Trace(
            [rng.integers(0, n, size=5) for _ in range(80)], num_vectors=n
        )
        sparse_trace = Trace([perm[q] for q in dense_trace.queries])
        redense, remapper = densify_trace(sparse_trace)
        layout = BlockLayout.identity(n, 8)
        # Rename the layout's slots with the same bijection the remapper
        # chose, so physical co-location is preserved.
        order = remapper.to_dense(perm[layout.order])
        renamed = BlockLayout(order, vectors_per_block=8)
        baseline = replay_table_cache_batched(
            dense_trace.queries, layout, CacheAllBlockPolicy(), cache_size=16
        )
        remapped = replay_table_cache_batched(
            redense.queries, renamed, CacheAllBlockPolicy(), cache_size=16
        )
        assert remapped.counters() == baseline.counters()

    def test_densify_model_trace(self):
        rng = np.random.default_rng(3)
        universe = rng.choice(2**50, size=40, replace=False)
        model = ModelTrace(
            {
                "a": Trace(sparse_queries(rng, universe, num_queries=20)),
                "b": Trace(sparse_queries(rng, universe, num_queries=10)),
            }
        )
        dense, remappers = densify_model_trace(model)
        assert set(dense.tables) == {"a", "b"}
        for name in dense:
            assert dense[name].num_vectors == remappers[name].num_ids
            assert dense[name].num_lookups == model[name].num_lookups


class TestStreamingConstruction:
    """The loader's exact usage pattern: the remapper is folded together
    from streamed chunks, with ids arriving in no particular order, and must
    equal the one built from the whole trace at once."""

    def test_chunked_union_fold_equals_whole(self):
        rng = np.random.default_rng(4)
        universe = rng.choice(2**61, size=200, replace=False)
        queries = sparse_queries(rng, universe, num_queries=120)
        whole = IdRemapper.from_queries(queries)
        for chunk_size in (1, 7, 64):
            unique = np.empty(0, dtype=np.int64)
            for start in range(0, len(queries), chunk_size):
                chunk = queries[start : start + chunk_size]
                unique = np.union1d(unique, np.concatenate(chunk))
            folded = IdRemapper(unique)
            np.testing.assert_array_equal(folded.sparse_ids, whole.sparse_ids)
            probe = queries[0]
            np.testing.assert_array_equal(
                folded.to_dense(probe), whole.to_dense(probe)
            )

    def test_arrival_order_is_irrelevant(self):
        # Ids arriving out of training-set order (descending, interleaved,
        # shuffled) all land on the same sorted-rank mapping.
        rng = np.random.default_rng(5)
        universe = rng.choice(2**59, size=80, replace=False)
        orderings = [
            universe,
            universe[::-1],
            rng.permutation(universe),
            np.concatenate([universe[1::2], universe[0::2]]),
        ]
        remappers = [IdRemapper.from_queries([order]) for order in orderings]
        for remapper in remappers[1:]:
            np.testing.assert_array_equal(
                remapper.sparse_ids, remappers[0].sparse_ids
            )
            np.testing.assert_array_equal(
                remapper.to_dense(universe), remappers[0].to_dense(universe)
            )

    def test_chunked_densify_replays_identically(self):
        # densify_trace on the whole trace vs per-chunk remapping through a
        # shared remapper: same queries, same replay counters.
        rng = np.random.default_rng(6)
        universe = rng.choice(2**62, size=96, replace=False)
        trace = Trace(sparse_queries(rng, universe, num_queries=90))
        dense, remapper = densify_trace(trace)
        chunked = []
        for start in range(0, len(trace.queries), 13):
            for query in trace.queries[start : start + 13]:
                chunked.append(remapper.to_dense(query))
        layout = BlockLayout.identity(dense.num_vectors, 8)
        whole_stats = replay_table_cache_batched(
            dense.queries, layout, CacheAllBlockPolicy(), cache_size=24
        )
        chunk_stats = replay_table_cache_batched(
            chunked, layout, CacheAllBlockPolicy(), cache_size=24
        )
        for got, expected in zip(chunked, dense.queries):
            np.testing.assert_array_equal(got, expected)
        assert chunk_stats.counters() == whole_stats.counters()
