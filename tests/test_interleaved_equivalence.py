"""Equivalence contract of the interleaved multi-table store replay.

The interleaved engine (:mod:`repro.simulation.interleaved`) must reproduce
sequential :func:`~repro.simulation.runner.simulate_store` **bit for bit**,
per table — candidate counters, baseline counters, cache contents, policy
state and device accounting — for every replay schedule it offers: inline
(1 worker), sharded across worker processes (N workers), and any chunk
size.  These tests pin that contract on randomized multi-table stores that
put all six prefetch policies and degenerate cache sizes side by side, plus
the analytic unlimited-cache baseline and the sharding/stream helpers.
"""

import numpy as np
import pytest

from repro.caching.lru import LRUCache
from repro.caching.policies import (
    AccessThresholdPolicy,
    CacheAllBlockPolicy,
    CombinedPolicy,
    InsertAtPositionPolicy,
    NoPrefetchPolicy,
    ShadowAdmissionPolicy,
)
from repro.caching.replay import ReplayStats, replay_table_cache
from repro.core.bandana import BandanaStore, BandanaTableState
from repro.core.config import BandanaConfig, TableCacheConfig
from repro.nvm.block import BlockLayout
from repro.nvm.device import NVMDevice
from repro.simulation import simulate_store
from repro.simulation.interleaved import (
    InterleavedStoreReplayer,
    TableReplayTask,
    baseline_stats_for,
    iter_store_requests,
    TableReplayResult,
    merge_replay_stats,
    replay_store_interleaved,
    shard_tasks,
    unlimited_noprefetch_stats,
)
from repro.workloads.trace import ModelTrace, Trace

VECTORS_PER_BLOCK = 8

#: One table per built-in policy, with cache sizes spanning unlimited,
#: comfortable, block-sized, churning and degenerate regimes (None means
#: "as large as the table").
POLICY_TABLES = {
    "t-noprefetch": (lambda counts: NoPrefetchPolicy(), 30),
    "t-cacheall": (lambda counts: CacheAllBlockPolicy(), None),
    "t-insertpos": (lambda counts: InsertAtPositionPolicy(0.5), 9),
    "t-shadow": (lambda counts: ShadowAdmissionPolicy(30, 1.5), 3),
    "t-combined": (lambda counts: CombinedPolicy(30, position=0.7), 1),
    "t-threshold": (lambda counts: AccessThresholdPolicy(counts, 10), 48),
}


def counters(stats: ReplayStats):
    return stats.counters(include_latency=True)


def build_store(seed: int, interleaved: bool = False, num_workers: int = 1):
    """A multi-table store (one table per policy) plus its evaluation trace.

    Layouts, cache sizes, traces and access counts are randomized per seed;
    identical seeds produce identical stores, so two builds can be replayed
    under different schedules and compared counter for counter.
    """
    rng = np.random.default_rng(seed)
    config = BandanaConfig(
        total_cache_vectors=100,
        tune_thresholds=False,
        vector_bytes=128,
        block_bytes=VECTORS_PER_BLOCK * 128,
        interleaved_replay=interleaved,
        num_workers=num_workers,
    )
    tables = {}
    traces = {}
    for name, (make_policy, size) in POLICY_TABLES.items():
        num_vectors = int(rng.integers(60, 300))
        layout = BlockLayout(
            rng.permutation(num_vectors).astype(np.int64), VECTORS_PER_BLOCK
        )
        counts = rng.integers(0, 30, size=num_vectors).astype(np.int64)
        queries = [
            rng.integers(0, num_vectors, size=int(rng.integers(1, 10))).astype(np.int64)
            for _ in range(int(rng.integers(60, 120)))
        ]
        cache_size = num_vectors if size is None else min(size, num_vectors)
        tables[name] = BandanaTableState(
            name=name,
            layout=layout,
            cache=LRUCache(cache_size),
            policy=make_policy(counts),
            device=NVMDevice(
                num_blocks=layout.num_blocks, block_bytes=config.block_bytes
            ),
            cache_config=TableCacheConfig(cache_size_vectors=cache_size),
            access_counts=counts,
            stats=ReplayStats(
                vector_bytes=config.vector_bytes, block_bytes=config.block_bytes
            ),
        )
        traces[name] = Trace(queries, num_vectors=num_vectors)
    return BandanaStore(config, tables), ModelTrace(traces)


def assert_stores_equal(store_a: BandanaStore, store_b: BandanaStore) -> None:
    """Full observable-state equality: stats, cache order, device counters."""
    for name in store_a.tables:
        state_a, state_b = store_a.tables[name], store_b.tables[name]
        assert counters(state_a.stats) == counters(state_b.stats), name
        assert state_a.engine.cache.keys() == state_b.engine.cache.keys(), name
        assert state_a.device.blocks_read == state_b.device.blocks_read, name


class TestInterleavedMatchesSequential:
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_policies_and_cache_sizes(self, num_workers, seed):
        sequential_store, trace = build_store(seed)
        sequential = simulate_store(sequential_store, trace)
        interleaved_store, trace_copy = build_store(
            seed, interleaved=True, num_workers=num_workers
        )
        interleaved = simulate_store(interleaved_store, trace_copy)
        assert interleaved.interleaved and interleaved.num_workers == num_workers
        for name in trace:
            assert counters(interleaved.per_table[name].stats) == counters(
                sequential.per_table[name].stats
            ), name
            assert counters(interleaved.per_table[name].baseline_stats) == counters(
                sequential.per_table[name].baseline_stats
            ), name
        assert_stores_equal(interleaved_store, sequential_store)
        assert (
            interleaved.total_baseline_block_reads
            == sequential.total_baseline_block_reads
        )
        assert interleaved.bandwidth_increase == sequential.bandwidth_increase

    @pytest.mark.parametrize("chunk_requests", [1, 3, 1000])
    def test_every_chunk_size(self, chunk_requests):
        sequential_store, trace = build_store(5)
        sequential = simulate_store(sequential_store, trace)
        chunked_store, trace_copy = build_store(5)
        chunked = simulate_store(
            chunked_store, trace_copy, interleaved=True, chunk_requests=chunk_requests
        )
        for name in trace:
            assert counters(chunked.per_table[name].stats) == counters(
                sequential.per_table[name].stats
            ), name
        assert_stores_equal(chunked_store, sequential_store)

    def test_config_driven_schedule(self):
        """store.config.interleaved_replay/num_workers select the schedule."""
        sequential_store, trace = build_store(9)
        simulate_store(sequential_store, trace)
        config_store, trace_copy = build_store(9, interleaved=True, num_workers=2)
        result = simulate_store(config_store, trace_copy)  # no explicit args
        assert result.interleaved and result.num_workers == 2
        assert_stores_equal(config_store, sequential_store)

    def test_warm_continuation_after_sharded_replay(self):
        """Serving after a worker-sharded replay continues bit-identically.

        The worker engines (cache contents, shadow-policy state, pending
        prefetches, device counters) are adopted back into the store, so a
        second replay without reset must match the sequential store's.
        """
        sharded_store, trace_a = build_store(11, interleaved=True, num_workers=3)
        sequential_store, trace_b = build_store(11)
        simulate_store(sharded_store, trace_a)
        simulate_store(sequential_store, trace_b)
        simulate_store(sharded_store, trace_a, reset_first=False)
        simulate_store(sequential_store, trace_b, reset_first=False)
        assert_stores_equal(sharded_store, sequential_store)

    def test_reported_workers_capped_by_tables(self):
        """num_workers in the result is the shard count actually used."""
        store, trace = build_store(3)
        result = simulate_store(store, trace, interleaved=True, num_workers=16)
        assert result.num_workers == len(trace.tables)

    def test_adopted_policy_realiased_to_store_counts(self):
        """Worker-returned policies are re-pointed at the store's counts array."""
        store, trace = build_store(1, interleaved=True, num_workers=3)
        simulate_store(store, trace)
        state = store.tables["t-threshold"]
        assert state.policy.access_counts is state.access_counts

    def test_interleaved_requires_batched_engine(self):
        store, trace = build_store(2)
        object.__setattr__(store.config, "use_batched_engine", False)
        with pytest.raises(ValueError):
            simulate_store(store, trace, interleaved=True)

    def test_config_rejects_interleaved_reference_serving(self):
        with pytest.raises(ValueError):
            BandanaConfig(interleaved_replay=True, use_batched_engine=False)


class TestRequestStream:
    def test_zips_ragged_tables(self):
        trace = ModelTrace(
            {
                "a": Trace([[0], [1], [2]], num_vectors=4),
                "b": Trace([[3, 2]], num_vectors=4),
            }
        )
        requests = list(iter_store_requests(trace))
        assert len(requests) == 3
        assert set(requests[0]) == {"a", "b"}
        np.testing.assert_array_equal(requests[0]["b"], [3, 2])
        assert set(requests[1]) == {"a"}  # table b has run out of queries
        np.testing.assert_array_equal(requests[2]["a"], [2])

    def test_empty_trace(self):
        assert list(iter_store_requests(ModelTrace({}))) == []


class TestAnalyticBaseline:
    @pytest.mark.parametrize("seed", range(4))
    def test_unlimited_matches_reference_loop(self, seed):
        rng = np.random.default_rng(seed)
        num_vectors = int(rng.integers(40, 200))
        layout = BlockLayout(
            rng.permutation(num_vectors).astype(np.int64), VECTORS_PER_BLOCK
        )
        queries = [
            rng.integers(0, num_vectors, size=int(rng.integers(1, 12))).astype(np.int64)
            for _ in range(80)
        ]
        reference = replay_table_cache(
            queries, layout, NoPrefetchPolicy(), cache_size=None
        )
        analytic = unlimited_noprefetch_stats(queries, layout)
        assert counters(analytic) == counters(reference)

    def test_dispatch_unlimited_vs_limited(self):
        rng = np.random.default_rng(3)
        layout = BlockLayout(rng.permutation(64).astype(np.int64), VECTORS_PER_BLOCK)
        queries = [
            rng.integers(0, 64, size=5).astype(np.int64) for _ in range(40)
        ]
        for cache_size in (None, 64, 200):  # all effectively unlimited
            stats = baseline_stats_for(queries, layout, cache_size)
            assert counters(stats) == counters(
                replay_table_cache(queries, layout, NoPrefetchPolicy(), cache_size=None)
            )
        limited = baseline_stats_for(queries, layout, 7)
        assert counters(limited) == counters(
            replay_table_cache(queries, layout, NoPrefetchPolicy(), cache_size=7)
        )
        assert limited.evictions > 0  # genuinely exercised the limited path

    def test_empty_stream(self):
        layout = BlockLayout.identity(16, VECTORS_PER_BLOCK)
        stats = unlimited_noprefetch_stats([], layout)
        assert counters(stats) == counters(ReplayStats(block_bytes=1024))

    def test_out_of_range_ids_rejected(self):
        layout = BlockLayout.identity(16, VECTORS_PER_BLOCK)
        with pytest.raises(IndexError):
            unlimited_noprefetch_stats([np.array([3, 16])], layout)


def _dummy_tasks(lookup_counts):
    """Tasks with controlled lookup volumes (engines are never touched)."""
    layout = BlockLayout.identity(8, VECTORS_PER_BLOCK)
    tasks = []
    for index, count in enumerate(lookup_counts):
        tasks.append(
            TableReplayTask(
                name=f"table{index}",
                engine=None,  # sharding only reads name/queries
                queries=[np.zeros(count, dtype=np.int64)] if count else [],
            )
        )
    return tasks


class TestSharding:
    def test_partition_properties(self):
        tasks = _dummy_tasks([100, 1, 40, 7, 55, 3])
        for num_workers in (1, 2, 3, 4, 10):
            shards = shard_tasks(tasks, num_workers)
            assert len(shards) == min(num_workers, len(tasks))
            assert all(shards)
            names = sorted(task.name for shard in shards for task in shard)
            assert names == sorted(task.name for task in tasks)

    def test_largest_first_balance(self):
        shards = shard_tasks(_dummy_tasks([100, 60, 50, 10]), 2)
        loads = sorted(
            sum(task.num_lookups for task in shard) for shard in shards
        )
        assert loads == [110, 110]  # greedy: 100+10 | 60+50

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            shard_tasks(_dummy_tasks([1]), 0)

    def test_empty_tasks(self):
        assert shard_tasks([], 4) == []
        assert replay_store_interleaved([], num_workers=4) == {}

    def test_duplicate_table_rejected(self):
        tasks = _dummy_tasks([1, 2])
        tasks[1].name = tasks[0].name
        with pytest.raises(ValueError):
            replay_store_interleaved(tasks, num_workers=2)


class TestInterleavedServing:
    def test_lookup_request_matches_per_table_loop(self):
        loop_store, trace = build_store(7)
        fanout_store, _ = build_store(7, interleaved=True)
        for request in iter_store_requests(trace):
            loop_store.lookup_request(request)
            fanout_store.lookup_request(request)
        for name in trace:
            assert counters(loop_store.tables[name].stats) == counters(
                fanout_store.tables[name].stats
            ), name

    def test_unknown_table_rejected(self):
        store, _ = build_store(7, interleaved=True)
        with pytest.raises(KeyError):
            store.lookup_request({"no-such-table": [0]})

    @pytest.mark.parametrize("chunk_requests", [1, 3, 1000])
    def test_replay_requests_chunking_matches_per_request(self, chunk_requests):
        """The streaming API's chunked flush equals per-request replay."""
        reference_store, trace = build_store(6)
        chunked_store, _ = build_store(6)
        reference = InterleavedStoreReplayer(
            {name: reference_store.serving_engine(name) for name in trace}
        )
        chunked = InterleavedStoreReplayer(
            {name: chunked_store.serving_engine(name) for name in trace}
        )
        for request in iter_store_requests(trace):
            reference.replay_request(request)
        chunked.replay_requests(
            iter_store_requests(trace), chunk_requests=chunk_requests
        )
        for name in trace:
            assert counters(chunked_store.tables[name].stats) == counters(
                reference_store.tables[name].stats
            ), name
            assert (
                chunked.engines[name].cache.keys()
                == reference.engines[name].cache.keys()
            ), name

    def test_replay_requests_rejects_bad_chunk_and_unknown_table(self):
        store, trace = build_store(6, interleaved=True)
        replayer = InterleavedStoreReplayer(
            {name: store.serving_engine(name) for name in trace}
        )
        with pytest.raises(ValueError):
            replayer.replay_requests(iter_store_requests(trace), chunk_requests=0)
        with pytest.raises(KeyError):
            replayer.replay_requests([{"no-such-table": np.array([0])}])

    def test_reset_rebuilds_fanout(self):
        """After reset_serving_state the fan-out serves a clean slate."""
        store, trace = build_store(8, interleaved=True)
        requests = list(iter_store_requests(trace))
        for request in requests:
            store.lookup_request(request)
        first = {name: counters(store.tables[name].stats) for name in trace}
        store.reset_serving_state()
        assert store.aggregate_stats().lookups == 0
        for request in requests:
            store.lookup_request(request)
        second = {name: counters(store.tables[name].stats) for name in trace}
        assert first == second

    def test_merge_replay_stats_aggregates(self):
        store, trace = build_store(4, interleaved=True)
        tasks = [
            TableReplayTask(
                name=name,
                engine=store.serving_engine(name),
                queries=table_trace.queries,
                include_baseline=False,
                baseline_cache_size=store.tables[name].cache_config.cache_size_vectors,
            )
            for name, table_trace in trace.items()
        ]
        results = replay_store_interleaved(tasks, num_workers=1)
        merged = merge_replay_stats(results)
        assert merged.lookups == sum(t.num_lookups for t in trace.tables.values())
        assert merged.lookups == store.aggregate_stats().lookups


class TestMergeReplayStatsEdges:
    """Edge cases of the store-aggregate merge (empty, single, mismatched)."""

    @staticmethod
    def make_result(name, lookups, hits, vector_bytes=128, block_bytes=1024):
        stats = ReplayStats(
            vector_bytes=vector_bytes,
            block_bytes=block_bytes,
            lookups=lookups,
            hits=hits,
            misses=lookups - hits,
        )
        return TableReplayResult(name=name, engine=None, stats=stats)

    def test_empty_shard_list_is_zero_stats(self):
        merged = merge_replay_stats({})
        assert merged.counters(include_latency=True) == ReplayStats().counters(
            include_latency=True
        )

    def test_single_shard_passes_counters_through(self):
        result = self.make_result("t", lookups=10, hits=4)
        merged = merge_replay_stats({"t": result})
        assert merged.counters() == result.stats.counters()
        assert merged.vector_bytes == 128 and merged.block_bytes == 1024

    def test_mismatched_table_sets_union_like_merge(self):
        # Two worker shards come back with disjoint table sets; merging the
        # concatenated mapping equals merging each shard then summing.
        shard_a = {"t1": self.make_result("t1", 10, 3)}
        shard_b = {
            "t2": self.make_result("t2", 7, 7),
            "t3": self.make_result("t3", 5, 0),
        }
        merged = merge_replay_stats({**shard_a, **shard_b})
        partial = merge_replay_stats(shard_a).merge(merge_replay_stats(shard_b))
        assert merged.counters() == partial.counters()
        assert merged.lookups == 22 and merged.hits == 10

    def test_mismatched_geometry_rejected(self):
        results = {
            "t1": self.make_result("t1", 10, 3, block_bytes=1024),
            "t2": self.make_result("t2", 7, 7, block_bytes=4096),
        }
        with pytest.raises(ValueError, match="vector/block sizes"):
            merge_replay_stats(results)


class TestMoreWorkersThanTables:
    @pytest.mark.parametrize("num_workers", [7, 16])
    def test_bit_identical_to_sequential(self, num_workers):
        # POLICY_TABLES has 6 tables; extra workers must collapse to empty
        # shards, not crash or perturb the replay.
        sequential_store, trace = build_store(3)
        simulate_store(sequential_store, trace)
        interleaved_store, trace_copy = build_store(
            3, interleaved=True, num_workers=num_workers
        )
        result = simulate_store(interleaved_store, trace_copy)
        # The runner clamps to one worker per table (empty shards are never
        # spawned), so the effective count is the table count.
        assert result.num_workers == min(num_workers, len(POLICY_TABLES))
        for name in trace:
            assert counters(interleaved_store.tables[name].stats) == counters(
                sequential_store.tables[name].stats
            ), name

    def test_shard_tasks_never_exceeds_table_count(self):
        store, trace = build_store(3, interleaved=True)
        tasks = [
            TableReplayTask(
                name=name,
                engine=store.serving_engine(name),
                queries=table_trace.queries,
                include_baseline=False,
            )
            for name, table_trace in trace.items()
        ]
        shards = shard_tasks(tasks, num_workers=50)
        assert len(shards) <= len(tasks)
        assert sorted(t.name for shard in shards for t in shard) == sorted(
            t.name for t in tasks
        )
