"""Unit and property tests for the positional-insertion LRU cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching.lru import LRUCache
from repro.caching.shadow import ShadowCache


class TestLRUCacheBasics:
    def test_insert_and_get(self):
        cache = LRUCache(2)
        cache.insert(1)
        assert cache.get(1)
        assert not cache.get(2)
        assert len(cache) == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.insert(1)
        cache.insert(2)
        cache.get(1)          # 1 becomes MRU, 2 is now LRU
        evicted = cache.insert(3)
        assert evicted == 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_capacity_zero_stores_nothing(self):
        cache = LRUCache(0)
        assert cache.insert(1) is None
        assert len(cache) == 0
        assert not cache.get(1)

    def test_peek_does_not_promote(self):
        cache = LRUCache(2)
        cache.insert(1)
        cache.insert(2)
        cache.peek(1)          # must NOT promote 1
        evicted = cache.insert(3)
        assert evicted == 1

    def test_reinsert_existing_does_not_evict(self):
        cache = LRUCache(2)
        cache.insert(1)
        cache.insert(2)
        assert cache.insert(1) is None
        assert len(cache) == 2

    def test_remove_and_clear(self):
        cache = LRUCache(3)
        cache.insert(1)
        assert cache.remove(1)
        assert not cache.remove(1)
        cache.insert(2)
        cache.clear()
        assert len(cache) == 0 and cache.evictions == 0

    def test_eviction_counter(self):
        cache = LRUCache(1)
        cache.insert(1)
        cache.insert(2)
        cache.insert(3)
        assert cache.evictions == 2

    def test_keys_ordered_most_recent_first(self):
        cache = LRUCache(3)
        cache.insert(1)
        cache.insert(2)
        cache.insert(3)
        cache.get(1)
        assert cache.keys()[0] == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_invalid_position_rejected(self):
        cache = LRUCache(2)
        with pytest.raises(ValueError):
            cache.insert(1, position=1.5)


class TestPositionalInsertion:
    def test_bottom_insertion_evicted_first(self):
        cache = LRUCache(3)
        cache.insert(1)
        cache.insert(2)
        cache.insert(3, position=1.0)    # straight to the LRU end
        evicted = cache.insert(4)
        assert evicted == 3

    def test_top_insertion_survives(self):
        cache = LRUCache(3)
        cache.insert(1)
        cache.insert(2)
        cache.insert(3, position=0.0)
        evicted = cache.insert(4)
        assert evicted == 1

    def test_middle_insertion_between_extremes(self):
        # A middle-position insert should outlive a bottom insert but not a
        # top insert when pressure arrives.
        cache = LRUCache(4)
        cache.insert(1)
        cache.insert(2)
        cache.insert(10, position=1.0)
        cache.insert(11, position=0.5)
        first_evicted = cache.insert(5)
        assert first_evicted == 10


class LRUReferenceModel:
    """Straightforward list-based LRU used as an oracle for property tests."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.items = []  # most recent first

    def get(self, key):
        if key in self.items:
            self.items.remove(key)
            self.items.insert(0, key)
            return True
        return False

    def insert(self, key):
        if key in self.items:
            self.items.remove(key)
        elif len(self.items) >= self.capacity and self.capacity > 0:
            self.items.pop()
        if self.capacity > 0:
            self.items.insert(0, key)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    operations=st.lists(
        st.tuples(st.sampled_from(["get", "insert"]), st.integers(min_value=0, max_value=12)),
        max_size=200,
    ),
)
@settings(max_examples=60, deadline=None)
def test_lru_matches_reference_model(capacity, operations):
    """With only top-of-queue insertions, the cache must behave exactly like LRU."""
    cache = LRUCache(capacity)
    reference = LRUReferenceModel(capacity)
    for op, key in operations:
        if op == "get":
            assert cache.get(key) == reference.get(key)
        else:
            cache.insert(key, position=0.0)
            reference.insert(key)
        assert len(cache) == len(reference.items)
        assert set(cache.keys()) == set(reference.items)


@given(
    capacity=st.integers(min_value=1, max_value=10),
    keys=st.lists(st.integers(min_value=0, max_value=30), max_size=100),
    positions=st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=100),
)
@settings(max_examples=40, deadline=None)
def test_lru_never_exceeds_capacity(capacity, keys, positions):
    cache = LRUCache(capacity)
    for key, position in zip(keys, positions):
        cache.insert(key, position=position)
        assert len(cache) <= capacity


class TestShadowCache:
    def test_tracks_demand_accesses(self):
        shadow = ShadowCache(real_cache_size=2, multiplier=1.0)
        shadow.record_access(1)
        assert shadow.contains(1)
        assert not shadow.contains(2)

    def test_multiplier_scales_capacity(self):
        shadow = ShadowCache(real_cache_size=100, multiplier=1.5)
        assert shadow.capacity == 150

    def test_lru_behaviour(self):
        shadow = ShadowCache(real_cache_size=2, multiplier=1.0)
        shadow.record_access(1)
        shadow.record_access(2)
        shadow.record_access(3)
        assert not shadow.contains(1)
        assert shadow.contains(2) and shadow.contains(3)

    def test_clear(self):
        shadow = ShadowCache(2)
        shadow.record_access(1)
        shadow.clear()
        assert len(shadow) == 0
