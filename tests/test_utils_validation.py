"""Unit tests for the argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_1d_ints,
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3.5, "x") == 3.5

    @pytest.mark.parametrize("value", [0, -1, float("nan"), float("inf")])
    def test_rejects_non_positive_and_non_finite(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive(value, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")


class TestCheckInRange:
    def test_accepts_bounds(self):
        assert check_in_range(0, 0, 1, "x") == 0
        assert check_in_range(1, 0, 1, "x") == 1

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, 0, 1, "x")


class TestCheckFraction:
    def test_accepts_half(self):
        assert check_fraction(0.5, "x") == 0.5

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.01, "x")


class TestCheckArray1dInts:
    def test_accepts_list(self):
        out = check_array_1d_ints([1, 2, 3], "ids")
        assert out.dtype == np.int64
        assert out.tolist() == [1, 2, 3]

    def test_scalar_becomes_1d(self):
        assert check_array_1d_ints(5, "ids").tolist() == [5]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_array_1d_ints([[1, 2], [3, 4]], "ids")

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            check_array_1d_ints([1.5, 2.5], "ids")

    def test_empty_ok(self):
        assert check_array_1d_ints([], "ids").size == 0
