"""Unit tests for the argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_1d_ints,
    check_bool,
    check_fraction,
    check_in_range,
    check_instance,
    check_int_at_least,
    check_non_negative,
    check_positive,
    check_probability,
    check_seed,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3.5, "x") == pytest.approx(3.5)

    @pytest.mark.parametrize("value", [0, -1, float("nan"), float("inf")])
    def test_rejects_non_positive_and_non_finite(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive(value, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")


class TestCheckInRange:
    def test_accepts_bounds(self):
        assert check_in_range(0, 0, 1, "x") == 0
        assert check_in_range(1, 0, 1, "x") == 1

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, 0, 1, "x")


class TestCheckFraction:
    def test_accepts_half(self):
        assert check_fraction(0.5, "x") == pytest.approx(0.5)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.01, "x")


class TestCheckArray1dInts:
    def test_accepts_list(self):
        out = check_array_1d_ints([1, 2, 3], "ids")
        assert out.dtype == np.int64
        assert out.tolist() == [1, 2, 3]

    def test_scalar_becomes_1d(self):
        assert check_array_1d_ints(5, "ids").tolist() == [5]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_array_1d_ints([[1, 2], [3, 4]], "ids")

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            check_array_1d_ints([1.5, 2.5], "ids")

    def test_empty_ok(self):
        assert check_array_1d_ints([], "ids").size == 0


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == pytest.approx(0.0)
        assert check_probability(1.0, "p") == pytest.approx(1.0)

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects_outside_unit_interval(self, value):
        with pytest.raises(ValueError, match="p"):
            check_probability(value, "p")


class TestCheckIntAtLeast:
    def test_accepts_and_returns_int(self):
        out = check_int_at_least(3, 1, "num_workers")
        assert out == 3 and isinstance(out, int)

    def test_rejects_below_minimum_naming_the_knob(self):
        with pytest.raises(ValueError, match="num_workers.*>= 1"):
            check_int_at_least(0, 1, "num_workers")

    @pytest.mark.parametrize("value", [2.0, "2", None])
    def test_rejects_non_integers(self, value):
        with pytest.raises(TypeError, match="chunk"):
            check_int_at_least(value, 1, "chunk")

    def test_rejects_bool(self):
        # bool is an int subclass; True silently meaning 1 hides bugs.
        with pytest.raises(TypeError):
            check_int_at_least(True, 1, "x")


class TestCheckBool:
    @pytest.mark.parametrize("value", [True, False])
    def test_accepts_and_returns_real_bools(self, value):
        assert check_bool(value, "flag") is value

    @pytest.mark.parametrize("value", [1, 0, "no", None, 1.0])
    def test_rejects_truthy_stand_ins(self, value):
        # `tune_thresholds="no"` would silently *enable* tuning.
        with pytest.raises(TypeError, match="flag"):
            check_bool(value, "flag")


class TestCheckSeed:
    def test_none_passes_through(self):
        assert check_seed(None, "seed") is None

    def test_returns_plain_int(self):
        out = check_seed(np.int64(7), "seed")
        assert out == 7 and type(out) is int
        assert check_seed(0, "seed") == 0

    @pytest.mark.parametrize("value", [1.0, "3", True])
    def test_rejects_non_integer_identities(self, value):
        with pytest.raises(TypeError, match="seed"):
            check_seed(value, "seed")

    def test_rejects_negative(self):
        # SeedSequence rejects negative entropy; fail at config time instead.
        with pytest.raises(ValueError, match="seed"):
            check_seed(-1, "seed")


class TestCheckInstance:
    def test_accepts_instances_including_subclasses(self):
        class Base:
            pass

        class Sub(Base):
            pass

        obj = Sub()
        assert check_instance(obj, Base, "cfg") is obj

    def test_rejects_wrong_type_naming_the_knob(self):
        # Passing a plain dict where a config object belongs would defer the
        # crash to the first attribute access.
        with pytest.raises(TypeError, match="serving must be a tuple"):
            check_instance({"batch_size": 8}, tuple, "serving")
