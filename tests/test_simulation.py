"""Tests for the replay runners, experiment sweeps and report formatting."""

import numpy as np
import pytest

from repro.caching.policies import (
    AccessThresholdPolicy,
    CacheAllBlockPolicy,
    NoPrefetchPolicy,
)
from repro.nvm.block import BlockLayout
from repro.simulation.experiment import ExperimentRecord, ExperimentSweep
from repro.simulation.report import format_percent, format_series, format_table
from repro.simulation.runner import (
    simulate_table,
    unlimited_cache_bandwidth_increase,
)
from repro.workloads.characterization import access_counts


class TestSimulateTable:
    def test_baseline_included_by_default(self, eval_trace, shp_layout):
        result = simulate_table(eval_trace, shp_layout, CacheAllBlockPolicy(), cache_size=None)
        assert result.baseline_stats is not None
        assert result.stats.lookups == eval_trace.num_lookups

    def test_no_baseline(self, eval_trace, shp_layout):
        result = simulate_table(
            eval_trace, shp_layout, NoPrefetchPolicy(), cache_size=100, include_baseline=False
        )
        assert result.baseline_stats is None
        assert result.bandwidth_increase == pytest.approx(0.0)

    def test_shp_unlimited_cache_beats_identity(self, small_spec, eval_trace, shp_layout):
        """Reproduces the core of Figure 9: SHP placement increases effective
        bandwidth over the original layout under an unlimited cache."""
        identity = BlockLayout.identity(small_spec.num_vectors, 32)
        gain_shp = unlimited_cache_bandwidth_increase(eval_trace, shp_layout)
        gain_identity = unlimited_cache_bandwidth_increase(eval_trace, identity)
        assert gain_shp > gain_identity > 0

    def test_threshold_policy_beats_cache_all_at_small_cache(
        self, train_trace, eval_trace, shp_layout
    ):
        """Reproduces the core of Figures 10 and 12: with a limited cache,
        admitting every prefetched vector is much worse than filtering by the
        training-trace access count."""
        counts = access_counts(train_trace)
        working_set = eval_trace.unique_vectors().size
        cache_size = max(32, working_set // 4)
        cache_all = simulate_table(
            eval_trace, shp_layout, CacheAllBlockPolicy(), cache_size=cache_size
        )
        filtered = simulate_table(
            eval_trace,
            shp_layout,
            AccessThresholdPolicy(counts, threshold=float(np.percentile(counts[counts > 0], 90))),
            cache_size=cache_size,
        )
        assert cache_all.bandwidth_increase < 0
        assert filtered.bandwidth_increase > cache_all.bandwidth_increase


class TestExperimentSweep:
    def test_run_and_columns(self):
        sweep = ExperimentSweep("demo", "toy sweep")
        sweep.run("x", [1, 2, 3], lambda x: {"y": float(x * 2)})
        assert sweep.parameter_column("x") == [1, 2, 3]
        assert sweep.column("y") == [2.0, 4.0, 6.0]

    def test_best(self):
        sweep = ExperimentSweep("demo")
        sweep.add({"x": 1}, {"y": 0.5})
        sweep.add({"x": 2}, {"y": 0.9})
        assert sweep.best("y").parameters["x"] == 2
        assert sweep.best("y", maximize=False).parameters["x"] == 1

    def test_to_table_contains_values(self):
        sweep = ExperimentSweep("demo", "description")
        sweep.add({"x": 1}, {"y": 0.1234})
        text = sweep.to_table()
        assert "demo" in text and "x" in text and "0.123" in text

    def test_empty_sweep(self):
        assert "no records" in ExperimentSweep("empty").to_table()
        assert ExperimentSweep("empty").best("y") is None

    def test_record_is_frozen_copy(self):
        params = {"x": 1}
        sweep = ExperimentSweep("demo")
        record = sweep.add(params, {"y": 1.0})
        params["x"] = 99
        assert record.parameters["x"] == 1
        assert isinstance(record, ExperimentRecord)


class TestReportFormatting:
    def test_format_percent(self):
        assert format_percent(0.423) == "42.3%"
        assert format_percent(1.5, decimals=0) == "150%"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned widths

    def test_format_table_mismatched_row(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        text = format_series({1: 0.5, 2: 0.25})
        assert "1=50.0%" in text and "2=25.0%" in text
