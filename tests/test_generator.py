"""Tests for the synthetic workload generator."""

import numpy as np
import pytest

from repro.workloads import (
    SyntheticTraceGenerator,
    build_generators,
    generate_model_trace,
    paper_shaped_lookups,
    scaled_table_specs,
)
from tests.conftest import make_spec


class TestPaperShapedLookups:
    def test_density_formula(self):
        spec = make_spec(num_vectors=3200, compulsory=0.1)
        lookups = paper_shaped_lookups(spec, vectors_per_block=32, unique_per_block=2.0)
        assert lookups == pytest.approx(2.0 * 100 / 0.1, rel=0.01)

    def test_monotone_in_density(self):
        spec = make_spec()
        assert paper_shaped_lookups(spec, unique_per_block=1.0) < paper_shaped_lookups(
            spec, unique_per_block=3.0
        )


class TestGeneratorStructure:
    def test_reproducible_given_seed(self):
        spec = make_spec(num_vectors=2048)
        a = SyntheticTraceGenerator(spec, seed=5, expected_lookups=3000).generate(40)
        b = SyntheticTraceGenerator(spec, seed=5, expected_lookups=3000).generate(40)
        assert a == b

    def test_different_seeds_differ(self):
        spec = make_spec(num_vectors=2048)
        a = SyntheticTraceGenerator(spec, seed=1, expected_lookups=3000).generate(40)
        b = SyntheticTraceGenerator(spec, seed=2, expected_lookups=3000).generate(40)
        assert a != b

    def test_ids_within_table(self, generator, eval_trace, small_spec):
        flat = eval_trace.flatten()
        assert flat.min() >= 0
        assert flat.max() < small_spec.num_vectors

    def test_traffic_stays_in_active_set(self, generator, eval_trace):
        active = set(generator.active_ids.tolist())
        assert set(eval_trace.unique_vectors().tolist()) <= active

    def test_topic_of_covers_every_vector(self, generator, small_spec):
        topics = generator.topic_of()
        assert topics.shape == (small_spec.num_vectors,)
        assert topics.min() >= 0
        assert topics.max() < generator.num_topics

    def test_queries_have_distinct_ids(self, eval_trace):
        for query in eval_trace.queries[:100]:
            assert len(np.unique(query)) == len(query)


class TestGeneratorCalibration:
    def test_avg_query_size_close_to_spec(self, eval_trace, small_spec):
        assert (
            0.6 * small_spec.avg_lookups_per_query
            < eval_trace.avg_lookups_per_query
            <= 1.3 * small_spec.avg_lookups_per_query
        )

    def test_compulsory_miss_rate_in_band(self, small_spec):
        generator = SyntheticTraceGenerator(small_spec, seed=11, expected_lookups=6000)
        trace = generator.generate_lookups(6000)
        measured = trace.unique_vectors().size / trace.num_lookups
        # The calibration targets the spec value; accept a generous band since
        # query-level clustering inflates it somewhat.
        assert 0.5 * small_spec.compulsory_miss_rate < measured < 3.5 * small_spec.compulsory_miss_rate

    def test_skewed_table_more_cacheable_than_uniform(self):
        skewed = make_spec(name="skewed", compulsory=0.05, alpha=1.1)
        uniform = make_spec(name="uniform", compulsory=0.6, alpha=0.4)
        t_skewed = SyntheticTraceGenerator(skewed, seed=3, expected_lookups=4000).generate_lookups(4000)
        t_uniform = SyntheticTraceGenerator(uniform, seed=3, expected_lookups=4000).generate_lookups(4000)
        rate_skewed = t_skewed.unique_vectors().size / t_skewed.num_lookups
        rate_uniform = t_uniform.unique_vectors().size / t_uniform.num_lookups
        assert rate_skewed < rate_uniform


class TestModelTraceGeneration:
    def test_share_split_matches_table1(self):
        specs = scaled_table_specs(1 / 2000, names=["table1", "table2", "table8"])
        model = generate_model_trace(specs, total_lookups=20000, seed=0, split="share")
        shares = model.lookup_shares()
        # table2 serves the largest share of lookups, as in the paper.
        assert max(shares, key=shares.get) == "table2"

    def test_paper_shaped_split_ignores_total(self):
        specs = scaled_table_specs(1 / 2000, names=["table1", "table8"])
        model = generate_model_trace(specs, seed=0, split="paper-shaped", lookups_scale=0.5)
        assert model.total_lookups > 0

    def test_share_split_requires_total(self):
        specs = scaled_table_specs(1 / 2000, names=["table1"])
        with pytest.raises(ValueError):
            generate_model_trace(specs, split="share")

    def test_unknown_split_rejected(self):
        specs = scaled_table_specs(1 / 2000, names=["table1"])
        with pytest.raises(ValueError):
            generate_model_trace(specs, total_lookups=100, split="bogus")

    def test_build_generators_shared_structure(self):
        specs = scaled_table_specs(1 / 2000, names=["table1", "table2"])
        generators = build_generators(specs, seed=4)
        assert set(generators) == {"table1", "table2"}
        train = generate_model_trace(specs, seed=4, split="paper-shaped", generators=generators, lookups_scale=0.5)
        evaluation = generate_model_trace(specs, seed=4, split="paper-shaped", generators=generators, lookups_scale=0.25)
        # Both traces must reference only each generator's active set.
        for name in specs:
            active = set(generators[name].active_ids.tolist())
            assert set(train[name].unique_vectors().tolist()) <= active
            assert set(evaluation[name].unique_vectors().tolist()) <= active
