"""Tests for the shared NVM device layer (repro.device) and its clients.

Covers the device-bank PR's checklist: DeviceClock FIFO/pricing behaviour
and conservation invariants (busy time ≤ wall time × K, depth histograms
sum to serve counts), the bank's table→device mapping, the serving
front-end's accounting modes (legacy ≡ shared single-table, shared
K=num_tables ≡ per-table, cross-table contention under a genuinely shared
device), closed-loop arrival properties (hard concurrency cap, think-time
stationarity, determinism), and single-host admission-control accounting.
"""

import os
import sys

if __package__ in (None, ""):  # direct script run
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
    )

import numpy as np
import pytest

from repro import ServingConfig
from repro.core.config import DeviceBankConfig, TracingConfig
from repro.device import DeviceClock, NVMDeviceBank, depth_bucket
from repro.nvm.latency import NVMLatencyModel
from repro.serving import ClosedLoopPopulation, simulate_serving
from repro.serving.arrivals import arrival_times
from repro.tracing import (
    ATTR_PARALLEL,
    STAGE_DEVICE_SERVICE,
    STAGE_REQUEST_SHED,
    Tracer,
    validate_trace,
)
from repro.utils.rng import ensure_rng
from test_serving import build_store_and_trace


# ------------------------------------------------------------------ DeviceClock
class TestDeviceClock:
    def make_clock(self, **kwargs):
        return DeviceClock(NVMLatencyModel(), block_bytes=4096, **kwargs)

    def test_fifo_backlog_serialises_batches(self):
        clock = self.make_clock()
        first = clock.serve_blocks(0.0, 64)
        second = clock.serve_blocks(1.0, 64)
        assert first.start_us == pytest.approx(0.0)
        # The device is busy until `first` completes; `second` queues.
        assert second.start_us == first.completion_us
        assert second.queue_wait_us > 0.0
        assert second.completion_us > first.completion_us

    def test_idle_device_serves_immediately(self):
        clock = self.make_clock()
        record = clock.serve_blocks(0.0, 8)
        late = clock.serve_blocks(record.completion_us + 100.0, 8)
        assert late.start_us == late.dispatch_us
        assert late.queue_wait_us == pytest.approx(0.0)

    def test_zero_reads_do_not_occupy_the_device(self):
        clock = self.make_clock()
        record = clock.serve_blocks(0.0, 0)
        assert record.completion_us == record.dispatch_us
        assert clock.free_at_us == pytest.approx(0.0)
        assert clock.busy_us == pytest.approx(0.0)
        # The serve is still observed (depth histogram, serve count).
        assert clock.serves == 1

    def test_serve_blocks_requires_a_latency_model(self):
        clock = DeviceClock(None, block_bytes=4096)
        with pytest.raises(ValueError):
            clock.serve_blocks(0.0, 4)

    def test_serve_duration_fifo_and_validation(self):
        clock = DeviceClock(None, block_bytes=4096)
        first = clock.serve_duration(0.0, 50.0)
        assert (first.start_us, first.completion_us) == (0.0, 50.0)
        queued = clock.serve_duration(10.0, 5.0)
        assert queued.start_us == pytest.approx(50.0)
        assert queued.completion_us == pytest.approx(55.0)
        # Out-of-order arrivals (retries/hedges) are allowed.
        early = clock.serve_duration(5.0, 1.0)
        assert early.start_us == pytest.approx(55.0)
        with pytest.raises(ValueError):
            clock.serve_duration(0.0, -1.0)

    def test_rebase_clears_backlog_but_keeps_aggregates(self):
        clock = self.make_clock()
        clock.serve_blocks(0.0, 64)
        clock.serve_blocks(0.0, 64)
        serves, busy = clock.serves, clock.busy_us
        assert clock.free_at_us > 0.0
        clock.rebase(0.0)
        assert clock.free_at_us == pytest.approx(0.0)
        assert clock.serves == serves
        assert clock.busy_us == busy
        assert len(clock.records) == serves  # the log survives; backlog doesn't
        fresh = clock.serve_blocks(0.0, 8)
        assert fresh.queue_wait_us == pytest.approx(0.0)

    def test_depth_bucket_edges(self):
        assert depth_bucket(0.0) == 0
        assert depth_bucket(1.0) == 1
        assert depth_bucket(2.0) == 2
        assert depth_bucket(3.0) == 4
        assert depth_bucket(64.0) == 64


# ---------------------------------------------------------------- NVMDeviceBank
class TestNVMDeviceBank:
    def test_round_robin_mapping_is_idempotent(self):
        bank = NVMDeviceBank(num_devices=2, latency_model=NVMLatencyModel())
        assert bank.map_table("a") == 0
        assert bank.map_table("b") == 1
        assert bank.map_table("c") == 0
        assert bank.map_table("a") == 0  # unchanged on re-pin
        assert bank.table_mapping() == {"a": 0, "b": 1, "c": 0}

    def test_single_device_shares_all_tables(self):
        bank = NVMDeviceBank(
            num_devices=1, latency_model=NVMLatencyModel(), tables=("a", "b", "c")
        )
        assert set(bank.table_mapping().values()) == {0}
        first = bank.serve_blocks("a", 0.0, 32)
        second = bank.serve_blocks("b", 0.0, 32)
        # Cross-table contention: table b queues behind table a's reads.
        assert second.start_us == first.completion_us

    def test_private_devices_do_not_contend(self):
        bank = NVMDeviceBank(
            num_devices=2, latency_model=NVMLatencyModel(), tables=("a", "b")
        )
        first = bank.serve_blocks("a", 0.0, 32)
        second = bank.serve_blocks("b", 0.0, 32)
        assert second.start_us == pytest.approx(0.0)
        assert second.device_index != first.device_index
        assert first.queue_wait_us == second.queue_wait_us == pytest.approx(0.0)

    def test_busy_time_conservation(self):
        rng = ensure_rng(5)
        num_devices = 3
        bank = NVMDeviceBank(num_devices=num_devices, latency_model=NVMLatencyModel())
        tables = [f"t{i}" for i in range(7)]
        dispatch_us = 0.0
        for _ in range(200):
            dispatch_us += float(rng.exponential(30.0))
            bank.serve_blocks(str(rng.choice(tables)), dispatch_us, int(rng.integers(0, 48)))
        wall_us = bank.free_at_us  # dispatches started at 0
        assert wall_us > 0.0
        for device in bank.devices:
            # FIFO: one request at a time, so busy time can't exceed wall time.
            assert device.busy_us <= wall_us + 1e-6
        assert bank.total_busy_us() <= wall_us * num_devices + 1e-6

    def test_depth_histograms_sum_to_serve_counts(self):
        rng = ensure_rng(6)
        bank = NVMDeviceBank(num_devices=2, latency_model=NVMLatencyModel())
        dispatch_us = 0.0
        for i in range(120):
            dispatch_us += float(rng.exponential(20.0))
            bank.serve_blocks(f"t{i % 5}", dispatch_us, int(rng.integers(0, 32)))
        for device, hist in zip(bank.devices, bank.depth_histograms()):
            assert sum(hist.values()) == device.serves
            assert device.serves == len(device.records)
        assert sum(d.serves for d in bank.devices) == 120

    def test_queue_wait_per_table_and_bankwide(self):
        bank = NVMDeviceBank(
            num_devices=2, latency_model=NVMLatencyModel(), tables=("a", "b")
        )
        record = bank.serve_blocks("a", 0.0, 64)
        assert bank.queue_wait_us(0.0, "a") == record.completion_us
        assert bank.queue_wait_us(0.0, "b") == pytest.approx(0.0)
        assert bank.queue_wait_us(0.0) == record.completion_us  # max over bank

    def test_snapshot_shape(self):
        bank = NVMDeviceBank(
            num_devices=2, latency_model=NVMLatencyModel(), tables=("a", "b")
        )
        bank.serve_blocks("a", 0.0, 16)
        snap = bank.snapshot()
        assert snap["num_devices"] == 2
        assert snap["table_mapping"] == {"a": 0, "b": 1}
        per_device = snap["per_device"]
        assert len(per_device) == 2
        assert per_device[0]["serves"] == 1
        assert per_device[0]["blocks_issued"] == 16
        assert all(isinstance(k, str) for k in per_device[0]["depth_hist"])

    def test_rebase_and_keep_records_false(self):
        bank = NVMDeviceBank(num_devices=2, keep_records=False)
        bank.serve_duration("a", 0.0, 100.0)
        assert bank.records() == []
        assert bank.free_at_us == pytest.approx(100.0)
        bank.rebase(7.0)
        assert all(device.free_at_us == pytest.approx(7.0) for device in bank.devices)


# ----------------------------------------------------------- accounting modes
@pytest.fixture(scope="module")
def store_and_trace():
    return build_store_and_trace()


def serve(store_and_trace, config, **kwargs):
    store, eval_trace = store_and_trace
    return simulate_serving(store, eval_trace, config=config, **kwargs)


class TestAccountingModes:
    def test_default_config_is_legacy_with_no_bank(self, store_and_trace):
        report = serve(store_and_trace, ServingConfig(seed=3))
        assert report.requests_shed == 0
        assert report.device_bank is None

    def test_per_table_mode_gives_every_table_a_device(self, store_and_trace):
        report = serve(
            store_and_trace,
            ServingConfig(seed=3, device=DeviceBankConfig(accounting="per-table")),
        )
        bank = report.device_bank
        assert bank is not None
        assert bank["num_devices"] == 2
        assert sorted(bank["table_mapping"].values()) == [0, 1]

    def test_shared_with_enough_devices_equals_per_table(self, store_and_trace):
        per_table = serve(
            store_and_trace,
            ServingConfig(seed=3, device=DeviceBankConfig(accounting="per-table")),
        )
        shared = serve(
            store_and_trace,
            ServingConfig(
                seed=3,
                device=DeviceBankConfig(accounting="shared", devices_per_host=2),
            ),
        )
        assert shared.latency == per_table.latency
        assert shared.blocks_read == per_table.blocks_read
        assert shared.device_bank["table_mapping"] == per_table.device_bank["table_mapping"]

    def test_shared_single_table_equals_legacy(self):
        store, eval_trace = build_store_and_trace(names=("table1",))
        legacy = simulate_serving(store, eval_trace, config=ServingConfig(seed=3))
        shared = simulate_serving(
            store,
            eval_trace,
            config=ServingConfig(
                seed=3, device=DeviceBankConfig(accounting="shared", devices_per_host=1)
            ),
        )
        # One table: splitting per table is the whole batch, so the bank's
        # single device replays the legacy accountant's exact arithmetic.
        assert shared.latency == legacy.latency
        assert shared.blocks_read == legacy.blocks_read
        assert shared.queue_depth_hist == legacy.queue_depth_hist

    def test_shared_device_creates_cross_table_contention(self, store_and_trace):
        rate = ServingConfig(seed=3, arrival_rate_rps=8000.0)
        per_table = serve(
            store_and_trace,
            ServingConfig(
                seed=3,
                arrival_rate_rps=rate.arrival_rate_rps,
                device=DeviceBankConfig(accounting="per-table"),
            ),
        )
        shared = serve(
            store_and_trace,
            ServingConfig(
                seed=3,
                arrival_rate_rps=rate.arrival_rate_rps,
                device=DeviceBankConfig(accounting="shared", devices_per_host=1),
            ),
        )
        # Both tables' reads serialise on the one physical device: the tail
        # pays for the other table's queue, which per-table accounting
        # cannot produce (each table had a private device there).
        assert shared.latency.p999_us > per_table.latency.p999_us
        assert shared.latency.mean_us > per_table.latency.mean_us
        assert shared.blocks_read == per_table.blocks_read  # same cache work

    def test_bank_modes_trace_validates_with_parallel_device_spans(
        self, store_and_trace
    ):
        tracer = Tracer(TracingConfig(enabled=True, sample_every=1))
        report = serve(
            store_and_trace,
            ServingConfig(
                seed=3,
                arrival_rate_rps=8000.0,
                device=DeviceBankConfig(accounting="per-table"),
            ),
            tracing=tracer,
        )
        assert report.num_requests == len(tracer.traces)
        saw_parallel_pair = False
        for trace in tracer.traces.values():
            assert validate_trace(trace) == []
            service = [s for s in trace.spans if s.name == STAGE_DEVICE_SERVICE]
            if len(service) > 1:
                assert {s.attributes["device"] for s in service} == {0, 1}
                assert all(s.attributes[ATTR_PARALLEL] for s in service)
                saw_parallel_pair = True
        assert saw_parallel_pair


# ------------------------------------------------------------------ closed loop
class TestClosedLoopArrivals:
    def test_arrival_times_refuses_closed_loop(self):
        config = ServingConfig(arrival_process="closed-loop")
        with pytest.raises(ValueError):
            arrival_times(config, 10, seed=1)

    def test_population_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopPopulation(0, 0.01, ensure_rng(1))
        with pytest.raises(ValueError):
            ClosedLoopPopulation(4, 0.0, ensure_rng(1))

    def test_nominal_rate(self):
        population = ClosedLoopPopulation(32, 0.016, ensure_rng(1))
        assert population.nominal_rate_rps == pytest.approx(2000.0)

    def test_think_time_stationarity(self):
        # The think-time distribution does not drift with simulated time:
        # draws conditioned on late completions have the same mean as the
        # initial draws (both are the same exponential).
        population = ClosedLoopPopulation(4, 0.01, ensure_rng(42))
        initial = np.array([population.initial_arrival_us() for _ in range(20000)])
        late = np.array(
            [population.next_arrival_us(1e9) - 1e9 for _ in range(20000)]
        )
        assert initial.mean() == pytest.approx(population.think_mean_us, rel=0.05)
        assert late.mean() == pytest.approx(population.think_mean_us, rel=0.05)
        assert np.all(late > 0.0)

    def test_closed_loop_run_is_deterministic(self, store_and_trace):
        config = ServingConfig(
            arrival_process="closed-loop",
            seed=3,
            closed_loop_clients=8,
            closed_loop_think_s=0.004,
        )
        first = serve(store_and_trace, config)
        second = serve(store_and_trace, config)
        assert first.latency == second.latency
        assert first.num_batches == second.num_batches
        assert first.blocks_read == second.blocks_read

    def test_concurrency_never_exceeds_population(self, store_and_trace):
        clients = 6
        tracer = Tracer(TracingConfig(enabled=True, sample_every=1))
        report = serve(
            store_and_trace,
            ServingConfig(
                arrival_process="closed-loop",
                seed=3,
                closed_loop_clients=clients,
                closed_loop_think_s=0.0002,  # think ≪ service: saturate
            ),
            tracing=tracer,
        )
        assert report.num_requests == len(tracer.traces)
        # Sweep the in-flight intervals: at no simulated instant are more
        # than `clients` requests between arrival and response.
        events = []
        for trace in tracer.traces.values():
            events.append((trace.arrival_us, 1))
            events.append((trace.completion_us, -1))
        events.sort()
        in_flight = peak = 0
        for _, delta in events:
            in_flight += delta
            peak = max(peak, in_flight)
        assert 0 < peak <= clients

    def test_closed_loop_throughput_bounded_by_nominal_rate(self, store_and_trace):
        report = serve(
            store_and_trace,
            ServingConfig(
                arrival_process="closed-loop",
                seed=3,
                closed_loop_clients=8,
                closed_loop_think_s=0.004,
            ),
        )
        # A closed loop cannot serve faster than its clients offer.
        assert report.throughput_rps <= report.offered_rate_rps
        assert report.offered_rate_rps == pytest.approx(8 / 0.004)

    def test_closed_loop_traces_validate(self, store_and_trace):
        tracer = Tracer(TracingConfig(enabled=True, sample_every=1))
        serve(
            store_and_trace,
            ServingConfig(
                arrival_process="closed-loop",
                seed=3,
                closed_loop_clients=8,
                closed_loop_think_s=0.001,
                device=DeviceBankConfig(accounting="shared"),
            ),
            tracing=tracer,
        )
        for trace in tracer.traces.values():
            assert validate_trace(trace) == []

    def test_closed_loop_rejects_cluster_routing(self, store_and_trace):
        store, eval_trace = store_and_trace
        with pytest.raises(ValueError):
            simulate_serving(
                store,
                eval_trace,
                config=ServingConfig(arrival_process="closed-loop"),
                cluster=object(),  # type: ignore[arg-type]  # never reached
            )


# ------------------------------------------------------------ admission control
class TestAdmissionControl:
    OVERLOAD = dict(seed=3, arrival_rate_rps=400000.0, admission_queue_slack=0.1)

    def test_shedding_disabled_by_default(self, store_and_trace):
        report = serve(store_and_trace, ServingConfig(seed=3, arrival_rate_rps=400000.0))
        assert report.requests_shed == 0
        assert report.shed_rate == pytest.approx(0.0)

    def test_overload_sheds_and_counts(self, store_and_trace):
        report = serve(store_and_trace, ServingConfig(**self.OVERLOAD))
        assert 0 < report.requests_shed < report.num_requests
        assert report.shed_rate == pytest.approx(
            report.requests_shed / report.num_requests
        )

    def test_shed_requests_do_no_cache_work(self, store_and_trace):
        full = serve(store_and_trace, ServingConfig(seed=3, arrival_rate_rps=400000.0))
        shed = serve(store_and_trace, ServingConfig(**self.OVERLOAD))
        assert shed.lookups < full.lookups
        assert shed.blocks_read < full.blocks_read

    def test_shedding_improves_served_tail(self, store_and_trace):
        full = serve(store_and_trace, ServingConfig(seed=3, arrival_rate_rps=400000.0))
        shed = serve(store_and_trace, ServingConfig(**self.OVERLOAD))
        # Shed rejections return fast and the surviving queue is shorter.
        assert shed.latency.p999_us < full.latency.p999_us

    def test_shed_traces_are_degraded_with_marker_span(self, store_and_trace):
        tracer = Tracer(TracingConfig(enabled=True, sample_every=1))
        report = serve(store_and_trace, ServingConfig(**self.OVERLOAD), tracing=tracer)
        shed_traces = [t for t in tracer.traces.values() if t.degraded]
        assert len(shed_traces) == report.requests_shed
        for trace in shed_traces:
            assert validate_trace(trace) == []
            assert any(s.name == STAGE_REQUEST_SHED for s in trace.spans)

    def test_bank_mode_sheds_per_table(self, store_and_trace):
        report = serve(
            store_and_trace,
            ServingConfig(
                device=DeviceBankConfig(accounting="shared"), **self.OVERLOAD
            ),
        )
        assert report.requests_shed > 0
        assert report.device_bank is not None

    def test_per_table_slo_overrides(self):
        config = ServingConfig(table_slo_us=(("table1", 500.0),))
        assert config.slo_us("table1") == pytest.approx(500.0)
        assert config.slo_us("table7") == config.slo_latency_us


# ---------------------------------------------------------------------- config
class TestDeviceBankConfig:
    def test_defaults(self):
        config = DeviceBankConfig()
        assert config.accounting == "legacy"
        assert config.devices_per_host == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceBankConfig(accounting="florp")
        with pytest.raises(ValueError):
            DeviceBankConfig(devices_per_host=0)
        with pytest.raises(ValueError):
            ServingConfig(closed_loop_clients=0)
        with pytest.raises(ValueError):
            ServingConfig(closed_loop_think_s=0.0)
        with pytest.raises(ValueError):
            ServingConfig(admission_queue_slack=-1.0)
        with pytest.raises(ValueError):
            ServingConfig(table_slo_us=(("t", 0.0),))
        with pytest.raises(TypeError):
            ServingConfig(device="shared")  # type: ignore[arg-type]


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
