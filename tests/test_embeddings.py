"""Tests for embedding tables, synthetic values and the recommendation model."""

import numpy as np
import pytest

from repro.embeddings.model import EmbeddingModel, RecommendationModel
from repro.embeddings.synthesis import synthesize_topic_vectors
from repro.embeddings.table import EmbeddingTable


class TestEmbeddingTable:
    def test_shapes_and_sizes(self):
        table = EmbeddingTable("t", num_vectors=100, dim=64, dtype=np.float16)
        assert table.values.shape == (100, 64)
        assert table.vector_bytes == 128
        assert table.nbytes == 100 * 128

    def test_gather(self):
        values = np.arange(20, dtype=np.float32).reshape(10, 2)
        table = EmbeddingTable("t", 10, dim=2, dtype=np.float32, values=values)
        out = table.gather([3, 0])
        np.testing.assert_array_equal(out, [[6, 7], [0, 1]])

    def test_gather_out_of_range(self):
        table = EmbeddingTable("t", 10, dim=2)
        with pytest.raises(IndexError):
            table.gather([10])

    def test_pooled_sums(self):
        values = np.ones((4, 3), dtype=np.float32)
        table = EmbeddingTable("t", 4, dim=3, dtype=np.float32, values=values)
        np.testing.assert_allclose(table.pooled([0, 1, 2]), [3, 3, 3])
        np.testing.assert_allclose(table.pooled([]), [0, 0, 0])

    def test_update_applies_sparse_gradient(self):
        table = EmbeddingTable("t", 4, dim=2, dtype=np.float32)
        table.update([1, 3], np.ones((2, 2), dtype=np.float32), learning_rate=0.5)
        np.testing.assert_allclose(table.values[1], [-0.5, -0.5])
        np.testing.assert_allclose(table.values[0], [0, 0])

    def test_update_shape_mismatch(self):
        table = EmbeddingTable("t", 4, dim=2)
        with pytest.raises(ValueError):
            table.update([1], np.ones((2, 2)))

    def test_bad_values_shape_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingTable("t", 4, dim=2, values=np.zeros((4, 3)))

    def test_set_values(self):
        table = EmbeddingTable("t", 2, dim=2, dtype=np.float32)
        table.set_values(np.full((2, 2), 7.0))
        assert float(table.values[0, 0]) == pytest.approx(7.0)


class TestSynthesis:
    def test_same_topic_vectors_are_closer(self):
        topic_of = np.array([0] * 50 + [1] * 50)
        values = synthesize_topic_vectors(topic_of, dim=16, noise=0.2, seed=0).astype(
            np.float32
        )
        same = np.linalg.norm(values[0] - values[1])
        cross = np.linalg.norm(values[0] - values[60])
        assert same < cross

    def test_noise_zero_collapses_topics(self):
        topic_of = np.array([0, 0, 1, 1])
        values = synthesize_topic_vectors(topic_of, dim=4, noise=0.0, seed=0)
        np.testing.assert_allclose(values[0], values[1])

    def test_unassigned_vectors_get_values(self):
        values = synthesize_topic_vectors(np.array([-1, -1, 0]), dim=4, seed=0)
        assert values.shape == (3, 4)
        assert np.isfinite(values.astype(np.float32)).all()

    def test_deterministic(self):
        topic_of = np.array([0, 1, 2, 0])
        a = synthesize_topic_vectors(topic_of, dim=8, seed=5)
        b = synthesize_topic_vectors(topic_of, dim=8, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            synthesize_topic_vectors(np.zeros((2, 2), dtype=int))


class TestEmbeddingModel:
    def make_model(self):
        model = EmbeddingModel()
        model.add_table(EmbeddingTable("users", 10, dim=4, dtype=np.float32))
        model.add_table(EmbeddingTable("pages", 20, dim=4, dtype=np.float32))
        return model

    def test_registration(self):
        model = self.make_model()
        assert len(model) == 2
        assert "users" in model
        assert model.table_names == ["users", "pages"]
        assert model.nbytes == 10 * 16 + 20 * 16

    def test_duplicate_rejected(self):
        model = self.make_model()
        with pytest.raises(ValueError):
            model.add_table(EmbeddingTable("users", 5, dim=4))

    def test_pooled_features_concatenates_tables(self):
        model = self.make_model()
        features = model.pooled_features({"users": [1, 2], "pages": [3]})
        assert features.shape == (8,)

    def test_missing_table_contributes_zeros(self):
        model = self.make_model()
        features = model.pooled_features({"users": [1]})
        np.testing.assert_allclose(features[4:], 0.0)


class TestRecommendationModel:
    def test_score_in_unit_interval(self):
        embedding_model = EmbeddingModel(
            {"t": EmbeddingTable("t", 50, dim=8, dtype=np.float32)}
        )
        model = RecommendationModel(embedding_model, hidden_dims=(16,), dense_dim=4, seed=0)
        score = model.score({"t": [1, 2, 3]})
        assert 0.0 <= score <= 1.0

    def test_pooled_override_matches_direct(self):
        embedding_model = EmbeddingModel(
            {"t": EmbeddingTable("t", 50, dim=8, dtype=np.float32)}
        )
        model = RecommendationModel(embedding_model, seed=1)
        request = {"t": [5, 7]}
        direct = model.score(request)
        pooled = embedding_model.pooled_features(request)
        assert model.score(request, pooled=pooled) == pytest.approx(direct)

    def test_requires_a_table(self):
        with pytest.raises(ValueError):
            RecommendationModel(EmbeddingModel())

    def test_bad_dense_features_shape(self):
        embedding_model = EmbeddingModel({"t": EmbeddingTable("t", 10, dim=4)})
        model = RecommendationModel(embedding_model, dense_dim=4)
        with pytest.raises(ValueError):
            model.score({"t": [0]}, dense_features=np.zeros(3))

    def test_num_parameters_positive(self):
        embedding_model = EmbeddingModel({"t": EmbeddingTable("t", 10, dim=4)})
        model = RecommendationModel(embedding_model)
        assert model.num_parameters > 0
