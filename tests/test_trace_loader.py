"""Tests for the streaming external-trace loader (repro.scenarios.loader).

The load-bearing pin is the chunked≡whole equivalence: because the
IdRemapper's sparse→dense mapping is the sorted rank over the full key
universe — independent of arrival order — streaming the trace in chunks of
any size must produce bit-identical queries (and hence bit-identical replay
counters) to loading the file whole.
"""

import os

import numpy as np
import pytest

from repro.caching.engine import BatchReplayEngine
from repro.caching.policies import CacheAllBlockPolicy
from repro.nvm.block import BlockLayout
from repro.scenarios import (
    LoadedTrace,
    TraceLoaderConfig,
    build_remapper,
    characterization_report,
    hash_key,
    iter_dense_chunks,
    load_trace,
)

DATA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data")
TWITTER = os.path.join(DATA_DIR, "sample_twitter_trace.csv")
COLUMNAR = os.path.join(DATA_DIR, "sample_columnar_trace.csv")

FIXTURES = {"twitter": TWITTER, "columnar": COLUMNAR}


# ------------------------------------------------------------------- hash_key
class TestHashKey:
    def test_numeric_keys_map_to_themselves(self):
        assert hash_key("0") == 0
        assert hash_key("12345") == 12345

    def test_deterministic_and_63_bit(self):
        values = {hash_key(f"user_{i:04d}") for i in range(200)}
        assert len(values) == 200  # no collisions on a small key set
        assert all(0 <= v < 2**63 for v in values)
        # Stable across calls (unlike the salted builtin hash).
        assert hash_key("k00ff1234") == hash_key("k00ff1234")

    def test_distinct_keys_distinct_ids(self):
        assert hash_key("abc") != hash_key("abd")


# ------------------------------------------------------------------- loading
class TestLoadTrace:
    def test_twitter_fixture_golden(self):
        loaded = load_trace(TraceLoaderConfig(path=TWITTER, format="twitter"))
        assert isinstance(loaded, LoadedTrace)
        assert len(loaded.trace.queries) == 428
        assert loaded.trace.num_vectors == 302
        assert sum(q.size for q in loaded.trace.queries) == 2260
        assert loaded.source_rows == 2400
        assert loaded.dropped_rows == 140  # the fixture's mutation rows
        # Dense-id contract: every id within [0, num_vectors).
        ids = np.concatenate(loaded.trace.queries)
        assert ids.min() >= 0 and ids.max() < loaded.trace.num_vectors

    def test_columnar_fixture_golden(self):
        loaded = load_trace(TraceLoaderConfig(path=COLUMNAR, format="columnar"))
        assert len(loaded.trace.queries) == 120
        assert loaded.trace.num_vectors == 190
        assert sum(q.size for q in loaded.trace.queries) == 575
        assert loaded.dropped_rows == 0

    def test_get_only_filter(self):
        # With mutations kept, every data row survives (and the mutation-only
        # query groups reappear), so the trace is strictly larger.
        kept = load_trace(
            TraceLoaderConfig(path=TWITTER, format="twitter", get_only=False)
        )
        assert kept.dropped_rows == 0
        assert sum(q.size for q in kept.trace.queries) == 2400
        assert kept.trace.num_vectors >= 302

    def test_max_queries_cap(self):
        capped = load_trace(
            TraceLoaderConfig(path=TWITTER, format="twitter", max_queries=25)
        )
        assert len(capped.trace.queries) == 25

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            load_trace(TraceLoaderConfig(path=os.path.join(DATA_DIR, "nope.csv")))


# -------------------------------------------------- chunked ≡ whole equivalence
class TestChunkedEquivalence:
    @pytest.mark.parametrize("fmt", sorted(FIXTURES))
    @pytest.mark.parametrize("chunk_queries", [1, 7, 64])
    def test_chunked_queries_bit_identical(self, fmt, chunk_queries):
        whole = load_trace(TraceLoaderConfig(path=FIXTURES[fmt], format=fmt))
        chunked_config = TraceLoaderConfig(
            path=FIXTURES[fmt], format=fmt, chunk_queries=chunk_queries
        )
        streamed = []
        for chunk in iter_dense_chunks(chunked_config):
            assert chunk.num_vectors == whole.trace.num_vectors
            assert len(chunk.queries) <= chunk_queries
            streamed.extend(chunk.queries)
        assert len(streamed) == len(whole.trace.queries)
        for got, expected in zip(streamed, whole.trace.queries):
            np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("fmt", sorted(FIXTURES))
    def test_chunked_replay_counters_bit_identical(self, fmt):
        # The equivalence the dense-id contract exists for: replaying the
        # streamed chunks through one engine reproduces the whole-file
        # replay counter for counter.
        whole = load_trace(TraceLoaderConfig(path=FIXTURES[fmt], format=fmt))
        layout = BlockLayout.identity(whole.trace.num_vectors, 8)

        def fresh_engine():
            return BatchReplayEngine(
                layout, CacheAllBlockPolicy(), cache_size=whole.trace.num_vectors // 4
            )

        reference = fresh_engine().replay(whole.trace.queries)
        engine = fresh_engine()
        for chunk in iter_dense_chunks(
            TraceLoaderConfig(path=FIXTURES[fmt], format=fmt, chunk_queries=7)
        ):
            stats = engine.replay(chunk.queries)
        assert stats.counters() == reference.counters()

    def test_remapper_is_shared_across_chunks(self):
        config = TraceLoaderConfig(path=TWITTER, format="twitter")
        remapper = build_remapper(config)
        loaded = load_trace(config)
        assert remapper.num_ids == loaded.trace.num_vectors
        np.testing.assert_array_equal(
            remapper.sparse_ids, loaded.remapper.sparse_ids
        )


# ------------------------------------------------------------ characterization
class TestCharacterizationReport:
    def test_renders_against_paper_table1(self):
        loaded = load_trace(TraceLoaderConfig(path=TWITTER, format="twitter"))
        report = characterization_report(loaded, name="sample-twitter")
        measured = report["measured"]
        assert measured["name"] == "sample-twitter"
        assert measured["num_queries"] == 428
        assert measured["num_vectors"] == 302
        assert measured["format"] == "twitter"
        assert 0.0 < measured["compulsory_miss_rate"] < 1.0
        assert measured["avg_lookups_per_query"] == pytest.approx(2260 / 428, rel=1e-3)
        # All eight production rows, column for column.
        paper = report["paper_table1"]
        assert len(paper) == 8
        for row in paper:
            assert set(row) == {
                "name",
                "num_vectors",
                "avg_lookups_per_query",
                "lookup_share",
                "compulsory_miss_rate",
            }
