"""Tests for the batch-serving front-end (repro.serving).

Covers the satellite checklist of the serving PR: NVM latency-model
monotonicity under load, the dynamic batcher's linger/size cutoffs, the
device-feedback accountant, and a seeded golden pin of ServingReport
percentiles (the simulated clock is deterministic, so they are bit-stable).
"""

import os
import sys

if __package__ in (None, ""):  # direct script run (golden regeneration)
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
    )

import numpy as np
import pytest

from repro import BandanaConfig, BandanaStore, ServingConfig
from repro.nvm.latency import NVMLatencyModel
from repro.serving import (
    DeviceLatencyAccountant,
    arrival_times,
    form_batches,
    mmpp_arrival_times,
    poisson_arrival_times,
    simulate_serving,
)
from repro.simulation import simulate_store
from repro.workloads import (
    SyntheticTraceGenerator,
    paper_shaped_lookups,
    scaled_table_specs,
)
from repro.workloads.trace import ModelTrace


# --------------------------------------------------------------------- helpers
def build_store_and_trace(seed=3, scale=1 / 2000, names=("table1", "table7")):
    specs = scaled_table_specs(scale, names=list(names))
    train, evaluation = {}, {}
    for i, (name, spec) in enumerate(specs.items()):
        lookups = paper_shaped_lookups(spec)
        generator = SyntheticTraceGenerator(spec, seed=10 + i, expected_lookups=lookups)
        train[name] = generator.generate_lookups(2 * lookups)
        evaluation[name] = generator.generate_lookups(lookups)
    store = BandanaStore.build(
        ModelTrace(train),
        BandanaConfig(total_cache_vectors=2000, tune_thresholds=False, seed=seed),
    )
    return store, ModelTrace(evaluation)


# ------------------------------------------------------- latency model feedback
class TestLatencyModelUnderLoad:
    def test_loaded_latency_monotone_in_throughput(self):
        model = NVMLatencyModel()
        capacity = model.bandwidth_gbps(8) * 1000
        sweep = np.linspace(0.0, 1.3, 40) * capacity
        means = [model.loaded_latency(mbps).mean_us for mbps in sweep]
        p99s = [model.loaded_latency(mbps).p99_us for mbps in sweep]
        assert means == sorted(means)
        assert p99s == sorted(p99s)
        assert all(p99 >= mean for mean, p99 in zip(means, p99s))

    def test_application_latency_monotone_in_load_and_waste(self):
        model = NVMLatencyModel()
        # More application throughput at fixed effective bandwidth: no faster.
        lats = [
            model.application_latency(mbps, 0.5).mean_us
            for mbps in (10, 100, 400, 800, 1600)
        ]
        assert lats == sorted(lats)
        # Less effective bandwidth (more wasted device reads) at fixed
        # application throughput: no faster either (Figure 5's argument).
        waste = [
            model.application_latency(60.0, frac).mean_us
            for frac in (1.0, 0.5, 0.25, 0.1, 128 / 4096)
        ]
        assert waste == sorted(waste)

    def test_loaded_latency_accepts_observed_queue_depths(self):
        # The serving loop feeds back *observed* depths, including 0 and
        # fractional values; all must be in-domain after the clamp.
        model = NVMLatencyModel()
        for qd in (0.0, 0.5, 1.0, 7.3, 512.0):
            loaded = model.loaded_latency(100.0, queue_depth=qd)
            assert np.isfinite(loaded.mean_us) and loaded.mean_us > 0


# ------------------------------------------------------------- arrival process
class TestArrivals:
    def test_poisson_rate_and_determinism(self):
        rng = np.random.default_rng(0)
        times = poisson_arrival_times(20000, 1000.0, rng)
        assert times.size == 20000
        assert np.all(np.diff(times) >= 0)
        assert times[-1] == pytest.approx(20.0, rel=0.05)  # ~rate * n
        again = poisson_arrival_times(20000, 1000.0, np.random.default_rng(0))
        np.testing.assert_array_equal(times, again)

    def test_mmpp_matches_stationary_rate_but_is_burstier(self):
        rng = np.random.default_rng(1)
        mmpp = mmpp_arrival_times(40000, 1000.0, 8.0, 0.2, 0.05, rng)
        assert np.all(np.diff(mmpp) >= 0)
        # Stationary mean rate equals the configured rate...
        assert 40000 / mmpp[-1] == pytest.approx(1000.0, rel=0.1)
        # ...but the inter-arrival distribution is heavier-tailed than the
        # Poisson process of the same rate (squared coefficient of variation
        # of an MMPP exceeds 1).
        poisson = poisson_arrival_times(40000, 1000.0, np.random.default_rng(1))
        def scv(times):
            gaps = np.diff(times)
            return gaps.var() / gaps.mean() ** 2
        assert scv(mmpp) > 1.5 * scv(poisson)

    def test_dispatcher_selects_process(self):
        poisson_cfg = ServingConfig(arrival_rate_rps=500.0)
        mmpp_cfg = ServingConfig(arrival_rate_rps=500.0, arrival_process="mmpp")
        a = arrival_times(poisson_cfg, 100, seed=7)
        b = arrival_times(mmpp_cfg, 100, seed=7)
        assert a.size == b.size == 100
        assert not np.array_equal(a, b)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ServingConfig(arrival_rate_rps=0)
        with pytest.raises(ValueError):
            ServingConfig(arrival_process="uniform")
        with pytest.raises(ValueError):
            ServingConfig(arrival_process="mmpp", mmpp_burst_fraction=0.0)
        with pytest.raises(ValueError):
            ServingConfig(max_linger_us=-1)


# -------------------------------------------------------------------- batcher
class TestDynamicBatcher:
    def test_size_cutoff_dispatches_on_filling_arrival(self):
        # Six requests in one tight burst, max batch 4: the first batch fills
        # on the 4th arrival and dispatches right then, not at the deadline.
        arrivals = np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        batches = form_batches(arrivals, max_batch_requests=4, max_linger_us=100.0)
        assert [(b.start, b.stop) for b in batches] == [(0, 4), (4, 6)]
        assert batches[0].dispatch_us == pytest.approx(3.0)  # arrival of the filling request
        assert batches[1].dispatch_us == pytest.approx(104.0)  # linger from request 4

    def test_linger_cutoff_dispatches_partial_batch_at_deadline(self):
        arrivals = np.array([0.0, 10.0, 500.0])
        batches = form_batches(arrivals, max_batch_requests=8, max_linger_us=50.0)
        assert [(b.start, b.stop) for b in batches] == [(0, 2), (2, 3)]
        assert batches[0].dispatch_us == pytest.approx(50.0)
        assert batches[1].dispatch_us == pytest.approx(550.0)

    def test_arrival_exactly_at_deadline_is_included(self):
        arrivals = np.array([0.0, 50.0, 51.0])
        batches = form_batches(arrivals, max_batch_requests=8, max_linger_us=50.0)
        assert (batches[0].start, batches[0].stop) == (0, 2)

    def test_unbatched_mode_ignores_linger(self):
        arrivals = np.array([0.0, 1.0, 1.0, 2.0])
        batches = form_batches(arrivals, max_batch_requests=1, max_linger_us=1e9)
        assert len(batches) == 4
        assert [b.dispatch_us for b in batches] == [0.0, 1.0, 1.0, 2.0]

    def test_zero_linger_batches_only_simultaneous_arrivals(self):
        arrivals = np.array([0.0, 0.0, 0.0, 5.0])
        batches = form_batches(arrivals, max_batch_requests=8, max_linger_us=0.0)
        assert [(b.start, b.stop) for b in batches] == [(0, 3), (3, 4)]

    def test_dispatch_times_non_decreasing(self):
        rng = np.random.default_rng(5)
        arrivals = np.sort(rng.random(500)) * 1e5
        for max_batch, linger in ((1, 0.0), (4, 30.0), (16, 1000.0)):
            batches = form_batches(arrivals, max_batch, linger)
            dispatches = [b.dispatch_us for b in batches]
            assert dispatches == sorted(dispatches)
            assert sum(b.size for b in batches) == arrivals.size


# ----------------------------------------------------------------- accountant
class TestDeviceLatencyAccountant:
    def make(self, **kwargs):
        return DeviceLatencyAccountant(
            NVMLatencyModel(), block_bytes=4096, **kwargs
        )

    def test_zero_read_batch_skips_the_device(self):
        acc = self.make()
        record = acc.serve_batch(100.0, 0)
        assert record.completion_us == pytest.approx(100.0)
        assert record.read_latency_us == pytest.approx(0.0)
        assert acc.free_at_us == pytest.approx(0.0)

    def test_fifo_serialisation_under_backlog(self):
        acc = self.make()
        first = acc.serve_batch(0.0, 64)
        second = acc.serve_batch(1.0, 64)  # dispatched while device busy
        assert second.completion_us > first.completion_us
        # The second batch starts only when the first completes.
        assert second.completion_us - first.completion_us == pytest.approx(
            second.read_latency_us * np.ceil(64 / second.queue_depth)
        )

    def test_backlog_raises_observed_queue_depth_and_latency(self):
        quiet = self.make()
        backlogged = self.make()
        lone = quiet.serve_batch(0.0, 8)
        backlogged.serve_batch(0.0, 48)
        piled = backlogged.serve_batch(1.0, 8)  # 48 reads still in flight
        assert piled.queue_depth > lone.queue_depth
        assert piled.read_latency_us > lone.read_latency_us

    def test_throughput_window_feedback_inflates_latency(self):
        # Same batch shape, but a device already pushed near saturation in
        # the trailing window prices reads higher.
        acc = self.make(throughput_window_s=0.01)
        capacity_blocks = int(NVMLatencyModel().blocks_per_second(8) * 0.01)
        acc.serve_batch(0.0, capacity_blocks)  # ~saturates the window
        hot = acc.serve_batch(5000.0, 8)
        cold = self.make(throughput_window_s=0.01).serve_batch(5000.0, 8)
        assert hot.device_mbps > cold.device_mbps
        assert hot.read_latency_us > cold.read_latency_us

    def test_negative_reads_rejected(self):
        with pytest.raises(ValueError):
            self.make().serve_batch(0.0, -1)


# ------------------------------------------------------------------ front-end
class TestSimulateServing:
    @pytest.fixture(scope="class")
    def store_and_trace(self):
        return build_store_and_trace()

    def test_counters_identical_to_simulate_store(self, store_and_trace):
        store, eval_trace = store_and_trace
        simulate_serving(
            store,
            eval_trace,
            ServingConfig(arrival_rate_rps=4000, max_batch_requests=8),
        )
        serving_counters = store.aggregate_stats().counters()
        simulate_store(store, eval_trace, include_baseline=False)
        assert store.aggregate_stats().counters() == serving_counters

    def test_overload_shows_up_as_queueing_delay_and_slo_misses(self, store_and_trace):
        store, eval_trace = store_and_trace
        config = dict(max_batch_requests=8, max_linger_us=300.0, slo_latency_us=3000.0)
        light = simulate_serving(
            store, eval_trace, ServingConfig(arrival_rate_rps=2000, **config)
        )
        crushed = simulate_serving(
            store, eval_trace, ServingConfig(arrival_rate_rps=2_000_000, **config)
        )
        assert crushed.latency.p99_us > 5 * light.latency.p99_us
        assert crushed.slo_violation_rate > light.slo_violation_rate
        assert crushed.mean_queue_depth >= light.mean_queue_depth
        # Open loop: the overloaded run cannot sustain its offered rate.
        assert crushed.throughput_rps < 0.75 * crushed.offered_rate_rps

    def test_batching_amortises_queueing_at_high_load(self, store_and_trace):
        store, eval_trace = store_and_trace
        rate = 50_000
        unbatched = simulate_serving(
            store, eval_trace, ServingConfig(arrival_rate_rps=rate, max_batch_requests=1)
        )
        batched = simulate_serving(
            store,
            eval_trace,
            ServingConfig(arrival_rate_rps=rate, max_batch_requests=32, max_linger_us=400.0),
        )
        assert batched.mean_batch_size > 2.0
        assert batched.latency.p99_us < unbatched.latency.p99_us

    def test_report_shape(self, store_and_trace):
        store, eval_trace = store_and_trace
        report = simulate_serving(
            store, eval_trace, ServingConfig(arrival_rate_rps=4000), num_requests=50
        )
        assert report.num_requests == 50
        assert report.lookups > 0 and 0.0 <= report.hit_rate <= 1.0
        assert sum(report.batch_size_hist.values()) == report.num_batches
        assert sum(report.queue_depth_hist.values()) == report.num_batches
        latency = report.latency
        assert (
            latency.p50_us <= latency.p95_us <= latency.p99_us
            <= latency.p999_us <= latency.max_us
        )
        payload = report.to_dict()
        assert payload["latency"]["p99_us"] == latency.p99_us
        assert payload["steady_state"] is not None

    def test_seeded_golden_percentiles(self):
        # The simulated clock is deterministic, so one configuration's
        # percentiles are pinned bit-stably (modulo the 6-decimal rounding).
        store, eval_trace = build_store_and_trace(seed=3)
        report = simulate_serving(
            store,
            eval_trace,
            ServingConfig(
                arrival_rate_rps=5000.0,
                max_batch_requests=8,
                max_linger_us=300.0,
                seed=11,
            ),
            num_requests=150,
        )
        golden = GOLDEN_SERVING_PERCENTILES
        assert round(report.latency.p50_us, 6) == golden["p50_us"]
        assert round(report.latency.p95_us, 6) == golden["p95_us"]
        assert round(report.latency.p99_us, 6) == golden["p99_us"]
        assert round(report.latency.p999_us, 6) == golden["p999_us"]
        assert report.num_batches == golden["num_batches"]
        assert report.blocks_read == golden["blocks_read"]
        assert report.slo_violations == golden["slo_violations"]


#: Frozen output of test_seeded_golden_percentiles's configuration.  These
#: change only when serving semantics change — regenerate deliberately with
#: ``python tests/test_serving.py`` (runs :func:`regenerate_golden`).
GOLDEN_SERVING_PERCENTILES = {
    "p50_us": 278.822174,
    "p95_us": 470.574216,
    "p99_us": 578.914073,
    "p999_us": 580.678834,
    "num_batches": 58,
    "blocks_read": 481,
    "slo_violations": 0,
}


def regenerate_golden():  # pragma: no cover - maintenance helper
    store, eval_trace = build_store_and_trace(seed=3)
    report = simulate_serving(
        store,
        eval_trace,
        ServingConfig(
            arrival_rate_rps=5000.0,
            max_batch_requests=8,
            max_linger_us=300.0,
            seed=11,
        ),
        num_requests=150,
    )
    print("GOLDEN_SERVING_PERCENTILES = {")
    for key in ("p50_us", "p95_us", "p99_us", "p999_us"):
        print(f'    "{key}": {round(getattr(report.latency, key), 6)!r},')
    print(f'    "num_batches": {report.num_batches},')
    print(f'    "blocks_read": {report.blocks_read},')
    print(f'    "slo_violations": {report.slo_violations},')
    print("}")


if __name__ == "__main__":  # pragma: no cover
    regenerate_golden()
