"""Tier-2 wrappers that run the repo's static analysis as pytest tests.

Two gates, mirroring CI's ``static-analysis`` job:

* ``repro-lint`` — the AST invariant checker must report a clean tree for
  ``src``, ``tests`` and ``benchmarks`` (same invocation as
  ``python -m repro_lint src tests benchmarks``).
* ``mypy`` — ``src/repro`` must type-check under the committed ``mypy.ini``.
  mypy is not vendored into the minimal dev container, so this test skips
  when it is not importable; CI installs it and enforces the gate.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro_lint import lint_paths, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_TARGETS = ("src", "tests", "benchmarks")


class TestReproLintGate:
    def test_tree_is_clean(self):
        result = lint_paths(list(LINT_TARGETS), root=REPO_ROOT)
        assert result.files_checked > 0
        assert result.clean, "\n" + render_text(result)

    def test_cli_invocation_matches(self):
        # The exact command CI (and the README) documents.
        proc = subprocess.run(
            [sys.executable, "-m", "repro_lint", *LINT_TARGETS],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestMypyGate:
    def test_src_repro_type_checks(self):
        pytest.importorskip("mypy", reason="mypy not installed; CI enforces this gate")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "mypy",
                "--config-file",
                "mypy.ini",
                "src/repro",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
