"""The cluster's hard invariant: a 1-node, R=1, no-fault cluster IS the store.

Sequentially replaying a request stream through a
``ClusterConfig(num_nodes=1, replication=1)`` cluster must produce
bit-identical per-table counters, cache contents and device accounting to
the single-host :class:`~repro.core.bandana.BandanaStore` replay of the
same stream — across every prefetch policy and degenerate cache size (the
randomized stores of ``test_interleaved_equivalence``).  A golden pin of
the aggregate counters guards the invariant against behavioural drift that
happens to stay self-consistent.
"""

import numpy as np
import pytest

from test_interleaved_equivalence import build_store, counters

from repro.cluster import ClusterStore
from repro.core.config import ClusterConfig
from repro.serving import simulate_serving
from repro.simulation import simulate_store
from repro.simulation.interleaved import iter_store_requests

SINGLE = ClusterConfig(num_nodes=1, replication=1)


def replay_cluster(seed: int, config: ClusterConfig) -> ClusterStore:
    store, trace = build_store(seed)
    cluster = ClusterStore.from_store(store, config=config)
    for request in iter_store_requests(trace):
        cluster.serve_request(request)
    return cluster


class TestSingleNodeEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_to_store_replay(self, seed):
        store, trace = build_store(seed)
        simulate_store(store, trace)
        cluster = replay_cluster(seed, SINGLE)
        cluster_stats = cluster.table_stats()
        for name, state in store.tables.items():
            assert counters(state.stats) == counters(cluster_stats[name]), name
        node = cluster.nodes[0]
        for name, state in store.tables.items():
            assert node.engines[name].cache.keys() == state.engine.cache.keys(), name
            assert node.engines[name].device.blocks_read == state.device.blocks_read, name

    def test_no_robustness_machinery_fires(self):
        cluster = replay_cluster(0, SINGLE)
        c = cluster.counters
        assert c.requests_degraded == 0
        assert c.retries == c.timeouts == c.link_losses == 0
        assert c.hedges_launched == c.sheds == 0
        assert c.breaker_skips == c.breaker_ejections == c.cold_restarts == 0
        assert c.availability == pytest.approx(1.0)

    def test_full_cache_budget_on_single_node(self):
        # The 1-node cluster owns every block of every table, so the scaled
        # per-node cache budgets equal the store's own budgets exactly.
        store, _ = build_store(0)
        cluster = ClusterStore.from_store(store, config=SINGLE)
        sizes = cluster.nodes[0].cache_sizes()
        for name, state in store.tables.items():
            assert sizes[name] == state.cache_config.cache_size_vectors, name

    def test_golden_aggregate_pin(self):
        # build_store(0) replayed through the 1-node cluster.  If this pin
        # moves, either the seed stores changed or cluster serving diverged
        # from single-host serving — both must be deliberate.
        cluster = replay_cluster(0, SINGLE)
        assert cluster.aggregate_stats().counters(include_latency=False) == (
            2342,
            514,
            1828,
            6528,
            237,
            6239,
            8098,
        )
        assert cluster.counters.requests_total == 106
        assert cluster.counters.shard_groups == 485

    def test_reset_serving_state_replays_identically(self):
        store, trace = build_store(1)
        cluster = ClusterStore.from_store(store, config=SINGLE)
        requests = list(iter_store_requests(trace))
        for request in requests:
            cluster.serve_request(request)
        first = cluster.aggregate_stats().counters(include_latency=True)
        cluster.reset_serving_state()
        assert cluster.aggregate_stats().lookups == 0
        assert cluster.counters.requests_total == 0
        for request in requests:
            cluster.serve_request(request)
        assert cluster.aggregate_stats().counters(include_latency=True) == first


class TestShardedEquivalenceOfWork:
    @pytest.mark.parametrize("num_nodes,replication", [(2, 1), (4, 1), (4, 2)])
    def test_lookup_conservation(self, num_nodes, replication):
        # Sharding moves work between nodes but never invents or drops
        # lookups: with no faults (no retries, no hedges, R=1) the summed
        # per-table lookup counters equal the single-host replay's.
        config = ClusterConfig(
            num_nodes=num_nodes, replication=replication, hedge_enabled=False
        )
        store, trace = build_store(0)
        simulate_store(store, trace)
        cluster = replay_cluster(0, config)
        cluster_stats = cluster.table_stats()
        for name, state in store.tables.items():
            assert cluster_stats[name].lookups == state.stats.lookups, name
        assert cluster.counters.requests_degraded == 0

    def test_request_order_preserved_within_shard(self):
        # Routing groups ids by replica set but must keep each group in
        # request order; with one node per shard this means per-node replay
        # order equals request order.  Hits can only come from earlier ids.
        config = ClusterConfig(num_nodes=2, replication=1, hedge_enabled=False)
        cluster = replay_cluster(0, config)
        stats = cluster.aggregate_stats()
        assert stats.lookups > 0
        assert 0 <= stats.hits <= stats.lookups


class TestServingIntegration:
    def test_cluster_routed_serving_report(self):
        store, trace = build_store(0)
        cluster = ClusterStore.from_store(
            store, config=ClusterConfig(num_nodes=4, replication=2)
        )
        report = simulate_serving(store, trace, cluster=cluster)
        assert report.num_requests == 106
        # Hedged reads do real duplicate work, so lookups can exceed the
        # single-host stream's 2342 but never undershoot it.
        assert report.lookups >= 2342
        assert 0.0 <= report.hit_rate <= 1.0
        assert report.latency.p999_us >= report.latency.p50_us > 0.0
        assert report.blocks_read > 0
        assert report.makespan_s > 0.0

    def test_single_node_serving_matches_store_counters(self):
        # The cluster-routed front-end re-times the same work: with one
        # node and R=1 the cache counters equal the plain replay's.
        store, trace = build_store(0)
        simulate_store(store, trace)
        expected = store.aggregate_stats()
        store2, trace2 = build_store(0)
        cluster = ClusterStore.from_store(store2, config=SINGLE)
        report = simulate_serving(store2, trace2, cluster=cluster)
        assert report.lookups == expected.lookups
        assert report.blocks_read == expected.misses
        assert report.hit_rate == pytest.approx(expected.hits / expected.lookups)
